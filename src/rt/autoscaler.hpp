#pragma once
// Load-driven autoscaling (docs/AUTOSCALING.md).
//
// Two pieces, split so the policy is testable without threads:
//
//   * AutoscaleController -- a pure, deterministic target-utilization
//     controller: hysteresis band around the target, patience debouncing,
//     a cooldown between actions, and min/max pool clamps. Feed it one
//     utilization sample per observation window and it answers
//     hold/grow/shrink.
//   * Autoscaler<T> -- closes the loop on a live pipeline: samples the
//     worst queue-depth fraction from the pipeline's overload monitor
//     (Pipeline::set_monitor_hook, watchdog thread), re-solves the changed
//     budget through the warm-start solver (core::WarmStart -- a resize
//     re-solve reuses the retained DP frontier), and lands the resulting
//     resize-only delta mid-segment via try_apply_delta_in_flight. An
//     on_resize callback lets arb::Arbiter tenants return freed cores to
//     the shared pool (Arbiter::set_quota).
//
// dsim::simulate_autoscale drives the same controller and solver in
// virtual time against scripted load profiles; benchmarks/ext_autoscale.cpp
// measures warm vs cold re-solve latency and controller tracking.

#include "core/chain.hpp"
#include "core/power.hpp"
#include "core/scheduler.hpp"
#include "plan/execution_plan.hpp"
#include "rt/pipeline.hpp"
#include "rt/rescheduler.hpp"
#include "svc/admission.hpp"
#include "svc/solver_service.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

namespace amp::rt {

/// One controller verdict per observation window.
enum class ScaleDecision : std::uint8_t { hold, grow, shrink };

[[nodiscard]] constexpr const char* to_string(ScaleDecision decision) noexcept
{
    switch (decision) {
    case ScaleDecision::hold: return "hold";
    case ScaleDecision::grow: return "grow";
    case ScaleDecision::shrink: return "shrink";
    }
    return "?";
}

/// Target-utilization policy. Utilization is whatever signal the caller
/// feeds -- the live Autoscaler uses the worst queue-depth fraction, dsim
/// uses offered load over capacity -- and the hysteresis band
/// [shrink_below, grow_above] brackets the target so small fluctuations
/// decide nothing.
struct AutoscalePolicy {
    /// Steering midpoint; only reporting (tracking error) reads it, the
    /// decisions come from the band below.
    double target_utilization = 0.65;
    /// Grow when utilization stays above this for `patience` windows.
    double grow_above = 0.85;
    /// Shrink when utilization stays below this for `patience` windows.
    double shrink_below = 0.40;
    /// Consecutive out-of-band windows before acting (debounce).
    int patience = 3;
    /// Minimum nanoseconds between two actions. Streaks keep accumulating
    /// during the cooldown, so a persistent signal acts on the first
    /// window after it expires.
    std::int64_t cooldown_ns = 500'000'000;
    /// Cores added/removed per action (of one type at a time).
    int step = 1;
    /// Pool clamps; shrink also never drops the last core.
    core::Resources min_pool{0, 1};
    core::Resources max_pool{0, 1};
    /// Which core type a grow tries first (a shrink frees it last).
    core::CoreType grow_first = core::CoreType::little;
    /// Energy-aware scale-down (docs/ENERGY.md): order shrink candidates by
    /// the power of the RESULTING allocation, ascending, so a shrink frees
    /// the most expensive cores first (under the default model: big before
    /// little, regardless of grow_first). Ties keep the legacy
    /// reverse-of-grow order, so the flag is behavior-neutral under a
    /// uniform power model.
    bool shrink_cheapest_first = false;
    /// Rates for the ordering above; unused unless shrink_cheapest_first.
    core::PowerModel power{};
};

/// The pure controller. Single-threaded by design; Autoscaler<T> guards it
/// with its own mutex, dsim and tests drive it directly.
class AutoscaleController {
public:
    AutoscaleController() = default;
    explicit AutoscaleController(AutoscalePolicy policy)
        : policy_(policy)
    {
    }

    /// Feeds one utilization sample taken at steady-clock time `now_ns`.
    [[nodiscard]] ScaleDecision observe(double utilization, std::int64_t now_ns) noexcept
    {
        if (utilization > policy_.grow_above) {
            ++grow_streak_;
            shrink_streak_ = 0;
        } else if (utilization < policy_.shrink_below) {
            ++shrink_streak_;
            grow_streak_ = 0;
        } else {
            grow_streak_ = 0;
            shrink_streak_ = 0;
        }
        if (acted_ && now_ns - last_action_ns_ < policy_.cooldown_ns)
            return ScaleDecision::hold;
        if (grow_streak_ >= policy_.patience) {
            grow_streak_ = 0;
            acted_ = true;
            last_action_ns_ = now_ns;
            return ScaleDecision::grow;
        }
        if (shrink_streak_ >= policy_.patience) {
            shrink_streak_ = 0;
            acted_ = true;
            last_action_ns_ = now_ns;
            return ScaleDecision::shrink;
        }
        return ScaleDecision::hold;
    }

    /// The legal one-step shrink targets (one per core type with slack),
    /// best first. Legacy order frees the reverse of grow_first; with
    /// policy.shrink_cheapest_first the candidates are reordered by the
    /// power of the resulting allocation, ascending (ties keep the legacy
    /// order). Autoscaler::feed tries them in order until one lands, so an
    /// infeasible cheapest target degrades to the next candidate instead of
    /// absorbing the shrink.
    struct ShrinkCandidates {
        std::array<core::Resources, 2> target{};
        int count = 0;
    };

    [[nodiscard]] static ShrinkCandidates shrink_candidates(const AutoscalePolicy& policy,
                                                            core::Resources current) noexcept
    {
        ShrinkCandidates out;
        if (policy.step < 1)
            return out;
        const core::CoreType first = policy.grow_first;
        const core::CoreType second = core::other(first);
        for (const core::CoreType type : {second, first}) {
            core::Resources next = current;
            const int slack = next.count(type) - policy.min_pool.count(type);
            const int take = std::min({policy.step, slack, next.total() - 1});
            if (take > 0) {
                next.count(type) -= take;
                out.target[static_cast<std::size_t>(out.count++)] = next;
            }
        }
        if (policy.shrink_cheapest_first && out.count == 2) {
            const auto allocation_watts = [&policy](core::Resources r) noexcept {
                return static_cast<double>(r.big) * policy.power.big_watts
                    + static_cast<double>(r.little) * policy.power.little_watts;
            };
            if (allocation_watts(out.target[1]) < allocation_watts(out.target[0]))
                std::swap(out.target[0], out.target[1]);
        }
        return out;
    }

    /// The deterministic one-action resource step: grow adds policy.step
    /// cores of grow_first (falling back to the other type once that axis
    /// is at max_pool), shrink frees the first shrink_candidates() target
    /// down to min_pool, never dropping the last core. nullopt when the
    /// clamps leave no legal step (the decision is absorbed).
    [[nodiscard]] static std::optional<core::Resources>
    stepped(const AutoscalePolicy& policy, core::Resources current, ScaleDecision decision) noexcept
    {
        if (decision == ScaleDecision::hold || policy.step < 1)
            return std::nullopt;
        const core::CoreType first = policy.grow_first;
        const core::CoreType second = core::other(first);
        core::Resources next = current;
        if (decision == ScaleDecision::grow) {
            for (const core::CoreType type : {first, second}) {
                const int room = policy.max_pool.count(type) - next.count(type);
                if (room > 0) {
                    next.count(type) += std::min(policy.step, room);
                    return next;
                }
            }
            return std::nullopt;
        }
        const ShrinkCandidates candidates = shrink_candidates(policy, current);
        if (candidates.count == 0)
            return std::nullopt;
        return candidates.target[0];
    }

    [[nodiscard]] const AutoscalePolicy& policy() const noexcept { return policy_; }
    [[nodiscard]] int grow_streak() const noexcept { return grow_streak_; }
    [[nodiscard]] int shrink_streak() const noexcept { return shrink_streak_; }

private:
    AutoscalePolicy policy_{};
    int grow_streak_ = 0;
    int shrink_streak_ = 0;
    bool acted_ = false;
    std::int64_t last_action_ns_ = 0;
};

/// Counters of one Autoscaler's lifetime (all under its mutex).
struct AutoscalerStats {
    std::uint64_t samples = 0;     ///< utilization windows fed
    std::uint64_t grows = 0;       ///< grow actions landed on the pipeline
    std::uint64_t shrinks = 0;     ///< shrink actions landed
    std::uint64_t frame_swaps = 0; ///< landed via try_apply_delta_in_flight
    std::uint64_t noop_resizes = 0; ///< budget adopted, plan unchanged
    std::uint64_t warm_solves = 0; ///< re-solves that skipped the cold DP (warm or cache hit)
    std::uint64_t clamped = 0;     ///< decisions absorbed by min/max clamps
    std::uint64_t declined = 0;    ///< swaps the pipeline declined
    std::uint64_t infeasible = 0;  ///< targets admitting no schedule
};

struct AutoscalerConfig {
    AutoscalePolicy policy{};
    /// How scale actions may land. frame_first (the default) is the only
    /// policy that lands while a segment is in flight; stricter policies
    /// decline live swaps (counted, pipeline untouched).
    SwapPolicy swap = SwapPolicy::frame_first;
    /// Solver service re-solves go through (null = svc::shared_service()).
    svc::SolverService* service = nullptr;
    core::ScheduleOptions options{};
    /// Reclaim budget for the in-flight swap.
    std::chrono::milliseconds reclaim_timeout{200};
    /// Invoked (on the feeding thread, i.e. the watchdog) after every
    /// adopted resize with the new budget -- e.g. push
    /// arb::Arbiter::set_quota so freed cores return to the shared pool at
    /// the next rearbitration.
    std::function<void(core::Resources)> on_resize;
};

/// Closes the control loop on one live pipeline. Attach installs the
/// monitor-hook sampler (requires PipelineConfig::overload.enabled);
/// feed()/observe() are the deterministic entry points tests and dsim call
/// directly with explicit timestamps.
template <typename T>
class Autoscaler {
public:
    Autoscaler(Pipeline<T>& pipeline, core::TaskChain chain, core::Resources initial,
               AutoscalerConfig config = {})
        : pipeline_(&pipeline)
        , chain_(std::move(chain))
        , current_(initial)
        , config_(std::move(config))
        , controller_(config_.policy)
    {
        // Autoscaling re-solves the chain as one linear pipeline and lands
        // the delta on the wrapped plan. A DAG plan's stage cut never
        // matches such a candidate (plan::diff would reject every delta as
        // a queue-topology change), so refuse up front instead of silently
        // declining every resize. Graph plans rescale through
        // svc::schedule_graph + a new Pipeline.
        if (!pipeline_->execution_plan().linear())
            throw std::invalid_argument{
                "Autoscaler: the pipeline runs a DAG plan; autoscaling "
                "requires a linear (single-branch) plan"};
        // An unset max clamp would forbid every grow; default to "resize
        // within the initial budget per axis, at least one of each present".
        if (config_.policy.max_pool.big < initial.big)
            config_.policy.max_pool.big = initial.big;
        if (config_.policy.max_pool.little < initial.little)
            config_.policy.max_pool.little = initial.little;
        controller_ = AutoscaleController{config_.policy};
    }

    /// Installs the utilization sampler on the pipeline's overload monitor.
    /// Call between runs only (monitor hooks install like loss handlers).
    void attach()
    {
        pipeline_->set_monitor_hook([this](double worst_queue_frac) {
            const auto now = std::chrono::steady_clock::now().time_since_epoch();
            (void)feed(worst_queue_frac,
                       std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
        });
    }

    /// Removes the sampler (between runs only).
    void detach() { pipeline_->set_monitor_hook({}); }

    /// Feeds one utilization sample at an explicit timestamp and lands any
    /// resulting action. Returns the decision that actually LANDED (hold
    /// when the controller held, the clamp absorbed it, the target was
    /// infeasible, or the pipeline declined the swap).
    ScaleDecision feed(double utilization, std::int64_t now_ns)
    {
        std::lock_guard lock{mutex_};
        ++stats_.samples;
        const ScaleDecision decision = controller_.observe(utilization, now_ns);
        if (decision == ScaleDecision::hold)
            return ScaleDecision::hold;
        if (decision == ScaleDecision::shrink) {
            // Try every legal shrink target in preference order (cheapest
            // resulting allocation first under shrink_cheapest_first): a
            // target the solver can't schedule shouldn't absorb the shrink
            // while the other axis still has cores to give back.
            const auto candidates =
                AutoscaleController::shrink_candidates(config_.policy, current_);
            if (candidates.count == 0) {
                ++stats_.clamped;
                return ScaleDecision::hold;
            }
            for (int i = 0; i < candidates.count; ++i) {
                if (resize_locked(candidates.target[static_cast<std::size_t>(i)])) {
                    ++stats_.shrinks;
                    return ScaleDecision::shrink;
                }
            }
            return ScaleDecision::hold;
        }
        const auto target = AutoscaleController::stepped(config_.policy, current_, decision);
        if (!target) {
            ++stats_.clamped;
            return ScaleDecision::hold;
        }
        if (!resize_locked(*target))
            return ScaleDecision::hold;
        ++stats_.grows;
        return decision;
    }

    /// Telemetry-snapshot entry point (the same type Rescheduler::observe
    /// consumes): feeds the queue-depth signal when the snapshot carries
    /// one.
    ScaleDecision observe(const TelemetrySnapshot& telemetry)
    {
        if (telemetry.queue_depth_frac < 0.0)
            return ScaleDecision::hold;
        return feed(telemetry.queue_depth_frac, telemetry.at_ns);
    }

    [[nodiscard]] core::Resources current() const
    {
        std::lock_guard lock{mutex_};
        return current_;
    }

    [[nodiscard]] AutoscalerStats stats() const
    {
        std::lock_guard lock{mutex_};
        return stats_;
    }

private:
    /// Re-solves `target` warm, diffs against the live plan, and lands the
    /// delta under the configured SwapPolicy. Called under mutex_.
    bool resize_locked(core::Resources target)
    {
        core::ScheduleRequest request{chain_, target, core::Strategy::herad, config_.options};
        request.priority = svc::kRecoveryPriority;
        request.warm.frontier = frontier_;
        request.warm.keep_frontier = true;

        svc::SolverService& service =
            config_.service != nullptr ? *config_.service : svc::shared_service();
        svc::PlannedSchedule planned =
            service.solve_planned(request, pipeline_->execution_plan().options());
        if (!planned.result.ok() || planned.plan == nullptr) {
            ++stats_.infeasible;
            return false;
        }
        if (planned.result.frontier != nullptr)
            frontier_ = std::move(planned.result.frontier);
        // A service cache hit skipped the cold DP just like the incremental
        // path did (cached copies are frontier-stripped, so it can't also
        // report warm_start); both count as warm for the tracking stats.
        if (planned.result.warm_start || planned.result.cache_hit)
            ++stats_.warm_solves;

        const plan::PlanDelta delta = plan::diff(pipeline_->execution_plan(), *planned.plan);
        if (delta.empty()) {
            // The changed budget buys (or costs) nothing schedulable --
            // adopt it without touching the pipeline. A shrink hands the
            // idle core back (on_resize tells the arbiter); a grow stops
            // repeating once the clamp is reached.
            current_ = target;
            ++stats_.noop_resizes;
            if (config_.on_resize)
                config_.on_resize(target);
            return true;
        }
        if (config_.swap != SwapPolicy::frame_first || !delta.resize_only()
            || !pipeline_->try_apply_delta_in_flight(delta, config_.reclaim_timeout)) {
            ++stats_.declined;
            return false;
        }
        ++stats_.frame_swaps;
        current_ = target;
        if (config_.on_resize)
            config_.on_resize(target);
        return true;
    }

    Pipeline<T>* pipeline_;
    core::TaskChain chain_;
    core::Resources current_;
    AutoscalerConfig config_;
    AutoscaleController controller_;
    std::shared_ptr<const core::HeradFrontier> frontier_;
    AutoscalerStats stats_{};
    mutable std::mutex mutex_;
};

} // namespace amp::rt
