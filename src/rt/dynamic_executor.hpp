#pragma once
// Dynamic task-granularity executor: the scheduling model the paper argues
// AGAINST for streaming SDR chains (§II: "dynamic schedulers from current
// runtime systems are usually inefficient at our task granularity of
// interest (tens to thousands of us)").
//
// Instead of a static pipeline decomposition, every (frame, task) pair is a
// work item in a shared pool; any idle worker picks the next ready item.
// Constraints preserved:
//   * per-frame task order (task t+1 only after t),
//   * stateful tasks process frames in stream order, one at a time, on the
//     single shared task instance;
//   * stateless tasks run on per-worker clones, any order, in parallel.
//
// Provided as a baseline for the ext_dynamic_vs_static bench and as a
// generally useful executor for coarse-grained chains.

#include "rt/ordered_queue.hpp"
#include "rt/task.hpp"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace amp::rt {

struct DynamicRunResult {
    std::uint64_t frames = 0;
    double elapsed_seconds = 0.0;
    std::uint64_t scheduling_events = 0; ///< pool pushes+pops (overhead proxy)
    [[nodiscard]] double fps() const noexcept
    {
        return elapsed_seconds > 0.0 ? static_cast<double>(frames) / elapsed_seconds : 0.0;
    }
};

template <typename T>
class DynamicExecutor {
public:
    /// `window` bounds the frames in flight (memory/backpressure control).
    DynamicExecutor(TaskSequence<T>& sequence, int workers, std::size_t window = 8)
        : sequence_(sequence)
        , workers_(workers)
        , window_(window == 0 ? 1 : window)
    {
        if (sequence_.empty())
            throw std::invalid_argument{"DynamicExecutor: empty task sequence"};
        if (workers_ < 1)
            throw std::invalid_argument{"DynamicExecutor: need at least one worker"};
    }

    DynamicRunResult run(std::uint64_t num_frames,
                         const std::function<void(T&)>& on_output = {})
    {
        const int n = sequence_.size();
        State state;
        state.next_expected.assign(static_cast<std::size_t>(n) + 1, 0);

        // Per-worker clones for stateless tasks; stateful tasks share the
        // original (safe: the ordering protocol serializes them).
        std::vector<std::vector<Task<T>*>> worker_tasks(static_cast<std::size_t>(workers_));
        std::vector<std::vector<std::unique_ptr<Task<T>>>> clone_storage(
            static_cast<std::size_t>(workers_));
        for (int w = 0; w < workers_; ++w) {
            for (int t = 1; t <= n; ++t) {
                Task<T>& original = sequence_.task(t);
                if (original.stateful() || w == 0) {
                    worker_tasks[static_cast<std::size_t>(w)].push_back(&original);
                } else {
                    clone_storage[static_cast<std::size_t>(w)].push_back(original.clone());
                    worker_tasks[static_cast<std::size_t>(w)].push_back(
                        clone_storage[static_cast<std::size_t>(w)].back().get());
                }
            }
        }

        // Capacity covers the worst-case reorder spread (about two windows
        // of in-flight frames) plus one concurrent push per worker, so no
        // set of workers can all block on a full buffer while the frame the
        // consumer needs is still waiting in the pool.
        OrderedQueue<T> output{2 * window_ + static_cast<std::size_t>(workers_) + 1};
        const auto start = std::chrono::steady_clock::now();

        if (num_frames == 0)
            output.push(Envelope<T>::end_of_stream(0));

        // Seed the pool with the initial window of frames at task 1.
        {
            std::lock_guard lock{state.mutex};
            const std::uint64_t initial = std::min<std::uint64_t>(window_, num_frames);
            for (std::uint64_t seq = 0; seq < initial; ++seq)
                enqueue_locked(state, make_item(seq), 1);
            state.spawned = initial;
        }

        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(workers_));
        std::mutex error_mutex;
        std::exception_ptr first_error;
        for (int w = 0; w < workers_; ++w) {
            threads.emplace_back([&, w] {
                try {
                    worker_loop(state, worker_tasks[static_cast<std::size_t>(w)], num_frames,
                                output);
                } catch (...) {
                    {
                        std::lock_guard lock{error_mutex};
                        if (!first_error)
                            first_error = std::current_exception();
                    }
                    std::lock_guard lock{state.mutex};
                    state.aborted = true;
                    state.work_available.notify_all();
                    output.abort();
                }
            });
        }

        std::uint64_t delivered = 0;
        while (auto envelope = output.pop()) {
            if (envelope->end)
                break;
            if (on_output)
                on_output(envelope->payload);
            ++delivered;
        }
        for (auto& thread : threads)
            thread.join();
        const auto stop = std::chrono::steady_clock::now();
        if (first_error)
            std::rethrow_exception(first_error);

        DynamicRunResult result;
        result.frames = delivered;
        result.elapsed_seconds = std::chrono::duration<double>(stop - start).count();
        result.scheduling_events = state.scheduling_events;
        return result;
    }

private:
    struct Item {
        std::uint64_t seq = 0;
        T payload{};
    };

    struct State {
        std::mutex mutex;
        std::condition_variable work_available;
        std::deque<std::pair<std::unique_ptr<Item>, int>> ready; ///< (frame, task)
        // For each stateful task: next stream seq it may process, plus the
        // frames parked until their turn.
        std::vector<std::uint64_t> next_expected;
        std::map<std::pair<int, std::uint64_t>, std::unique_ptr<Item>> parked;
        std::uint64_t spawned = 0;
        std::uint64_t completed = 0;
        std::uint64_t scheduling_events = 0;
        bool aborted = false;
    };

    [[nodiscard]] std::unique_ptr<Item> make_item(std::uint64_t seq) const
    {
        auto item = std::make_unique<Item>();
        item->seq = seq;
        if constexpr (requires(T& p) { p.seq = seq; })
            item->payload.seq = seq;
        return item;
    }

    /// Queues (item, task) respecting the stateful-ordering constraint.
    void enqueue_locked(State& state, std::unique_ptr<Item> item, int task)
    {
        ++state.scheduling_events;
        if (sequence_.task(task).stateful()
            && item->seq != state.next_expected[static_cast<std::size_t>(task)]) {
            state.parked.emplace(std::make_pair(task, item->seq), std::move(item));
            return;
        }
        state.ready.emplace_back(std::move(item), task);
        state.work_available.notify_one();
    }

    void worker_loop(State& state, const std::vector<Task<T>*>& tasks,
                     std::uint64_t num_frames, OrderedQueue<T>& output)
    {
        const int n = sequence_.size();
        for (;;) {
            std::unique_ptr<Item> item;
            int task_index = 0;
            {
                std::unique_lock lock{state.mutex};
                state.work_available.wait(lock, [&] {
                    return state.aborted || !state.ready.empty()
                        || state.completed == num_frames;
                });
                if (state.aborted || (state.ready.empty() && state.completed == num_frames))
                    return;
                item = std::move(state.ready.front().first);
                task_index = state.ready.front().second;
                state.ready.pop_front();
                ++state.scheduling_events;
            }

            tasks[static_cast<std::size_t>(task_index - 1)]->process(item->payload);

            std::unique_lock lock{state.mutex};
            if (sequence_.task(task_index).stateful()) {
                // Release the next parked frame of this task, if its turn came.
                auto& expected = state.next_expected[static_cast<std::size_t>(task_index)];
                ++expected;
                const auto it = state.parked.find({task_index, expected});
                if (it != state.parked.end()) {
                    auto parked_item = std::move(it->second);
                    state.parked.erase(it);
                    state.ready.emplace_back(std::move(parked_item), task_index);
                    state.work_available.notify_one();
                    ++state.scheduling_events;
                }
            }

            if (task_index < n) {
                enqueue_locked(state, std::move(item), task_index + 1);
            } else {
                const std::uint64_t seq = item->seq;
                T payload = std::move(item->payload);
                ++state.completed;
                const bool all_done = state.completed == num_frames;
                // Spawn a replacement frame to keep the window full.
                if (state.spawned < num_frames) {
                    enqueue_locked(state, make_item(state.spawned), 1);
                    ++state.spawned;
                }
                if (all_done)
                    state.work_available.notify_all();
                lock.unlock();
                output.push(Envelope<T>::data(seq, std::move(payload)));
                if (all_done)
                    output.push(Envelope<T>::end_of_stream(num_frames));
            }
        }
    }

    TaskSequence<T>& sequence_;
    int workers_;
    std::size_t window_;
};

} // namespace amp::rt
