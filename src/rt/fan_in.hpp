#pragma once
// Fan-in gate: deterministic merge point where a stage consumes several
// input queues (one per predecessor stage in a DAG plan).
//
// Every input queue carries *every* sequence number exactly once -- as data,
// as a tombstone, or (finally) as the end-of-stream marker; that invariant
// is maintained by the pipeline's watchdog and shedder, which replace lost
// or shed frames with tombstones in place. The gate therefore merges by
// popping one envelope per input, asserting the sequence numbers agree, and
// combining the payloads. Because each OrderedQueue already delivers in
// sequence order, the merged stream is in sequence order too, with zero
// reordering and no buffering beyond one in-flight round.
//
// Replicated consumers: multiple workers may serve the merge stage. Rounds
// are serialized by a timed mutex so exactly one worker pops a given round;
// the others block on the mutex (bounded waits so they can still observe
// fences/cancellation). If a worker must abandon a round mid-way -- its
// queue pop timed out and the caller asked to cancel (fence observed, frame
// swap pending) -- the partial round is parked inside the gate and the next
// worker resumes it at the same input, so no queue is popped twice for one
// sequence number and no sequence is skipped.

#include "rt/envelope.hpp"
#include "rt/ordered_queue.hpp"

#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace amp::rt {

template <typename T>
class FanInGate {
public:
    /// Combines a popped envelope `from` (input ordinal `ordinal`, >= 1)
    /// into the accumulator payload.
    using Merge = std::function<void(T& into, T& from, int ordinal)>;

    /// Result of one merge round; mirrors OrderedQueue::PopResult.
    struct Result {
        std::optional<Envelope<T>> envelope;
        bool done = false; ///< all inputs delivered end-of-stream (or aborted)

        [[nodiscard]] bool timed_out() const { return !envelope.has_value() && !done; }
    };

    FanInGate(std::vector<OrderedQueue<T>*> inputs, Merge merge)
        : inputs_(std::move(inputs))
        , merge_(std::move(merge))
    {
        if (inputs_.size() < 2)
            throw std::invalid_argument{"FanInGate: needs at least two inputs"};
    }

    FanInGate(const FanInGate&) = delete;
    FanInGate& operator=(const FanInGate&) = delete;

    /// Pops the next merged envelope. `slice` bounds each internal wait (the
    /// round mutex and every queue pop) so the caller regains control to run
    /// `on_wait` -- the same heartbeat hook stage workers use while blocked.
    /// When a pop times out and `cancelled()` is true, the partial round is
    /// parked and the call returns timed_out; a later call (any worker)
    /// resumes it. Throws std::logic_error if the inputs desequence, which
    /// can only happen if the every-seq-exactly-once invariant is broken.
    template <typename Rep, typename Period, typename OnWait, typename Cancelled>
    Result pop_round(std::chrono::duration<Rep, Period> slice, OnWait&& on_wait,
                     Cancelled&& cancelled)
    {
        std::unique_lock lock{mutex_, std::defer_lock};
        while (!lock.try_lock_for(slice)) {
            on_wait();
            if (cancelled())
                return Result{std::nullopt, false};
        }

        Envelope<T> acc;
        std::size_t next = 0;
        if (partial_) {
            acc = std::move(partial_->acc);
            next = partial_->next_input;
            partial_.reset();
        } else {
            while (true) {
                auto r = inputs_[0]->try_pop_for(slice);
                if (r.done)
                    return Result{std::nullopt, true};
                if (r.envelope) {
                    acc = std::move(*r.envelope);
                    break;
                }
                on_wait();
                if (cancelled())
                    return Result{std::nullopt, false};
            }
            next = 1;
        }

        for (; next < inputs_.size(); ++next) {
            while (true) {
                auto r = inputs_[next]->try_pop_for(slice);
                if (r.done) // abort: queues were closed out from under us
                    return Result{std::nullopt, true};
                if (r.envelope) {
                    combine(acc, *r.envelope, static_cast<int>(next));
                    break;
                }
                on_wait();
                if (cancelled()) {
                    partial_ = Partial{std::move(acc), next};
                    return Result{std::nullopt, false};
                }
            }
        }
        return Result{std::move(acc), false};
    }

    /// Drops any parked partial round. Only safe between runs, after the
    /// input queues themselves have been reset.
    void reset()
    {
        std::lock_guard lock{mutex_};
        partial_.reset();
    }

    [[nodiscard]] std::size_t input_count() const { return inputs_.size(); }

private:
    struct Partial {
        Envelope<T> acc;
        std::size_t next_input = 0;
    };

    void combine(Envelope<T>& acc, Envelope<T>& in, int ordinal)
    {
        if (in.seq != acc.seq || in.end != acc.end)
            throw std::logic_error{"FanInGate: inputs desequenced at seq "
                                   + std::to_string(acc.seq)};
        if (in.dropped)
            acc.dropped = true; // any lost branch copy tombstones the merge
        if (!acc.end && !acc.dropped && merge_)
            merge_(acc.payload, in.payload, ordinal);
    }

    std::vector<OrderedQueue<T>*> inputs_;
    Merge merge_;
    std::timed_mutex mutex_;
    std::optional<Partial> partial_; ///< round abandoned by a cancelled worker
};

} // namespace amp::rt
