#include "rt/rescheduler.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace amp::rt {


Rescheduler::Rescheduler(core::TaskChain chain, core::Resources resources,
                         ReschedulePolicy policy)
    : chain_(std::move(chain))
    , resources_(resources)
    , policy_(policy)
{
    solution_ = recompute();
}

core::Solution Rescheduler::recompute()
{
    if (chain_.empty())
        throw NoScheduleError{"Rescheduler: empty chain"};
    if (resources_.total() < 1)
        throw NoScheduleError{"Rescheduler: no cores left to schedule on"};

    // Candidate strategies go through the solver service as one batch:
    // they solve in parallel, and a re-solve of an already-seen degraded
    // (chain, resources) pair is a cache hit. schedule() reports malformed
    // requests (e.g. an OTAC variant with zero cores of its type) and
    // infeasibility through ScheduleResult::error, so no pre-filtering or
    // exception fencing is needed here.
    const core::Strategy candidates[] = {policy_.primary, policy_.fallback,
                                         core::Strategy::otac_big, core::Strategy::otac_little};
    std::vector<core::ScheduleRequest> requests;
    requests.reserve(std::size(candidates));
    for (const core::Strategy strategy : candidates) {
        bool duplicate = false;
        for (const core::ScheduleRequest& existing : requests)
            duplicate = duplicate || existing.strategy == strategy;
        if (!duplicate) {
            core::ScheduleRequest request{chain_, resources_, strategy};
            // Recovery re-solves must not be shed behind bulk traffic: a
            // saturated admission queue would turn a core loss into a dead
            // pipeline (docs/FAULT_MODEL.md, "Overload model").
            request.priority = svc::kRecoveryPriority;
            requests.push_back(std::move(request));
        }
    }

    svc::SolverService& service =
        policy_.service != nullptr ? *policy_.service : svc::shared_service();
    const std::vector<core::ScheduleResult> results = service.solve_batch(requests);

    core::Solution best;
    double best_period = core::kInfiniteWeight;
    for (const core::ScheduleResult& result : results) {
        if (!result.ok())
            continue;
        const double period = result.solution.period(chain_);
        if (period < best_period) {
            best = result.solution;
            best_period = period;
        }
    }
    if (best.empty())
        throw NoScheduleError{
            "Rescheduler: no strategy produced a valid solution on R = ("
            + std::to_string(resources_.big) + ", " + std::to_string(resources_.little) + ")"};
    solution_ = best;
    return solution_;
}

core::Solution Rescheduler::on_core_loss(core::CoreType type, int count)
{
    remove_cores(type, count);
    return recompute();
}

void Rescheduler::remove_cores(core::CoreType type, int count)
{
    resources_.count(type) = std::max(0, resources_.count(type) - count);
}

std::optional<core::Solution> Rescheduler::observe(const TelemetrySnapshot& telemetry)
{
    const std::vector<obs::HistogramSnapshot>& big_us = telemetry.big_us;
    const std::vector<obs::HistogramSnapshot>& little_us = telemetry.little_us;
    if (big_us.empty() && little_us.empty())
        return std::nullopt; // load-only snapshot: nothing for the drift detector

    const auto n = static_cast<std::size_t>(chain_.size());
    if (big_us.size() != n || little_us.size() != n)
        throw std::invalid_argument{"observe: snapshot vectors must match chain size"};

    // Drift signal: p95 of the observed latency distribution against the
    // weight the schedule was computed for. Tasks without samples on a core
    // type contribute no drift and keep their scheduled weight.
    double max_drift = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const int task = static_cast<int>(i) + 1;
        const double ref_big = chain_.weight(task, core::CoreType::big);
        const double ref_little = chain_.weight(task, core::CoreType::little);
        if (ref_big > 0.0 && !big_us[i].empty())
            max_drift = std::max(max_drift, std::abs(big_us[i].p95_us() - ref_big) / ref_big);
        if (ref_little > 0.0 && !little_us[i].empty())
            max_drift =
                std::max(max_drift, std::abs(little_us[i].p95_us() - ref_little) / ref_little);
    }

    if (max_drift <= policy_.drift_threshold) {
        // Streak broken: the partial sums belong to an abandoned streak and
        // must not leak into a future rebuild.
        drift_streak_ = 0;
        drifted_big_.clear();
        drifted_little_.clear();
        return std::nullopt;
    }
    ++drift_streak_;
    if (drifted_big_.size() != n || drifted_little_.size() != n) {
        drifted_big_.assign(n, 0.0);
        drifted_little_.assign(n, 0.0);
    }
    // Accumulate this window's means; the rebuild below averages over the
    // whole streak, so every drifted window carries equal weight instead of
    // only the one that happened to arrive last.
    for (std::size_t i = 0; i < n; ++i) {
        const int task = static_cast<int>(i) + 1;
        drifted_big_[i] += big_us[i].empty() ? chain_.weight(task, core::CoreType::big)
                                             : big_us[i].mean_us();
        drifted_little_[i] += little_us[i].empty()
            ? chain_.weight(task, core::CoreType::little)
            : little_us[i].mean_us();
    }
    if (drift_streak_ < policy_.drift_patience)
        return std::nullopt;

    // Sustained drift: rebuild the chain around the streak-average observed
    // weights and recompute the schedule.
    const double inv_streak = 1.0 / static_cast<double>(drift_streak_);
    std::vector<core::TaskDesc> descs;
    descs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const core::TaskDesc& old = chain_.task(static_cast<int>(i) + 1);
        descs.push_back(core::TaskDesc{old.name, drifted_big_[i] * inv_streak,
                                       drifted_little_[i] * inv_streak, old.replicable});
    }
    chain_ = core::TaskChain{std::move(descs)};
    drift_streak_ = 0;
    drifted_big_.clear();
    drifted_little_.clear();
    return recompute();
}

core::Solution Rescheduler::resize_to(core::Resources target)
{
    if (target.big < 0 || target.little < 0 || target.total() < 1)
        throw NoScheduleError{"resize_to: the target resource vector is empty"};
    if (target == resources_)
        return solution_;

    // Warm fast path: a HeRAD primary answers a resize from the retained DP
    // frontier (backwalk or extension) instead of re-running the candidate
    // batch. The first resize runs cold and collects the frontier.
    if (policy_.primary == core::Strategy::herad) {
        core::ScheduleRequest request{chain_, target, core::Strategy::herad};
        request.priority = svc::kRecoveryPriority;
        request.warm.frontier = frontier_;
        request.warm.keep_frontier = true;
        svc::SolverService& service =
            policy_.service != nullptr ? *policy_.service : svc::shared_service();
        core::ScheduleResult result = service.solve(request);
        if (result.ok()) {
            if (result.frontier != nullptr)
                frontier_ = std::move(result.frontier);
            resources_ = target;
            solution_ = std::move(result.solution);
            return solution_;
        }
        // Infeasible/rejected: fall through to the full candidate batch,
        // which throws NoScheduleError with the budget in the message.
    }

    const core::Resources keep = resources_;
    resources_ = target;
    try {
        return recompute();
    } catch (...) {
        resources_ = keep;
        throw;
    }
}

} // namespace amp::rt
