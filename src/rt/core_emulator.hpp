#pragma once
// Core-type emulation for machines without asymmetric cores.
//
// On a real big.LITTLE processor, a pipeline worker pinned to a little core
// naturally runs its tasks slower. This repository's test machine is a
// homogeneous (single-core) VM, so the pipeline can instead attach an
// emulator that inflates the cost of work executed by "little" workers by a
// per-task slowdown factor (busy-wait spin, so the behaviour matches an
// occupied core rather than a sleeping one). See DESIGN.md, substitution 1.

#include "core/chain.hpp"

#include <chrono>
#include <vector>

namespace amp::rt {

class CoreEmulator {
public:
    virtual ~CoreEmulator() = default;

    /// Called by a worker right after running task `task_index` (1-based).
    /// `elapsed` is the actual wall-clock cost of the task on this machine.
    virtual void after_task(int task_index, core::CoreType worker_type,
                            std::chrono::nanoseconds elapsed) = 0;
};

/// No-op emulator: workers run at native speed regardless of type.
class NullEmulator final : public CoreEmulator {
public:
    void after_task(int, core::CoreType, std::chrono::nanoseconds) override {}
};

/// Spins for (factor - 1) x the task's actual cost when the worker models a
/// little core. With per-task factors taken from a latency profile, the
/// emulated machine reproduces the big/little ratios of Table III.
class SlowdownEmulator final : public CoreEmulator {
public:
    /// Uniform slowdown for every task.
    explicit SlowdownEmulator(double factor)
        : uniform_factor_(factor)
    {
    }

    /// Per-task slowdowns (1-based task index maps to factors[index - 1]).
    explicit SlowdownEmulator(std::vector<double> factors)
        : factors_(std::move(factors))
    {
    }

    void after_task(int task_index, core::CoreType worker_type,
                    std::chrono::nanoseconds elapsed) override;

private:
    [[nodiscard]] double factor_for(int task_index) const;

    double uniform_factor_ = 1.0;
    std::vector<double> factors_;
};

} // namespace amp::rt
