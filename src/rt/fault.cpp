#include "rt/fault.hpp"

#include <algorithm>
#include <string>

namespace amp::rt {

TransientTaskFault::TransientTaskFault(int task, std::uint64_t frame)
    : std::runtime_error{"injected transient fault: task " + std::to_string(task) + ", frame "
                         + std::to_string(frame)}
    , task_(task)
    , frame_(frame)
{
}

void FaultInjector::add(FaultSpec spec)
{
    std::lock_guard lock{mutex_};
    specs_.push_back(spec);
}

FaultInjector FaultInjector::random_plan(std::uint64_t seed, const RandomFaultConfig& config)
{
    FaultInjector injector;
    Rng rng{seed};
    const auto frame = [&] {
        return static_cast<std::uint64_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(config.frames) - 1));
    };
    for (int i = 0; i < config.transients; ++i) {
        FaultSpec spec;
        spec.kind = FaultKind::transient;
        spec.frame = frame();
        spec.task = static_cast<int>(rng.uniform_int(1, std::max(1, config.tasks)));
        spec.count = config.transient_count;
        injector.specs_.push_back(spec);
    }
    for (int i = 0; i < config.stalls; ++i) {
        FaultSpec spec;
        spec.kind = FaultKind::stall;
        spec.frame = frame();
        spec.worker = static_cast<int>(rng.uniform_int(0, std::max(1, config.workers) - 1));
        spec.stall = config.stall_duration;
        injector.specs_.push_back(spec);
    }
    for (int i = 0; i < config.kills; ++i) {
        FaultSpec spec;
        spec.kind = FaultKind::kill;
        spec.frame = frame();
        spec.worker = static_cast<int>(rng.uniform_int(0, std::max(1, config.workers) - 1));
        injector.specs_.push_back(spec);
    }
    return injector;
}

bool FaultInjector::should_throw(int task, std::uint64_t frame)
{
    std::lock_guard lock{mutex_};
    for (FaultSpec& spec : specs_) {
        if (spec.kind == FaultKind::transient && spec.task == task && spec.frame == frame
            && spec.count > 0) {
            --spec.count;
            return true;
        }
    }
    return false;
}

std::chrono::milliseconds FaultInjector::stall_before(int worker, std::uint64_t frame)
{
    std::lock_guard lock{mutex_};
    for (FaultSpec& spec : specs_) {
        if (spec.kind == FaultKind::stall && spec.worker == worker && frame >= spec.frame
            && spec.count > 0) {
            --spec.count;
            return spec.stall;
        }
    }
    return std::chrono::milliseconds{0};
}

bool FaultInjector::should_kill(int worker, std::uint64_t frame)
{
    std::lock_guard lock{mutex_};
    for (FaultSpec& spec : specs_) {
        if (spec.kind == FaultKind::kill && spec.worker == worker && frame >= spec.frame
            && spec.count > 0) {
            --spec.count;
            return true;
        }
    }
    return false;
}

bool FaultInjector::has_liveness_faults() const
{
    std::lock_guard lock{mutex_};
    return std::any_of(specs_.begin(), specs_.end(), [](const FaultSpec& spec) {
        return spec.kind != FaultKind::transient && spec.count > 0;
    });
}

std::size_t FaultInjector::pending() const
{
    std::lock_guard lock{mutex_};
    std::size_t pending = 0;
    for (const FaultSpec& spec : specs_)
        pending += static_cast<std::size_t>(std::max(0, spec.count));
    return pending;
}

std::vector<FaultSpec> FaultInjector::plan() const
{
    std::lock_guard lock{mutex_};
    return specs_;
}

} // namespace amp::rt
