#pragma once
// Bounded per-worker event recording with a Chrome-trace exporter.
//
// Each worker owns one TraceRing (single producer, fixed capacity, oldest
// events overwritten) so recording never blocks, allocates or contends.
// The TraceRecorder maps worker ids to rings ("tracks"), interns event
// names once at setup, and renders everything as Chrome trace-event JSON
// that loads directly in chrome://tracing or Perfetto, one track per
// worker.
//
// Threading contract: intern() and add_track() are mutex-protected but
// must all happen-before any concurrent emit (the pipeline sets tracks up
// before spawning workers); emit() on distinct tracks is unsynchronized
// and safe; reading (events(), chrome_trace_json()) requires the producers
// to have quiesced (workers joined).

#include "obs/json.hpp"

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace amp::obs {

enum class Phase : char {
    begin = 'B',
    end = 'E',
    complete = 'X',  ///< span with explicit duration
    instant = 'i',
};

struct TraceEvent {
    std::uint32_t name_id = 0; ///< interned via TraceRecorder::intern
    Phase phase = Phase::instant;
    double ts_us = 0.0;  ///< relative to the run's start (rt) or virtual time (dsim)
    double dur_us = 0.0; ///< complete events only
    std::uint64_t frame = kNoFrame;
    std::int32_t stage = -1;
    std::int32_t task = -1;

    static constexpr std::uint64_t kNoFrame = std::numeric_limits<std::uint64_t>::max();
};

/// Fixed-capacity overwrite-oldest event buffer; one producer.
class TraceRing {
public:
    explicit TraceRing(std::size_t capacity)
        : slots_(capacity > 0 ? capacity : 1)
    {
    }

    void push(const TraceEvent& event) noexcept
    {
        slots_[static_cast<std::size_t>(pushed_ % slots_.size())] = event;
        ++pushed_;
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
    [[nodiscard]] std::uint64_t pushed() const noexcept { return pushed_; }
    [[nodiscard]] std::size_t size() const noexcept
    {
        return static_cast<std::size_t>(std::min<std::uint64_t>(pushed_, slots_.size()));
    }
    [[nodiscard]] std::uint64_t dropped() const noexcept { return pushed_ - size(); }

    /// Retained events, oldest first.
    [[nodiscard]] std::vector<TraceEvent> events() const
    {
        std::vector<TraceEvent> out;
        const std::size_t n = size();
        out.reserve(n);
        const std::uint64_t first = pushed_ - n;
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(slots_[static_cast<std::size_t>((first + i) % slots_.size())]);
        return out;
    }

private:
    std::vector<TraceEvent> slots_;
    std::uint64_t pushed_ = 0;
};

class TraceRecorder {
public:
    explicit TraceRecorder(std::size_t capacity_per_track = 1u << 15)
        : capacity_(capacity_per_track)
    {
    }

    /// Returns a stable id for `name`, reusing the id of an equal name.
    [[nodiscard]] std::uint32_t intern(const std::string& name);

    /// Appends a track (ring) named `name`; returns its id. Track ids are
    /// dense and stable, so callers record a base and offset worker ids.
    std::size_t add_track(const std::string& name);

    [[nodiscard]] std::size_t track_count() const;

    void emit(std::size_t track, const TraceEvent& event) noexcept
    {
        tracks_[track]->push(event);
    }
    void emit_complete(std::size_t track, std::uint32_t name_id, double ts_us, double dur_us,
                       std::uint64_t frame, std::int32_t stage, std::int32_t task = -1) noexcept
    {
        emit(track, TraceEvent{name_id, Phase::complete, ts_us, dur_us, frame, stage, task});
    }
    void emit_instant(std::size_t track, std::uint32_t name_id, double ts_us,
                      std::uint64_t frame, std::int32_t stage) noexcept
    {
        emit(track, TraceEvent{name_id, Phase::instant, ts_us, 0.0, frame, stage, -1});
    }

    [[nodiscard]] const std::string& name(std::uint32_t name_id) const
    {
        return names_[name_id];
    }
    [[nodiscard]] const std::string& track_name(std::size_t track) const
    {
        return track_names_[track];
    }
    [[nodiscard]] std::vector<TraceEvent> events(std::size_t track) const
    {
        return tracks_[track]->events();
    }
    [[nodiscard]] std::uint64_t total_events() const;
    [[nodiscard]] std::uint64_t total_dropped() const;

    /// Chrome trace-event JSON ({"traceEvents": [...]}) with thread_name
    /// metadata per track. Producers must have quiesced.
    [[nodiscard]] std::string chrome_trace_json() const;

    /// Writes chrome_trace_json() to `path`; false on I/O failure.
    bool write_chrome_trace(const std::string& path) const;

private:
    mutable std::mutex mutex_; ///< guards the name/track tables during setup
    std::size_t capacity_;
    std::vector<std::string> names_;
    std::vector<std::unique_ptr<TraceRing>> tracks_;
    std::vector<std::string> track_names_;
};

} // namespace amp::obs
