#pragma once
// Telemetry naming contract shared by the real runtime (rt::Pipeline) and
// the discrete-event simulator (dsim::simulate*): both emit trace events
// and metrics built from these helpers, so a simulated run and a real run
// of the same chain/schedule are diffable event-by-event (same names,
// stage/task ids and phases; only timestamps differ).
// docs/OBSERVABILITY.md is the human-readable version of this contract.

#include <string>

namespace amp::obs::schema {

// -- trace event names -----------------------------------------------------

/// Span covering one frame through one stage's task interval [first, last].
[[nodiscard]] inline std::string stage_span(int stage, int first_task, int last_task)
{
    return "stage" + std::to_string(stage) + "[t" + std::to_string(first_task) + "-t"
        + std::to_string(last_task) + "]";
}

inline constexpr const char* kRetry = "retry";            ///< transient fault absorbed
inline constexpr const char* kTombstone = "tombstone";    ///< frame dropped, stream kept contiguous
inline constexpr const char* kFence = "fence";            ///< watchdog declared a worker lost
inline constexpr const char* kEndOfStream = "end_of_stream";

// -- track (thread) names --------------------------------------------------

/// Worker `worker` (global stage-major index) serving `stage`.
[[nodiscard]] inline std::string worker_track(int worker, int stage)
{
    return "worker " + std::to_string(worker) + " (stage " + std::to_string(stage) + ")";
}

inline constexpr const char* kWatchdogTrack = "watchdog";

// -- metric names ----------------------------------------------------------

inline constexpr const char* kFramesDelivered = "amp_frames_delivered_total";
inline constexpr const char* kFramesDropped = "amp_frames_dropped_total";
inline constexpr const char* kRetries = "amp_task_retries_total";
inline constexpr const char* kHeartbeats = "amp_worker_heartbeats_total";
inline constexpr const char* kWorkersFenced = "amp_workers_fenced_total";
inline constexpr const char* kRunElapsedSeconds = "amp_run_elapsed_seconds";
inline constexpr const char* kRunFps = "amp_run_fps";

/// Per-stage per-frame task-interval latency (histogram, us).
[[nodiscard]] inline std::string stage_latency(int stage)
{
    return "amp_stage_latency_us{stage=\"" + std::to_string(stage) + "\"}";
}

/// Per-stage input wait (histogram, us). In rt this is the time a worker
/// waited to pop its next frame; in dsim the time a frame queued for a free
/// server -- duals of the same contention signal.
[[nodiscard]] inline std::string queue_wait(int stage)
{
    return "amp_queue_wait_us{stage=\"" + std::to_string(stage) + "\"}";
}

// -- overload protection (docs/FAULT_MODEL.md, "Overload model") -----------

/// Frames deliberately tombstoned by the pipeline's load shedder (a subset
/// of amp_frames_dropped_total -- every shed is counted, never silent).
inline constexpr const char* kFramesShed = "amp_frames_shed_total";
/// rt::BrownoutController level (0 = normal, 1 = browned out).
inline constexpr const char* kBrownoutLevel = "amp_brownout_level";
inline constexpr const char* kBrownoutEntries = "amp_brownout_entries_total";

/// Buffered envelopes in the stage's output queue (gauge, sampled by the
/// pipeline's overload monitor).
[[nodiscard]] inline std::string queue_depth(int stage)
{
    return "amp_queue_depth{stage=\"" + std::to_string(stage) + "\"}";
}

// Solver-service admission control / circuit breaker / brownout serving
// (docs/SOLVER_SERVICE.md). The dsim admission model reuses the runtime's
// decision classes, so these names cover both.
inline constexpr const char* kSvcAdmissionRejected = "amp_svc_admission_rejected_total";
inline constexpr const char* kSvcAdmissionDisplaced = "amp_svc_admission_displaced_total";
inline constexpr const char* kSvcAdmissionDepth = "amp_svc_admission_depth";
inline constexpr const char* kSvcDeadlineExceeded = "amp_svc_deadline_exceeded_total";
inline constexpr const char* kSvcDegradedServes = "amp_svc_degraded_serves_total";
inline constexpr const char* kSvcRefinements = "amp_svc_refinements_total";
inline constexpr const char* kSvcBreakerRejected = "amp_svc_breaker_rejected_total";
inline constexpr const char* kSvcBreakerTrips = "amp_svc_breaker_trips_total";
/// Gauge mirroring svc::BreakerState (0 closed, 1 open, 2 half-open).
inline constexpr const char* kSvcBreakerState = "amp_svc_breaker_state";

// -- multi-tenant arbiter (docs/ARBITER.md) --------------------------------
//
// Recorded by arb::Arbiter into its configured registry (the solver
// service's by default); counter table in docs/SOLVER_SERVICE.md.

inline constexpr const char* kArbRearbitrations = "amp_arb_rearbitrations_total";
/// Period-curve queries issued by the allocation loop (most are served by
/// the solution cache; compare with amp_svc_*_cache_miss to see real work).
inline constexpr const char* kArbProbes = "amp_arb_probes_total";
/// Single-core grants made by the filling loop.
inline constexpr const char* kArbGrants = "amp_arb_grants_total";
/// Budget changes applied to live executors without a drain.
inline constexpr const char* kArbFrameSwaps = "amp_arb_frame_swaps_total";
/// Budget changes applied as between-segment plan deltas.
inline constexpr const char* kArbDeltaSwaps = "amp_arb_delta_swaps_total";
/// Budget changes a live executor could not absorb (owner must rebuild).
inline constexpr const char* kArbRebuildsRequired = "amp_arb_rebuilds_required_total";
inline constexpr const char* kArbTenants = "amp_arb_tenants";
/// Tenants whose quota floor the pool could not cover, last arbitration.
inline constexpr const char* kArbStarvedTenants = "amp_arb_starved_tenants";
inline constexpr const char* kArbPoolFreeBig = "amp_arb_pool_free_big";
inline constexpr const char* kArbPoolFreeLittle = "amp_arb_pool_free_little";

} // namespace amp::obs::schema
