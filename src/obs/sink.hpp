#pragma once
// The injection point for runtime telemetry: one Sink bundles a
// MetricsRegistry and a TraceRecorder behind enable flags. rt::Pipeline,
// dsim::simulate* and the benches take a `Sink*`; nullptr (or a Sink
// constructed with SinkConfig::null()) is the null sink -- instrumented
// code resolves to a single pointer test on the hot path, verified free by
// the ablation_obs_overhead bench.

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <string>

namespace amp::obs {

struct SinkConfig {
    bool metrics = true;
    bool trace = true;
    std::size_t trace_capacity = 1u << 15; ///< events retained per track
    std::size_t counter_shards = 64;       ///< >= concurrent writers

    /// A sink that records nothing (both subsystems off).
    [[nodiscard]] static SinkConfig null() { return SinkConfig{false, false, 1, 1}; }
};

class Sink {
public:
    explicit Sink(SinkConfig config = {})
        : config_(config)
        , metrics_(config.counter_shards)
        , trace_(config.trace_capacity)
    {
    }

    [[nodiscard]] bool metrics_enabled() const noexcept { return config_.metrics; }
    [[nodiscard]] bool trace_enabled() const noexcept { return config_.trace; }
    [[nodiscard]] bool enabled() const noexcept { return config_.metrics || config_.trace; }

    [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
    [[nodiscard]] TraceRecorder& trace() noexcept { return trace_; }
    [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }
    [[nodiscard]] const TraceRecorder& trace() const noexcept { return trace_; }
    [[nodiscard]] const SinkConfig& config() const noexcept { return config_; }

    [[nodiscard]] std::string render_prometheus() const
    {
        return obs::render_prometheus(metrics_.snapshot());
    }
    [[nodiscard]] std::string render_json() const { return obs::render_json(metrics_.snapshot()); }
    [[nodiscard]] std::string chrome_trace_json() const { return trace_.chrome_trace_json(); }
    bool write_chrome_trace(const std::string& path) const
    {
        return trace_.write_chrome_trace(path);
    }

private:
    SinkConfig config_;
    MetricsRegistry metrics_;
    TraceRecorder trace_;
};

} // namespace amp::obs
