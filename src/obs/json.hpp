#pragma once
// Minimal JSON emission used by the observability exporters (Chrome traces,
// metrics exposition) and the benchmark JSON reports. Emission only -- the
// repo never parses JSON, so a writer with automatic comma/escape handling
// is all we need.

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace amp::obs {

/// Escapes a string for embedding between JSON quotes.
[[nodiscard]] inline std::string json_escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/// Renders a double as a JSON number (shortest round-trip form; non-finite
/// values, which JSON cannot represent, become 0).
[[nodiscard]] inline std::string json_number(double value)
{
    if (!std::isfinite(value))
        return "0";
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
    return ec == std::errc{} ? std::string(buf, ptr) : std::string{"0"};
}

/// Streaming JSON writer: tracks nesting and inserts commas automatically.
/// Usage: w.begin_object().key("a").value(1.0).end_object(); w.str().
class JsonWriter {
public:
    JsonWriter& begin_object() { return open('{'); }
    JsonWriter& end_object() { return close('}'); }
    JsonWriter& begin_array() { return open('['); }
    JsonWriter& end_array() { return close(']'); }

    JsonWriter& key(std::string_view name)
    {
        prefix();
        out_ += '"';
        out_ += json_escape(name);
        out_ += "\":";
        pending_key_ = true;
        return *this;
    }

    JsonWriter& value(std::string_view text)
    {
        prefix();
        out_ += '"';
        out_ += json_escape(text);
        out_ += '"';
        return *this;
    }
    JsonWriter& value(const char* text) { return value(std::string_view{text}); }
    JsonWriter& value(double number)
    {
        prefix();
        out_ += json_number(number);
        return *this;
    }
    JsonWriter& value(std::uint64_t number)
    {
        prefix();
        out_ += std::to_string(number);
        return *this;
    }
    JsonWriter& value(std::int64_t number)
    {
        prefix();
        out_ += std::to_string(number);
        return *this;
    }
    JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
    JsonWriter& value(bool flag)
    {
        prefix();
        out_ += flag ? "true" : "false";
        return *this;
    }

    /// Splices a pre-rendered JSON fragment in value position.
    JsonWriter& raw(std::string_view json)
    {
        prefix();
        out_ += json;
        return *this;
    }

    [[nodiscard]] const std::string& str() const noexcept { return out_; }

private:
    JsonWriter& open(char bracket)
    {
        prefix();
        out_ += bracket;
        nesting_.push_back(false);
        return *this;
    }
    JsonWriter& close(char bracket)
    {
        nesting_.pop_back();
        out_ += bracket;
        return *this;
    }
    void prefix()
    {
        if (pending_key_) {
            pending_key_ = false;
            return;
        }
        if (!nesting_.empty()) {
            if (nesting_.back())
                out_ += ',';
            else
                nesting_.back() = true;
        }
    }

    std::string out_;
    std::vector<char> nesting_; ///< per open container: wrote an element yet?
    bool pending_key_ = false;
};

} // namespace amp::obs
