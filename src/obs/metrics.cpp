#include "obs/metrics.hpp"

#include "obs/json.hpp"

#include <utility>

namespace amp::obs {

namespace {

/// Splits `amp_name{label="x"}` into ("amp_name", `label="x"`); the label
/// part is empty for plain names.
std::pair<std::string, std::string> split_labels(const std::string& name)
{
    const auto brace = name.find('{');
    if (brace == std::string::npos || name.back() != '}')
        return {name, ""};
    return {name.substr(0, brace), name.substr(brace + 1, name.size() - brace - 2)};
}

std::string with_labels(const std::string& base, const std::string& labels,
                        const std::string& extra = "")
{
    std::string all = labels;
    if (!extra.empty()) {
        if (!all.empty())
            all += ',';
        all += extra;
    }
    return all.empty() ? base : base + '{' + all + '}';
}

} // namespace

Counter& MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard lock{mutex_};
    auto& slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>(counter_shards_);
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard lock{mutex_};
    auto& slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name)
{
    std::lock_guard lock{mutex_};
    auto& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const
{
    std::lock_guard lock{mutex_};
    MetricsSnapshot snap;
    for (const auto& [name, counter] : counters_)
        snap.counters[name] = counter->value();
    for (const auto& [name, gauge] : gauges_)
        snap.gauges[name] = gauge->value();
    for (const auto& [name, histogram] : histograms_)
        snap.histograms[name] = histogram->snapshot();
    return snap;
}

std::string render_prometheus(const MetricsSnapshot& snapshot)
{
    std::string out;
    std::string last_type_comment;
    const auto type_line = [&](const std::string& base, const char* type) {
        if (base == last_type_comment)
            return;
        last_type_comment = base;
        out += "# TYPE " + base + ' ' + type + '\n';
    };

    for (const auto& [name, value] : snapshot.counters) {
        const auto [base, labels] = split_labels(name);
        type_line(base, "counter");
        out += with_labels(base, labels) + ' ' + std::to_string(value) + '\n';
    }
    for (const auto& [name, value] : snapshot.gauges) {
        const auto [base, labels] = split_labels(name);
        type_line(base, "gauge");
        out += with_labels(base, labels) + ' ' + json_number(value) + '\n';
    }
    for (const auto& [name, histogram] : snapshot.histograms) {
        const auto [base, labels] = split_labels(name);
        type_line(base, "summary");
        for (const auto& [q, v] : {std::pair{"0.5", histogram.p50_us()},
                                   std::pair{"0.95", histogram.p95_us()},
                                   std::pair{"0.99", histogram.p99_us()}})
            out += with_labels(base, labels, std::string{"quantile=\""} + q + '"') + ' '
                + json_number(v) + '\n';
        out += with_labels(base + "_sum", labels) + ' '
            + json_number(static_cast<double>(histogram.sum_ns()) / 1e3) + '\n';
        out += with_labels(base + "_count", labels) + ' ' + std::to_string(histogram.count())
            + '\n';
    }
    return out;
}

void append_metrics_json(JsonWriter& writer, const MetricsSnapshot& snapshot)
{
    writer.begin_object();
    writer.key("counters").begin_object();
    for (const auto& [name, value] : snapshot.counters)
        writer.key(name).value(value);
    writer.end_object();
    writer.key("gauges").begin_object();
    for (const auto& [name, value] : snapshot.gauges)
        writer.key(name).value(value);
    writer.end_object();
    writer.key("histograms").begin_object();
    for (const auto& [name, histogram] : snapshot.histograms) {
        writer.key(name).begin_object();
        writer.key("count").value(histogram.count());
        writer.key("mean_us").value(histogram.mean_us());
        writer.key("p50_us").value(histogram.p50_us());
        writer.key("p95_us").value(histogram.p95_us());
        writer.key("p99_us").value(histogram.p99_us());
        writer.key("max_us").value(histogram.max_us());
        writer.end_object();
    }
    writer.end_object();
    writer.end_object();
}

std::string render_json(const MetricsSnapshot& snapshot)
{
    JsonWriter writer;
    append_metrics_json(writer, snapshot);
    return writer.str();
}

} // namespace amp::obs
