#include "obs/trace.hpp"

#include <cstdio>

namespace amp::obs {

std::uint32_t TraceRecorder::intern(const std::string& name)
{
    std::lock_guard lock{mutex_};
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return static_cast<std::uint32_t>(i);
    names_.push_back(name);
    return static_cast<std::uint32_t>(names_.size() - 1);
}

std::size_t TraceRecorder::add_track(const std::string& name)
{
    std::lock_guard lock{mutex_};
    tracks_.push_back(std::make_unique<TraceRing>(capacity_));
    track_names_.push_back(name);
    return tracks_.size() - 1;
}

std::size_t TraceRecorder::track_count() const
{
    std::lock_guard lock{mutex_};
    return tracks_.size();
}

std::uint64_t TraceRecorder::total_events() const
{
    std::lock_guard lock{mutex_};
    std::uint64_t total = 0;
    for (const auto& track : tracks_)
        total += track->size();
    return total;
}

std::uint64_t TraceRecorder::total_dropped() const
{
    std::lock_guard lock{mutex_};
    std::uint64_t total = 0;
    for (const auto& track : tracks_)
        total += track->dropped();
    return total;
}

std::string TraceRecorder::chrome_trace_json() const
{
    std::lock_guard lock{mutex_};
    JsonWriter w;
    w.begin_object();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").begin_array();

    w.begin_object();
    w.key("ph").value("M");
    w.key("name").value("process_name");
    w.key("pid").value(0);
    w.key("args").begin_object().key("name").value("amp").end_object();
    w.end_object();

    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        w.begin_object();
        w.key("ph").value("M");
        w.key("name").value("thread_name");
        w.key("pid").value(0);
        w.key("tid").value(static_cast<std::uint64_t>(t));
        w.key("args").begin_object().key("name").value(track_names_[t]).end_object();
        w.end_object();
    }

    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        for (const TraceEvent& e : tracks_[t]->events()) {
            w.begin_object();
            w.key("name").value(names_[e.name_id]);
            const char phase[2] = {static_cast<char>(e.phase), '\0'};
            w.key("ph").value(phase);
            w.key("pid").value(0);
            w.key("tid").value(static_cast<std::uint64_t>(t));
            w.key("ts").value(e.ts_us);
            if (e.phase == Phase::complete)
                w.key("dur").value(e.dur_us);
            if (e.phase == Phase::instant)
                w.key("s").value("t"); // thread-scoped instant
            w.key("args").begin_object();
            if (e.frame != TraceEvent::kNoFrame)
                w.key("frame").value(static_cast<std::uint64_t>(e.frame));
            if (e.stage >= 0)
                w.key("stage").value(static_cast<std::int64_t>(e.stage));
            if (e.task >= 0)
                w.key("task").value(static_cast<std::int64_t>(e.task));
            w.end_object();
            w.end_object();
        }
    }

    w.end_array();
    w.end_object();
    return w.str();
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const
{
    const std::string json = chrome_trace_json();
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        return false;
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
    const bool ok = std::fclose(file) == 0 && written == json.size();
    return ok;
}

} // namespace amp::obs
