#pragma once
// Log-bucketed latency histograms (HDR-style): fixed memory, lock-free
// recording, mergeable snapshots, cheap percentiles.
//
// Values are nanoseconds (unsigned). The bucket layout is the classic
// power-of-two major bucket subdivided into 2^kSubBucketBits linear
// sub-buckets: values below 2^kSubBucketBits are recorded exactly, larger
// values with a relative error bounded by 2^-kSubBucketBits (~3.1% for the
// 5-bit layout used here). The whole 64-bit range fits in kBucketCount
// buckets, so a histogram is ~15 KB and never allocates after construction.
//
// Recording uses relaxed atomics only: any thread may record concurrently
// with any other and with snapshot(), which is what the per-worker pipeline
// instrumentation and the drift detector need. A snapshot is a plain value
// type -- merge snapshots from many workers, then read percentiles.

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

namespace amp::obs {

namespace hdr {

inline constexpr int kSubBucketBits = 5;
inline constexpr std::uint64_t kSubBuckets = std::uint64_t{1} << kSubBucketBits;
// Values >= 2^kSubBucketBits have msb in [kSubBucketBits, 63], i.e. shift
// in [0, 63 - kSubBucketBits], giving 64 - kSubBucketBits major buckets on
// top of the exact sub-kSubBuckets range: (64 - kSubBucketBits + 1) groups.
inline constexpr std::size_t kBucketCount =
    static_cast<std::size_t>((64 - kSubBucketBits + 1) * kSubBuckets);

/// Index of the bucket that holds `value`. Monotone in `value`.
[[nodiscard]] constexpr std::size_t bucket_index(std::uint64_t value) noexcept
{
    if (value < kSubBuckets)
        return static_cast<std::size_t>(value);
    const int msb = std::bit_width(value) - 1;
    const int shift = msb - kSubBucketBits;
    return static_cast<std::size_t>(shift + 1) * kSubBuckets
        + static_cast<std::size_t>((value >> shift) - kSubBuckets);
}

/// Smallest value mapped to bucket `index`.
[[nodiscard]] constexpr std::uint64_t bucket_lower(std::size_t index) noexcept
{
    if (index < kSubBuckets)
        return index;
    const auto shift = static_cast<int>(index / kSubBuckets) - 1;
    const std::uint64_t sub = index % kSubBuckets + kSubBuckets;
    return sub << shift;
}

/// Largest value mapped to bucket `index`.
[[nodiscard]] constexpr std::uint64_t bucket_upper(std::size_t index) noexcept
{
    if (index < kSubBuckets)
        return index;
    const auto shift = static_cast<int>(index / kSubBuckets) - 1;
    return bucket_lower(index) + ((std::uint64_t{1} << shift) - 1);
}

} // namespace hdr

/// Immutable aggregate of one or more histograms. Plain value type: copy,
/// merge and query freely, no synchronization needed.
class HistogramSnapshot {
public:
    HistogramSnapshot() = default;

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] std::uint64_t sum_ns() const noexcept { return sum_; }
    [[nodiscard]] std::uint64_t max_ns() const noexcept { return max_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

    [[nodiscard]] double mean_us() const noexcept
    {
        return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) / 1e3 : 0.0;
    }
    [[nodiscard]] double max_us() const noexcept { return static_cast<double>(max_) / 1e3; }

    /// Value (ns) at quantile `q` in [0, 1]: the upper bound of the bucket
    /// holding the ceil(q * count)-th recorded value, clamped to the true
    /// maximum. 0 for an empty snapshot.
    [[nodiscard]] std::uint64_t percentile_ns(double q) const noexcept;
    [[nodiscard]] double percentile_us(double q) const noexcept
    {
        return static_cast<double>(percentile_ns(q)) / 1e3;
    }
    [[nodiscard]] double p50_us() const noexcept { return percentile_us(0.50); }
    [[nodiscard]] double p95_us() const noexcept { return percentile_us(0.95); }
    [[nodiscard]] double p99_us() const noexcept { return percentile_us(0.99); }

    /// Element-wise accumulation of another snapshot.
    void merge(const HistogramSnapshot& other);

    /// Per-bucket counts (hdr layout); zero-filled when never recorded into.
    [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept { return buckets_; }

private:
    friend class Histogram;

    std::vector<std::uint64_t> buckets_; ///< empty until first merge/snapshot
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/// Lock-free recording side. Fixed size, no allocation after construction.
class Histogram {
public:
    Histogram() = default;
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    void record(std::uint64_t value_ns) noexcept
    {
        buckets_[hdr::bucket_index(value_ns)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value_ns, std::memory_order_relaxed);
        std::uint64_t seen = max_.load(std::memory_order_relaxed);
        while (seen < value_ns
               && !max_.compare_exchange_weak(seen, value_ns, std::memory_order_relaxed)) {
        }
    }

    void record_us(double us) noexcept
    {
        record(us > 0.0 ? static_cast<std::uint64_t>(std::llround(us * 1e3)) : 0);
    }

    void record_duration(std::chrono::nanoseconds elapsed) noexcept
    {
        record(elapsed.count() > 0 ? static_cast<std::uint64_t>(elapsed.count()) : 0);
    }

    [[nodiscard]] std::uint64_t count() const noexcept
    {
        return count_.load(std::memory_order_relaxed);
    }

    /// Consistent-enough copy for reporting: concurrent recording may leave
    /// the totals one event ahead of the buckets, never behind.
    [[nodiscard]] HistogramSnapshot snapshot() const;

private:
    std::array<std::atomic<std::uint64_t>, hdr::kBucketCount> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

} // namespace amp::obs
