#pragma once
// Lock-free runtime metrics: sharded counters, gauges and latency
// histograms behind a named registry, with Prometheus-text and JSON
// exposition. docs/OBSERVABILITY.md lists the metric names the runtime and
// simulator emit.
//
// Hot-path contract: Counter::add / Gauge::set / Histogram::record are
// wait-free relaxed atomics. A counter is an array of cache-line-padded
// slots; each worker increments its own slot (index = worker id), so
// concurrent workers never contend on a line. Registration (counter() /
// gauge() / histogram()) takes a mutex and must happen before the hot path
// -- resolve handles once, then record through them.

#include "obs/histogram.hpp"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace amp::obs {

inline constexpr std::size_t kCacheLine = 64;

/// Monotone counter sharded over cache-line-padded slots.
class Counter {
public:
    explicit Counter(std::size_t shards)
        : slots_(shards > 0 ? shards : 1)
    {
    }
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    /// `shard` is typically the caller's worker index; wrapped into range.
    void add(std::size_t shard, std::uint64_t n = 1) noexcept
    {
        slots_[shard % slots_.size()].value.fetch_add(n, std::memory_order_relaxed);
    }
    void inc(std::size_t shard) noexcept { add(shard, 1); }

    [[nodiscard]] std::uint64_t value() const noexcept
    {
        std::uint64_t total = 0;
        for (const Slot& slot : slots_)
            total += slot.value.load(std::memory_order_relaxed);
        return total;
    }

    [[nodiscard]] std::size_t shards() const noexcept { return slots_.size(); }

private:
    struct alignas(kCacheLine) Slot {
        std::atomic<std::uint64_t> value{0};
    };
    static_assert(sizeof(Slot) == kCacheLine, "one slot per cache line");

    std::vector<Slot> slots_;
};

/// Last-write-wins scalar (double), relaxed atomics.
class Gauge {
public:
    Gauge() = default;
    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Point-in-time aggregate of a registry, safe to render or ship anywhere.
struct MetricsSnapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
};

/// Named metric instruments with stable addresses: references returned by
/// counter()/gauge()/histogram() stay valid for the registry's lifetime.
/// Metric names may embed Prometheus labels, e.g.
/// `amp_stage_latency_us{stage="0"}` -- the renderers understand the form.
class MetricsRegistry {
public:
    /// `counter_shards` sizes every counter's slot array; use at least the
    /// number of concurrent writers (pipeline workers).
    explicit MetricsRegistry(std::size_t counter_shards = 64)
        : counter_shards_(counter_shards > 0 ? counter_shards : 1)
    {
    }
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    [[nodiscard]] Counter& counter(const std::string& name);
    [[nodiscard]] Gauge& gauge(const std::string& name);
    [[nodiscard]] Histogram& histogram(const std::string& name);

    [[nodiscard]] MetricsSnapshot snapshot() const;

    [[nodiscard]] std::size_t counter_shards() const noexcept { return counter_shards_; }

private:
    mutable std::mutex mutex_;
    std::size_t counter_shards_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Prometheus text exposition (counters, gauges, histograms as summaries
/// with p50/p95/p99 quantiles plus _sum/_count in microseconds).
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snapshot);

/// JSON exposition: {"counters":{...},"gauges":{...},"histograms":{...}}.
[[nodiscard]] std::string render_json(const MetricsSnapshot& snapshot);

/// Appends the render_json object (sans braces handling -- a full object
/// value) to an existing writer; shared with the bench JSON reports.
class JsonWriter;
void append_metrics_json(JsonWriter& writer, const MetricsSnapshot& snapshot);

} // namespace amp::obs
