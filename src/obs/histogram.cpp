#include "obs/histogram.hpp"

#include <algorithm>

namespace amp::obs {

std::uint64_t HistogramSnapshot::percentile_ns(double q) const noexcept
{
    if (count_ == 0 || buckets_.empty())
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        std::max<double>(1.0, std::ceil(q * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return std::min(hdr::bucket_upper(i), max_);
    }
    return max_;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other)
{
    if (other.buckets_.empty())
        return;
    if (buckets_.empty())
        buckets_.assign(hdr::kBucketCount, 0);
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
}

HistogramSnapshot Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.buckets_.resize(hdr::kBucketCount);
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < hdr::kBucketCount; ++i) {
        const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
        snap.buckets_[i] = n;
        total += n;
        sum += n * ((hdr::bucket_lower(i) + hdr::bucket_upper(i)) / 2);
    }
    // Prefer the exact totals when they agree with the buckets (quiescent
    // case); under concurrent recording fall back to the bucket-derived
    // values so count/sum/percentiles stay mutually consistent.
    const std::uint64_t exact_count = count_.load(std::memory_order_relaxed);
    const std::uint64_t exact_sum = sum_.load(std::memory_order_relaxed);
    snap.count_ = total;
    snap.sum_ = exact_count == total ? exact_sum : sum;
    snap.max_ = max_.load(std::memory_order_relaxed);
    return snap;
}

} // namespace amp::obs
