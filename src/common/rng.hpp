#pragma once
// Deterministic, platform-independent pseudo-random number generation.
//
// The standard library's distributions (std::uniform_int_distribution, ...)
// are not guaranteed to produce the same streams across implementations, so
// all experiment workload generation goes through this header instead. The
// engine is xoshiro256** seeded via splitmix64, the combination recommended
// by the xoshiro authors.

#include <cstdint>
#include <limits>

namespace amp {

/// splitmix64 step; used both for seeding and as a standalone mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit constexpr Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) noexcept
    {
        std::uint64_t sm = seed;
        for (auto& word : state_)
            word = splitmix64(sm);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept
    {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [lo, hi] (inclusive). Uses Lemire's multiply-shift
    /// rejection method for an unbiased draw.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

    /// Uniform real in [lo, hi).
    [[nodiscard]] double uniform_real(double lo, double hi) noexcept;

    /// Standard normal variate (Marsaglia polar method).
    [[nodiscard]] double normal() noexcept;

    /// Bernoulli draw with probability p of returning true.
    [[nodiscard]] bool bernoulli(double p) noexcept { return uniform_real(0.0, 1.0) < p; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
    bool has_spare_normal_ = false;
    double spare_normal_ = 0.0;
};

} // namespace amp
