#pragma once
// A tiny command-line flag parser for the bench/example binaries.
// Supports "--key=value", "--key value" and boolean "--flag" forms.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace amp {

class ArgParse {
public:
    ArgParse(int argc, const char* const* argv);

    [[nodiscard]] bool has(const std::string& key) const;
    [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
    [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
    [[nodiscard]] double get_double(const std::string& key, double fallback) const;
    [[nodiscard]] bool get_bool(const std::string& key, bool fallback = false) const;

    /// Positional (non-flag) arguments in order of appearance.
    [[nodiscard]] const std::vector<std::string>& positional() const noexcept
    {
        return positional_;
    }

private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace amp
