#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace amp {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        throw std::invalid_argument{"TextTable: header must not be empty"};
}

void TextTable::add_row(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        throw std::invalid_argument{"TextTable: row arity does not match header"};
    rows_.push_back(std::move(row));
}

std::string TextTable::str() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "| " : " | ");
            out << row[c] << std::string(widths[c] - row[c].size(), ' ');
        }
        out << " |\n";
    };
    emit_row(header_);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        out << (c == 0 ? "|-" : "-|-");
        out << std::string(widths[c], '-');
    }
    out << "-|\n";
    for (const auto& row : rows_)
        emit_row(row);
    return out.str();
}

std::string TextTable::csv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0)
                out << ',';
            out << row[c];
        }
        out << '\n';
    };
    emit(header_);
    for (const auto& row : rows_)
        emit(row);
    return out.str();
}

std::string fmt(double value, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
    return buffer;
}

std::string fmt_pct(double fraction, int decimals)
{
    return fmt(fraction * 100.0, decimals) + "%";
}

} // namespace amp
