#include "common/rng.hpp"

#include <cmath>

namespace amp {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept
{
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) // full 64-bit range requested
        return static_cast<std::int64_t>((*this)());

    // Lemire's method: multiply into a 128-bit product and reject the small
    // biased fringe.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
        const std::uint64_t threshold = (0 - range) % range;
        while (low < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * range;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::uniform_real(double lo, double hi) noexcept
{
    // 53 random bits -> [0, 1) with full double precision.
    const double unit = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    return lo + unit * (hi - lo);
}

double Rng::normal() noexcept
{
    if (has_spare_normal_) {
        has_spare_normal_ = false;
        return spare_normal_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
        u = uniform_real(-1.0, 1.0);
        v = uniform_real(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_normal_ = v * factor;
    has_spare_normal_ = true;
    return u * factor;
}

} // namespace amp
