#pragma once
// Minimal ASCII table / CSV reporting used by the benchmark harnesses so that
// every table and figure of the paper can be printed in a uniform format.

#include <string>
#include <vector>

namespace amp {

/// A text table with a header row and aligned columns.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    /// Appends a data row; must have the same arity as the header.
    void add_row(std::vector<std::string> row);

    /// Renders the table with column alignment and a separator under the
    /// header.
    [[nodiscard]] std::string str() const;

    /// Renders the table as CSV (no alignment padding).
    [[nodiscard]] std::string csv() const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals (fixed notation).
[[nodiscard]] std::string fmt(double value, int decimals = 2);

/// Formats a percentage (value in [0,1]) like "95.8%".
[[nodiscard]] std::string fmt_pct(double fraction, int decimals = 1);

} // namespace amp
