#pragma once
// Frame parameters of the evaluated DVB-S2 configuration (paper §VI-A2):
// transmission phase, short FECFRAME, K = 14232, rate 8/9, MODCOD 2 (QPSK),
// interframe level in {4, 8}.

#include <cstdint>

namespace amp::dvbs2 {

struct FrameParams {
    int n_ldpc = 16200;        ///< coded bits per FECFRAME (short frame)
    int k_ldpc = 14400;        ///< LDPC information bits (= N_bch)
    int k_bch = 14232;         ///< BCH information bits (the payload K)
    int bits_per_symbol = 2;   ///< QPSK (MODCOD 2)
    int sof_symbols = 26;      ///< start-of-frame field of the PLHEADER
    int plsc_symbols = 64;     ///< PLS-code field of the PLHEADER
    int samples_per_symbol = 2;
    int interframe = 4;        ///< frames fused per pipeline traversal
    int pilot_block_symbols = 36;   ///< pilots per pilot block (pilots on)
    int payload_per_pilot_block = 1440; ///< 16 slots between pilot blocks

    [[nodiscard]] constexpr int xfec_symbols() const noexcept
    {
        return n_ldpc / bits_per_symbol; // 8100 for QPSK short frames
    }
    [[nodiscard]] constexpr int header_symbols() const noexcept
    {
        return sof_symbols + plsc_symbols; // 90
    }
    [[nodiscard]] constexpr int pilot_block_count() const noexcept
    {
        const int sections = xfec_symbols() / payload_per_pilot_block;
        return xfec_symbols() % payload_per_pilot_block == 0 ? sections - 1 : sections;
    }
    [[nodiscard]] constexpr int pilot_symbols() const noexcept
    {
        return pilot_block_count() * pilot_block_symbols; // 180
    }
    [[nodiscard]] constexpr int plframe_symbols() const noexcept
    {
        return header_symbols() + xfec_symbols() + pilot_symbols(); // 8370
    }
    [[nodiscard]] constexpr int plframe_samples() const noexcept
    {
        return plframe_symbols() * samples_per_symbol; // 16740
    }
};

/// Information throughput helpers used by the evaluation (Table II):
/// FPS = interframe * 1e6 / period_us, Mb/s = FPS * K / 1e6.
[[nodiscard]] constexpr double fps_from_period_us(double period_us, int interframe) noexcept
{
    return period_us > 0.0 ? static_cast<double>(interframe) * 1e6 / period_us : 0.0;
}

[[nodiscard]] constexpr double mbps_from_fps(double fps, int k_bch) noexcept
{
    return fps * static_cast<double>(k_bch) / 1e6;
}

} // namespace amp::dvbs2
