#pragma once
// MODCOD registry: the modulation/coding combinations this library
// implements, following the structure of ETSI EN 302 307 Table 12. The
// paper's evaluated configuration is MODCOD 2-style QPSK rate 8/9 on short
// frames; the others generalize the transceiver substrate.

#include "dvbs2/common/psk.hpp"
#include "dvbs2/fec/bch.hpp"
#include "dvbs2/fec/ldpc.hpp"

#include <string>
#include <vector>

namespace amp::dvbs2 {

enum class FrameSize : std::uint8_t { short_frame, normal_frame };

struct ModCod {
    int id = 0;
    std::string name;
    Modulation modulation = Modulation::qpsk;
    FrameSize frame_size = FrameSize::short_frame;
    const BchCode* bch = nullptr;
    const LdpcCode* ldpc = nullptr;

    [[nodiscard]] int n_ldpc() const { return ldpc->n(); }
    [[nodiscard]] int k_bch() const { return bch->k(); }
    [[nodiscard]] int symbols_per_frame() const
    {
        return n_ldpc() / bits_per_symbol(modulation);
    }
    /// Spectral efficiency in information bits per symbol.
    [[nodiscard]] double efficiency() const
    {
        return static_cast<double>(k_bch()) / symbols_per_frame();
    }
};

/// The MODCODs this library ships. Index 0 is the paper's configuration.
[[nodiscard]] const std::vector<ModCod>& supported_modcods();

/// Lookup by name ("qpsk-8/9-short", ...); throws on unknown names.
[[nodiscard]] const ModCod& modcod_by_name(const std::string& name);

} // namespace amp::dvbs2
