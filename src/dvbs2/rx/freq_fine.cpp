#include "dvbs2/rx/freq_fine.hpp"

#include "dvbs2/common/plh_framer.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace amp::dvbs2 {

namespace {

/// Modulation-stripped header: z[j] = r[j] * conj(ref[j]). The header is
/// fully known once the frame is aligned (SOF is constant; the PLS field is
/// constant for a fixed MODCOD, which holds in the evaluated configuration).
std::vector<std::complex<double>> strip_header(const std::complex<float>* frame,
                                               std::uint8_t pls)
{
    const auto header = PlhFramer::build_header(pls);
    std::vector<std::complex<double>> z(header.size());
    for (std::size_t j = 0; j < header.size(); ++j) {
        const std::complex<double> r{frame[j].real(), frame[j].imag()};
        const std::complex<double> ref{header[j].real(), header[j].imag()};
        z[j] = r * std::conj(ref);
    }
    return z;
}

constexpr std::uint8_t kPlsModcod2 = (2 << 3) | 2; // MODCOD 2, short frame

} // namespace

FineFreqLr::FineFreqLr(int frame_symbols, int autocorr_lags, float smoothing)
    : frame_symbols_(frame_symbols)
    , lags_(autocorr_lags)
    , smoothing_(smoothing)
{
    if (autocorr_lags < 1 || autocorr_lags >= 90)
        throw std::invalid_argument{"FineFreqLr: lags must be in [1, 89]"};
}

void FineFreqLr::synchronize(std::vector<std::complex<float>>& frames)
{
    if (frames.size() % static_cast<std::size_t>(frame_symbols_) != 0)
        throw std::invalid_argument{"FineFreqLr: input must hold whole frames"};
    const std::size_t frame_count = frames.size() / static_cast<std::size_t>(frame_symbols_);

    for (std::size_t f = 0; f < frame_count; ++f) {
        std::complex<float>* frame = frames.data() + f * static_cast<std::size_t>(frame_symbols_);

        // Luise & Reggiannini over the modulation-stripped header:
        // nu = 1/(pi (M+1)) * arg( sum_{m=1..M} R(m) ).
        const auto z = strip_header(frame, kPlsModcod2);
        std::complex<double> sum{0.0, 0.0};
        for (int m = 1; m <= lags_; ++m) {
            std::complex<double> r_m{0.0, 0.0};
            for (std::size_t j = static_cast<std::size_t>(m); j < z.size(); ++j)
                r_m += z[j] * std::conj(z[j - static_cast<std::size_t>(m)]);
            sum += r_m;
        }
        const double instant =
            std::arg(sum) / (std::numbers::pi * static_cast<double>(lags_ + 1));
        cfo_ += smoothing_ * (instant - cfo_);

        // Continuous-phase derotation across the contiguous frame stream.
        const double step = -2.0 * std::numbers::pi * cfo_;
        for (int n = 0; n < frame_symbols_; ++n) {
            const auto rotation = std::complex<float>{static_cast<float>(std::cos(phase_)),
                                                      static_cast<float>(std::sin(phase_))};
            frame[n] *= rotation;
            phase_ += step;
        }
        phase_ = std::fmod(phase_, 2.0 * std::numbers::pi);
    }
}

FineFreqPf::FineFreqPf(int frame_symbols, PilotLayout layout)
    : frame_symbols_(frame_symbols)
    , layout_(layout)
{
    if (frame_symbols != PlhFramerHeaderSymbols + layout.total_symbols())
        throw std::invalid_argument{"FineFreqPf: frame size does not match pilot layout"};
}

std::vector<std::complex<float>>
FineFreqPf::synchronize(const std::vector<std::complex<float>>& frames) const
{
    if (frames.size() % static_cast<std::size_t>(frame_symbols_) != 0)
        throw std::invalid_argument{"FineFreqPf: input must hold whole frames"};
    const std::size_t frame_count = frames.size() / static_cast<std::size_t>(frame_symbols_);

    std::vector<std::complex<float>> output;
    output.reserve(frame_count * static_cast<std::size_t>(output_frame_symbols()));

    const auto header_ref = PlhFramer::build_header(kPlsModcod2);
    const auto block_offsets = pilot_block_offsets(layout_);

    for (std::size_t f = 0; f < frame_count; ++f) {
        const std::complex<float>* frame =
            frames.data() + f * static_cast<std::size_t>(frame_symbols_);

        // Phase anchors: (center position, estimated phase) per known group.
        std::vector<std::pair<double, double>> anchors;
        anchors.reserve(block_offsets.size() + 1);

        std::complex<double> acc{0.0, 0.0};
        for (std::size_t j = 0; j < header_ref.size(); ++j) {
            const std::complex<double> r{frame[j].real(), frame[j].imag()};
            acc += r
                * std::conj(std::complex<double>{header_ref[j].real(), header_ref[j].imag()});
        }
        anchors.emplace_back((header_ref.size() - 1) / 2.0, std::arg(acc));

        const std::complex<double> pilot_ref{pilot_symbol().real(), pilot_symbol().imag()};
        for (const int offset : block_offsets) {
            const int start = PlhFramerHeaderSymbols + offset;
            std::complex<double> pacc{0.0, 0.0};
            for (int j = 0; j < layout_.block_symbols; ++j) {
                const auto& s = frame[start + j];
                pacc += std::complex<double>{s.real(), s.imag()} * std::conj(pilot_ref);
            }
            anchors.emplace_back(start + (layout_.block_symbols - 1) / 2.0, std::arg(pacc));
        }

        // Unwrap anchor phases so interpolation follows the slow drift.
        for (std::size_t a = 1; a < anchors.size(); ++a) {
            double delta = anchors[a].second - anchors[a - 1].second;
            while (delta > std::numbers::pi) {
                anchors[a].second -= 2.0 * std::numbers::pi;
                delta = anchors[a].second - anchors[a - 1].second;
            }
            while (delta < -std::numbers::pi) {
                anchors[a].second += 2.0 * std::numbers::pi;
                delta = anchors[a].second - anchors[a - 1].second;
            }
        }

        // Piecewise-linear phase profile over the frame.
        auto phase_at = [&](double position) {
            if (position <= anchors.front().first)
                return anchors.front().second;
            if (position >= anchors.back().first)
                return anchors.back().second;
            for (std::size_t a = 1; a < anchors.size(); ++a) {
                if (position <= anchors[a].first) {
                    const double t = (position - anchors[a - 1].first)
                        / (anchors[a].first - anchors[a - 1].first);
                    return anchors[a - 1].second
                        + t * (anchors[a].second - anchors[a - 1].second);
                }
            }
            return anchors.back().second;
        };

        std::vector<std::complex<float>> corrected(static_cast<std::size_t>(frame_symbols_));
        for (int n = 0; n < frame_symbols_; ++n) {
            const double phi = phase_at(static_cast<double>(n));
            const std::complex<float> rotation{static_cast<float>(std::cos(-phi)),
                                               static_cast<float>(std::sin(-phi))};
            corrected[static_cast<std::size_t>(n)] = frame[n] * rotation;
        }

        // Consume the pilots: keep header + de-pilotized payload.
        output.insert(output.end(), corrected.begin(),
                      corrected.begin() + PlhFramerHeaderSymbols);
        const std::vector<std::complex<float>> with_pilots(
            corrected.begin() + PlhFramerHeaderSymbols, corrected.end());
        const auto payload = remove_pilots(with_pilots, layout_);
        output.insert(output.end(), payload.begin(), payload.end());
    }
    return output;
}

} // namespace amp::dvbs2
