#pragma once
// Automatic gain control ("Multiplier AGC - imultiply" in the paper's
// chain): tracks the input RMS with a first-order IIR estimator and scales
// the block towards the target RMS. Stateful (the power estimate persists).

#include <complex>
#include <vector>

namespace amp::dvbs2 {

class Agc {
public:
    explicit Agc(float target_rms = 1.0F, float smoothing = 0.1F);

    /// Scales `samples` in place; updates the running power estimate.
    void apply(std::vector<std::complex<float>>& samples);

    [[nodiscard]] float gain() const noexcept { return gain_; }

private:
    float target_rms_;
    float smoothing_;
    float power_estimate_ = 1.0F;
    float gain_ = 1.0F;
    bool primed_ = false;
};

} // namespace amp::dvbs2
