#pragma once
// Coarse carrier-frequency synchronization ("Sync. Freq. Coarse"): a blind
// fourth-power delay-and-multiply estimator (QPSK modulation removal) with a
// smoothed estimate and a continuous-phase NCO derotator. Stateful.

#include <complex>
#include <vector>

namespace amp::dvbs2 {

class CoarseFreqSync {
public:
    /// `initial_smoothing` is the blend factor of the first block; it then
    /// decays towards `steady_smoothing`, so acquisition is fast while the
    /// steady-state estimate averages many blocks (low jitter -- the
    /// fourth-power estimator is noisy on oversampled, shaped input).
    explicit CoarseFreqSync(float initial_smoothing = 0.5F, float steady_smoothing = 0.02F);

    /// Estimates the residual CFO of the block, updates the tracked value,
    /// and derotates the block in place (phase continuous across calls).
    void synchronize(std::vector<std::complex<float>>& samples);

    /// Tracked CFO estimate in cycles per sample.
    [[nodiscard]] double estimate() const noexcept { return cfo_; }

private:
    float initial_smoothing_;
    float steady_smoothing_;
    int blocks_seen_ = 0;
    double cfo_ = 0.0;
    double phase_ = 0.0; ///< NCO phase in radians, persists across blocks
};

} // namespace amp::dvbs2
