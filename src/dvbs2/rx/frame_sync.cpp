#include "dvbs2/rx/frame_sync.hpp"

#include "dvbs2/common/plh_framer.hpp"

#include <algorithm>
#include <stdexcept>

namespace amp::dvbs2 {

FrameSyncCorrelator::FrameSyncCorrelator(int frame_symbols, int interframe)
    : frame_symbols_(frame_symbols)
    , interframe_(interframe)
{
    if (frame_symbols < PlhFramer::kSofBits + 1 || interframe < 1)
        throw std::invalid_argument{"FrameSyncCorrelator: bad geometry"};
    const auto& sof = PlhFramer::sof_symbols();
    sof_diff_.reserve(sof.size() - 1);
    for (std::size_t j = 1; j < sof.size(); ++j)
        sof_diff_.push_back(sof[j] * std::conj(sof[j - 1]));
}

FrameSyncWindow FrameSyncCorrelator::process(const std::vector<std::complex<float>>& symbols)
{
    buffer_.insert(buffer_.end(), symbols.begin(), symbols.end());

    FrameSyncWindow result;
    const auto window_size = static_cast<std::size_t>((interframe_ + 1) * frame_symbols_);
    if (buffer_.size() < window_size)
        return result;

    result.ready = true;
    result.window.assign(buffer_.begin(),
                         buffer_.begin() + static_cast<std::ptrdiff_t>(window_size));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin()
                      + static_cast<std::ptrdiff_t>(interframe_) * frame_symbols_);

    // Differential correlation of every candidate offset with the SOF.
    result.correlation.resize(static_cast<std::size_t>(frame_symbols_));
    for (int d = 0; d < frame_symbols_; ++d) {
        std::complex<float> acc{0.0F, 0.0F};
        for (std::size_t j = 0; j < sof_diff_.size(); ++j) {
            const auto& a = result.window[static_cast<std::size_t>(d) + j + 1];
            const auto& b = result.window[static_cast<std::size_t>(d) + j];
            acc += a * std::conj(b) * std::conj(sof_diff_[j]);
        }
        result.correlation[static_cast<std::size_t>(d)] = std::abs(acc);
    }
    return result;
}

FrameAligner::FrameAligner(int frame_symbols, int interframe, int warmup_windows)
    : frame_symbols_(frame_symbols)
    , interframe_(interframe)
    , warmup_windows_(warmup_windows)
{
}

AlignedFrames FrameAligner::align(const FrameSyncWindow& input)
{
    AlignedFrames result;
    if (!input.ready)
        return result;

    const auto peak = std::max_element(input.correlation.begin(), input.correlation.end());
    int offset = static_cast<int>(peak - input.correlation.begin());
    if (locked_) {
        // Hysteresis: keep the lock while its correlation stays close to
        // the instantaneous peak (avoids jitter between adjacent frames).
        const float at_lock = input.correlation[static_cast<std::size_t>(locked_offset_)];
        if (at_lock >= 0.9F * *peak)
            offset = locked_offset_;
    }
    locked_ = true;
    locked_offset_ = offset;
    if (windows_seen_ < warmup_windows_) {
        ++windows_seen_;
        return result; // acquisition: upstream loops are still converging
    }

    result.valid = true;
    result.offset = offset;
    result.frames.reserve(static_cast<std::size_t>(interframe_ * frame_symbols_));
    for (int f = 0; f < interframe_; ++f) {
        const auto begin = input.window.begin() + offset
            + static_cast<std::ptrdiff_t>(f) * frame_symbols_;
        result.frames.insert(result.frames.end(), begin, begin + frame_symbols_);
    }
    return result;
}

} // namespace amp::dvbs2
