#include "dvbs2/rx/freq_coarse.hpp"

#include <cmath>
#include <numbers>

namespace amp::dvbs2 {

CoarseFreqSync::CoarseFreqSync(float initial_smoothing, float steady_smoothing)
    : initial_smoothing_(initial_smoothing)
    , steady_smoothing_(steady_smoothing)
{
}

void CoarseFreqSync::synchronize(std::vector<std::complex<float>>& samples)
{
    if (samples.size() < 2)
        return;

    // Fourth power removes the QPSK modulation; the angle of the lag-1
    // autocorrelation of z = x^4 is 4 * 2*pi * cfo.
    std::complex<double> acc{0.0, 0.0};
    std::complex<double> prev{0.0, 0.0};
    bool have_prev = false;
    for (const auto& sample : samples) {
        const std::complex<double> x{sample.real(), sample.imag()};
        const std::complex<double> x2 = x * x;
        const std::complex<double> z = x2 * x2;
        if (have_prev)
            acc += z * std::conj(prev);
        prev = z;
        have_prev = true;
    }
    const double instant = std::arg(acc) / (8.0 * std::numbers::pi);
    ++blocks_seen_;
    const double smoothing =
        std::max(static_cast<double>(steady_smoothing_),
                 static_cast<double>(initial_smoothing_) / blocks_seen_);
    cfo_ += smoothing * (instant - cfo_);

    // Derotate with a continuous-phase NCO so block boundaries stay smooth.
    const double step = -2.0 * std::numbers::pi * cfo_;
    for (auto& sample : samples) {
        const auto rotation = std::complex<float>{static_cast<float>(std::cos(phase_)),
                                                  static_cast<float>(std::sin(phase_))};
        sample *= rotation;
        phase_ += step;
        if (phase_ > std::numbers::pi * 64.0 || phase_ < -std::numbers::pi * 64.0)
            phase_ = std::fmod(phase_, 2.0 * std::numbers::pi);
    }
}

} // namespace amp::dvbs2
