#include "dvbs2/rx/agc.hpp"

#include <cmath>

namespace amp::dvbs2 {

Agc::Agc(float target_rms, float smoothing)
    : target_rms_(target_rms)
    , smoothing_(smoothing)
{
}

void Agc::apply(std::vector<std::complex<float>>& samples)
{
    if (samples.empty())
        return;
    double power = 0.0;
    for (const auto& sample : samples)
        power += static_cast<double>(std::norm(sample));
    power /= static_cast<double>(samples.size());

    if (!primed_) {
        power_estimate_ = static_cast<float>(power);
        primed_ = true;
    } else {
        power_estimate_ += smoothing_ * (static_cast<float>(power) - power_estimate_);
    }
    if (power_estimate_ > 0.0F)
        gain_ = target_rms_ / std::sqrt(power_estimate_);

    for (auto& sample : samples)
        sample *= gain_;
}

} // namespace amp::dvbs2
