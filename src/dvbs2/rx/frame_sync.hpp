#pragma once
// PLFRAME synchronization ("Sync. Frame") via differential correlation with
// the known SOF pattern -- robust to residual carrier offsets because the
// differential products only rotate by a constant phase.
//
// The paper's two tasks:
//   tau_9  "synchronize (part 1)": buffers the symbol stream and computes
//          the correlation magnitude for every candidate offset (heavy),
//   tau_10 "synchronize (part 2)": picks the peak with lock hysteresis and
//          extracts the aligned PLFRAMEs (light).

#include <complex>
#include <vector>

namespace amp::dvbs2 {

struct FrameSyncWindow {
    bool ready = false;                          ///< enough symbols buffered
    std::vector<std::complex<float>> window;     ///< (interframe+1) frames
    std::vector<float> correlation;              ///< one value per offset in [0, frame)
};

class FrameSyncCorrelator {
public:
    FrameSyncCorrelator(int frame_symbols, int interframe);

    /// Appends symbols to the internal buffer; when at least
    /// (interframe + 1) frames are buffered, emits a window (consuming
    /// interframe frames) and the SOF correlation profile over the first
    /// frame's worth of candidate offsets.
    [[nodiscard]] FrameSyncWindow process(const std::vector<std::complex<float>>& symbols);

    [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

private:
    int frame_symbols_;
    int interframe_;
    std::vector<std::complex<float>> sof_diff_; ///< differential SOF reference
    std::vector<std::complex<float>> buffer_;
};

struct AlignedFrames {
    bool valid = false;
    int offset = 0;                          ///< chosen frame-start offset
    std::vector<std::complex<float>> frames; ///< interframe x frame_symbols
};

class FrameAligner {
public:
    /// `warmup_windows`: number of locked windows to discard before frames
    /// are declared valid. The upstream loops (coarse CFO, timing) converge
    /// during these windows; the paper's evaluation likewise measures the
    /// transmission phase, after the receiver's learning phases.
    FrameAligner(int frame_symbols, int interframe, int warmup_windows = 2);

    /// Picks the correlation peak (with hysteresis around the locked
    /// offset) and slices the aligned frames out of the window.
    [[nodiscard]] AlignedFrames align(const FrameSyncWindow& input);

    [[nodiscard]] bool locked() const noexcept { return locked_; }

private:
    int frame_symbols_;
    int interframe_;
    int warmup_windows_;
    int windows_seen_ = 0;
    bool locked_ = false;
    int locked_offset_ = 0;
};

} // namespace amp::dvbs2
