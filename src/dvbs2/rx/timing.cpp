#include "dvbs2/rx/timing.hpp"

#include <algorithm>
#include <cmath>

namespace amp::dvbs2 {

TimingSync::TimingSync(float loop_gain_p, float loop_gain_i)
    : gain_p_(loop_gain_p)
    , gain_i_(loop_gain_i)
{
}

std::complex<float> TimingSync::interpolate(std::size_t base, double mu) const
{
    // Catmull-Rom cubic over samples base-1 .. base+2 evaluated at
    // base + mu (0 <= mu < 1).
    const auto& p0 = buffer_[base - 1];
    const auto& p1 = buffer_[base];
    const auto& p2 = buffer_[base + 1];
    const auto& p3 = buffer_[base + 2];
    const auto t = static_cast<float>(mu);
    const float t2 = t * t;
    const float t3 = t2 * t;
    const float c0 = -0.5F * t3 + t2 - 0.5F * t;
    const float c1 = 1.5F * t3 - 2.5F * t2 + 1.0F;
    const float c2 = -1.5F * t3 + 2.0F * t2 + 0.5F * t;
    const float c3 = 0.5F * t3 - 0.5F * t2;
    return c0 * p0 + c1 * p1 + c2 * p2 + c3 * p3;
}

TimingSync::Output TimingSync::synchronize(const std::vector<std::complex<float>>& samples)
{
    buffer_.insert(buffer_.end(), samples.begin(), samples.end());

    Output output;
    output.interpolated.reserve(samples.size());
    output.strobes.reserve(samples.size());

    // Emit T/2-spaced interpolants while the cubic has enough context
    // (needs samples cursor-1 .. cursor+2).
    while (cursor_ + 2.0 < static_cast<double>(buffer_.size()) && cursor_ >= 1.0) {
        const auto base = static_cast<std::size_t>(cursor_);
        const double mu = cursor_ - static_cast<double>(base);
        const std::complex<float> value = interpolate(base, mu);
        output.interpolated.push_back(value);
        output.strobes.push_back(on_time_ ? 1 : 0);

        if (on_time_) {
            if (have_on_time_) {
                // Gardner TED: e = Re{ (y[k-1] - y[k]) * conj(y_mid) }.
                const std::complex<float> diff = last_on_time_ - value;
                const float error = diff.real() * last_mid_.real()
                    + diff.imag() * last_mid_.imag();
                integrator_ += gain_i_ * error;
                correction_ = gain_p_ * error + integrator_;
                correction_ = std::clamp(correction_, -0.2, 0.2);
            }
            last_on_time_ = value;
            have_on_time_ = true;
        } else {
            last_mid_ = value;
        }
        on_time_ = !on_time_;

        // Advance one nominal half-symbol (1 input sample at 2 sps), nudged
        // by the loop correction (spread over the two strobes per symbol).
        cursor_ += 1.0 + correction_ * 0.5;
    }

    // Compact the buffer, keeping one sample of left context for the cubic.
    const auto keep_from = static_cast<std::size_t>(std::max(0.0, cursor_ - 1.0));
    if (keep_from > 0) {
        buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(keep_from));
        cursor_ -= static_cast<double>(keep_from);
    }
    return output;
}

std::vector<std::complex<float>> SymbolExtractor::extract(const TimingSync::Output& input) const
{
    std::vector<std::complex<float>> symbols;
    symbols.reserve(input.interpolated.size() / 2 + 1);
    for (std::size_t i = 0; i < input.interpolated.size(); ++i)
        if (input.strobes[i] != 0)
            symbols.push_back(input.interpolated[i]);
    return symbols;
}

} // namespace amp::dvbs2
