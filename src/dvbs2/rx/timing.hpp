#pragma once
// Symbol timing recovery ("Sync. Timing"): Gardner timing-error detector
// driving a PI loop filter that paces a cubic (Catmull-Rom / Farrow)
// interpolator over the 2-samples-per-symbol stream.
//
// The paper's chain splits this into two tasks:
//   tau_6 "synchronize": runs the loop and produces the interpolated
//          half-symbol-spaced stream with strobe flags (heavy),
//   tau_7 "extract":     keeps the on-time strobes only (light).

#include <complex>
#include <cstdint>
#include <vector>

namespace amp::dvbs2 {

class TimingSync {
public:
    struct Output {
        std::vector<std::complex<float>> interpolated; ///< T/2-spaced stream
        std::vector<std::uint8_t> strobes;             ///< 1 = on-time instant
    };

    /// `loop_gain_p/i`: PI gains of the timing loop (in samples per
    /// half-symbol update); defaults converge within a few hundred symbols.
    explicit TimingSync(float loop_gain_p = 0.02F, float loop_gain_i = 0.0005F);

    /// Consumes a block of 2-sps samples; emits the interpolated stream.
    /// Streaming: leftover input is buffered for the next call.
    [[nodiscard]] Output synchronize(const std::vector<std::complex<float>>& samples);

    /// Current fractional-timing correction in samples (for tests).
    [[nodiscard]] double timing_offset() const noexcept { return correction_; }

private:
    [[nodiscard]] std::complex<float> interpolate(std::size_t base, double mu) const;

    float gain_p_;
    float gain_i_;
    double cursor_ = 1.0;      ///< next output instant, in buffer sample units
    double correction_ = 0.0;  ///< loop output v (samples per output)
    double integrator_ = 0.0;
    bool on_time_ = true;      ///< strobe alternation
    std::complex<float> last_on_time_{0.0F, 0.0F};
    std::complex<float> last_mid_{0.0F, 0.0F};
    bool have_on_time_ = false;
    std::vector<std::complex<float>> buffer_; ///< unconsumed input samples
};

/// tau_7: picks the on-time interpolants out of a TimingSync output.
class SymbolExtractor {
public:
    [[nodiscard]] std::vector<std::complex<float>> extract(const TimingSync::Output& input) const;
};

} // namespace amp::dvbs2
