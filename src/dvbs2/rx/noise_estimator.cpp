#include "dvbs2/rx/noise_estimator.hpp"

#include <algorithm>
#include <cmath>

namespace amp::dvbs2 {

NoiseEstimate NoiseEstimator::estimate(const std::vector<std::complex<float>>& symbols)
{
    NoiseEstimate result;
    if (symbols.empty())
        return result;

    double m2 = 0.0;
    double m4 = 0.0;
    for (const auto& s : symbols) {
        const double power = static_cast<double>(std::norm(s));
        m2 += power;
        m4 += power * power;
    }
    m2 /= static_cast<double>(symbols.size());
    m4 /= static_cast<double>(symbols.size());

    // For a constant-modulus signal in complex AWGN:
    //   M2 = S + N,  M4 = S^2 + 4 S N + 2 N^2  =>  S = sqrt(2 M2^2 - M4).
    const double s2 = std::max(2.0 * m2 * m2 - m4, 1e-12);
    const double signal = std::sqrt(s2);
    const double noise = std::max(m2 - signal, 1e-6);

    result.signal = static_cast<float>(signal);
    result.sigma2 = static_cast<float>(noise);
    return result;
}

} // namespace amp::dvbs2
