#pragma once
// Noise estimation ("Noise Estimator - estimate"): blind M2/M4 moments
// estimator for constant-modulus constellations (QPSK). Uses only the
// current frame, hence replicable.

#include <complex>
#include <vector>

namespace amp::dvbs2 {

struct NoiseEstimate {
    float sigma2 = 1.0F;  ///< complex noise power N0
    float signal = 1.0F;  ///< signal power S
    [[nodiscard]] float snr() const noexcept { return sigma2 > 0.0F ? signal / sigma2 : 0.0F; }
};

class NoiseEstimator {
public:
    /// M2M4 estimate over the given symbols; clamps to sane positives so a
    /// degenerate frame cannot produce zero/negative powers downstream.
    [[nodiscard]] static NoiseEstimate estimate(const std::vector<std::complex<float>>& symbols);
};

} // namespace amp::dvbs2
