#pragma once
// Fine carrier synchronization over aligned PLFRAMEs.
//
//   tau_12 "Sync. Freq. Fine L&R": Luise & Reggiannini frequency estimation
//          on the modulation-stripped PLHEADER, tracked across frames with
//          a smoothing integrator and a continuous-phase derotator
//          (stateful, hence sequential in the chain).
//   tau_13 "Sync. Freq. Fine P/F": pilot-aided phase estimation -- one
//          phase per known-symbol group (header + pilot blocks), unwrapped
//          and linearly interpolated across the frame, then the pilots are
//          consumed. Uses only the current frame, hence replicable.

#include "dvbs2/common/pilots.hpp"

#include <complex>
#include <vector>

namespace amp::dvbs2 {

class FineFreqLr {
public:
    /// `frame_symbols` = PLFRAME length (with pilots); `autocorr_lags` is
    /// the L&R design parameter M.
    FineFreqLr(int frame_symbols, int autocorr_lags = 16, float smoothing = 0.2F);

    /// Estimates the residual CFO from each frame's header and derotates
    /// all frames in place (input holds interframe aligned PLFRAMEs).
    void synchronize(std::vector<std::complex<float>>& frames);

    /// Tracked residual CFO in cycles per symbol.
    [[nodiscard]] double estimate() const noexcept { return cfo_; }

private:
    int frame_symbols_;
    int lags_;
    float smoothing_;
    double cfo_ = 0.0;
    double phase_ = 0.0;
};

class FineFreqPf {
public:
    /// `payload_symbols` = data symbols per frame (pilot layout geometry).
    FineFreqPf(int frame_symbols, PilotLayout layout);

    /// Phase-corrects each frame using header + pilots, removes the pilot
    /// blocks, and returns frames of (header + payload) symbols.
    [[nodiscard]] std::vector<std::complex<float>>
    synchronize(const std::vector<std::complex<float>>& frames) const;

    [[nodiscard]] int output_frame_symbols() const noexcept
    {
        return PlhFramerHeaderSymbols + layout_.payload_symbols;
    }

    static constexpr int PlhFramerHeaderSymbols = 90;

private:
    int frame_symbols_;
    PilotLayout layout_;
};

} // namespace amp::dvbs2
