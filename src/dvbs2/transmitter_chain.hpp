#pragma once
// The DVB-S2 transmitter as a schedulable task chain (the TX counterpart of
// receiver.hpp; the aff3ct DVB-S2 application ships the same split). Ten
// tasks from "Source - generate" to "Radio - send"; the produced sample
// stream is bit-identical to the monolithic Transmitter class, which the
// tests verify.

#include "dvbs2/params.hpp"
#include "rt/task.hpp"

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

namespace amp::dvbs2 {

struct TxFrame {
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> bits;                ///< payload -> codeword bits
    std::vector<std::complex<float>> symbols;      ///< modulated payload
    std::vector<std::complex<float>> samples;      ///< shaped output samples
};

/// Captures the transmitted sample stream (the "Radio - send" endpoint).
class TxSink {
public:
    void send(const std::vector<std::complex<float>>& samples)
    {
        samples_sent_ += samples.size();
        for (const auto& s : samples)
            energy_ += static_cast<double>(s.real()) * s.real()
                + static_cast<double>(s.imag()) * s.imag();
    }
    [[nodiscard]] std::uint64_t samples_sent() const noexcept { return samples_sent_; }
    [[nodiscard]] double energy() const noexcept { return energy_; }

private:
    std::uint64_t samples_sent_ = 0;
    double energy_ = 0.0;
};

struct TransmitterChain {
    rt::TaskSequence<TxFrame> sequence;
    std::shared_ptr<TxSink> sink;
};

/// Builds the 10-task transmitter chain. `collect_samples`: keep the shaped
/// samples in the frame after sending (for tests / piping into a channel).
[[nodiscard]] TransmitterChain build_transmitter_chain(const FrameParams& params,
                                                       std::uint64_t data_seed,
                                                       bool collect_samples = false);

/// Task names/replicability of the TX chain (for scheduling experiments).
[[nodiscard]] const std::vector<const char*>& transmitter_task_names();
[[nodiscard]] const std::vector<bool>& transmitter_task_replicable();

} // namespace amp::dvbs2
