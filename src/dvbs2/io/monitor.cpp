#include "dvbs2/io/monitor.hpp"

#include <stdexcept>

namespace amp::dvbs2 {

void Monitor::check(const std::vector<std::uint8_t>& decoded,
                    const std::vector<std::uint8_t>& reference) const
{
    if (decoded.size() != reference.size())
        throw std::invalid_argument{"Monitor::check: size mismatch"};
    std::uint64_t errors = 0;
    for (std::size_t i = 0; i < decoded.size(); ++i)
        errors += (decoded[i] ^ reference[i]) & 1u;
    counters_->frames_checked.fetch_add(1, std::memory_order_relaxed);
    counters_->bits_checked.fetch_add(decoded.size(), std::memory_order_relaxed);
    if (errors != 0) {
        counters_->frame_errors.fetch_add(1, std::memory_order_relaxed);
        counters_->bit_errors.fetch_add(errors, std::memory_order_relaxed);
    }
}

void BinarySink::send(const std::vector<std::uint8_t>& bits)
{
    for (const auto bit : bits) {
        checksum_ = (checksum_ << 1 | checksum_ >> 63) ^ (bit & 1u);
        ++bits_;
    }
}

} // namespace amp::dvbs2
