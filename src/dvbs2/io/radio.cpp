#include "dvbs2/io/radio.hpp"

namespace amp::dvbs2 {

Radio::Radio(FrameParams params, ChannelConfig channel, std::uint64_t data_seed)
    : params_(params)
    , data_seed_(data_seed)
    , transmitter_(params, data_seed)
    , channel_(channel)
{
}

std::vector<std::complex<float>> Radio::receive(int frames)
{
    std::vector<std::complex<float>> chunk;
    chunk.reserve(static_cast<std::size_t>(frames)
                  * static_cast<std::size_t>(params_.plframe_samples()));
    for (int f = 0; f < frames; ++f) {
        const auto clean = transmitter_.next_frame_samples();
        const auto impaired = channel_.apply(clean);
        chunk.insert(chunk.end(), impaired.begin(), impaired.end());
    }
    return chunk;
}

} // namespace amp::dvbs2
