#pragma once
// Stream verification endpoints of the chain:
//   "Source - generate":     regenerates the reference payload for a decoded
//                            frame from its embedded 64-bit index,
//   "Monitor - check errors": compares decoded against reference bits and
//                            accumulates error statistics,
//   "Sink Binary File - send": accumulates the output stream into a
//                            checksum (stand-in for the file sink).
//
// Monitor counters are shared through an atomic block so that a replicated
// monitor stage (the task is stateless per frame) stays correct.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace amp::dvbs2 {

struct MonitorCounters {
    std::atomic<std::uint64_t> frames_checked{0};
    std::atomic<std::uint64_t> frame_errors{0};
    std::atomic<std::uint64_t> bit_errors{0};
    std::atomic<std::uint64_t> bits_checked{0};
    std::atomic<std::uint64_t> frames_skipped{0}; ///< invalid (sync warmup)

    [[nodiscard]] double frame_error_rate() const noexcept
    {
        const auto checked = frames_checked.load();
        return checked == 0 ? 0.0 : static_cast<double>(frame_errors.load()) / checked;
    }
    [[nodiscard]] double bit_error_rate() const noexcept
    {
        const auto checked = bits_checked.load();
        return checked == 0 ? 0.0 : static_cast<double>(bit_errors.load()) / checked;
    }
};

class Monitor {
public:
    explicit Monitor(std::shared_ptr<MonitorCounters> counters)
        : counters_(std::move(counters))
    {
    }

    /// Compares one decoded payload against its reference (equal lengths).
    /// Const: only the shared atomic counters are mutated.
    void check(const std::vector<std::uint8_t>& decoded,
               const std::vector<std::uint8_t>& reference) const;

    void skip() const { counters_->frames_skipped.fetch_add(1, std::memory_order_relaxed); }

    [[nodiscard]] const std::shared_ptr<MonitorCounters>& counters() const noexcept
    {
        return counters_;
    }

private:
    std::shared_ptr<MonitorCounters> counters_;
};

/// Order-insensitive checksum sink (the binary-file stand-in): XOR-rotate
/// over payload bytes plus a running bit count.
class BinarySink {
public:
    void send(const std::vector<std::uint8_t>& bits);

    [[nodiscard]] std::uint64_t checksum() const noexcept { return checksum_; }
    [[nodiscard]] std::uint64_t bits_received() const noexcept { return bits_; }

private:
    std::uint64_t checksum_ = 0;
    std::uint64_t bits_ = 0;
};

} // namespace amp::dvbs2
