#pragma once
// Radio front-end ("Radio - receive"): replays the channel-impaired sample
// stream of the embedded transmitter. Each receive() call returns the next
// contiguous chunk of the stream (one PLFRAME's worth of samples per
// requested frame). Stateful: the stream cursor, shaping filter, channel
// phase and noise generator all persist.

#include "dvbs2/params.hpp"
#include "dvbs2/tx/channel.hpp"
#include "dvbs2/tx/transmitter.hpp"

#include <complex>
#include <vector>

namespace amp::dvbs2 {

class Radio {
public:
    Radio(FrameParams params, ChannelConfig channel = {}, std::uint64_t data_seed = 0xdada);

    /// The next `frames` PLFRAMEs of impaired samples (generated lazily).
    [[nodiscard]] std::vector<std::complex<float>> receive(int frames);

    [[nodiscard]] const FrameParams& params() const noexcept { return params_; }
    [[nodiscard]] std::uint64_t data_seed() const noexcept { return data_seed_; }

private:
    FrameParams params_;
    std::uint64_t data_seed_;
    Transmitter transmitter_;
    Channel channel_;
};

} // namespace amp::dvbs2
