#pragma once
// BCH codec over GF(2^m) with systematic encoding (LFSR division by the
// generator polynomial) and hard-decision decoding (syndromes +
// Berlekamp-Massey + Chien search).
//
// The DVB-S2 short-FECFRAME outer code at rate 8/9 is the shortened
// BCH(14400, 14232) with t = 12 over GF(2^14); see `dvbs2_short_8_9()`.

#include "dvbs2/fec/galois.hpp"

#include <cstdint>
#include <vector>

namespace amp::dvbs2 {

class BchCode {
public:
    /// Shortened BCH over GF(2^m) correcting t errors with codeword length n
    /// (n <= 2^m - 1). k is derived from the generator-polynomial degree.
    BchCode(int m, int t, int n);

    /// The paper's configuration: BCH(14400, 14232, t=12) over GF(2^14)
    /// (short FECFRAME, rate 8/9).
    static const BchCode& dvbs2_short_8_9();

    /// Normal FECFRAME, rate 8/9: BCH(57600, 57472, t=8) over GF(2^16).
    static const BchCode& dvbs2_normal_8_9();

    [[nodiscard]] int n() const noexcept { return n_; }
    [[nodiscard]] int k() const noexcept { return k_; }
    [[nodiscard]] int t() const noexcept { return t_; }
    [[nodiscard]] int parity_bits() const noexcept { return n_ - k_; }

    /// Encodes k message bits into an n-bit systematic codeword
    /// (message first, parity last). Bits are 0/1 bytes.
    [[nodiscard]] std::vector<std::uint8_t> encode(const std::vector<std::uint8_t>& message) const;

    struct DecodeResult {
        bool success = false;      ///< false when > t errors were detected
        int corrected = 0;         ///< number of bit flips applied
        std::vector<std::uint8_t> message; ///< first k bits after correction
    };

    /// Hard-input hard-output decoding of an n-bit word, in place of the
    /// paper's "Decoder BCH - decode HIHO" task.
    [[nodiscard]] DecodeResult decode(std::vector<std::uint8_t> codeword) const;

private:
    const GaloisField& field_;
    int t_;
    int n_;
    int k_;
    std::vector<std::uint64_t> generator_; ///< g(x) bitmask, LSB = x^0
    int generator_degree_;
};

} // namespace amp::dvbs2
