#include "dvbs2/fec/galois.hpp"

#include <map>
#include <mutex>
#include <set>
#include <stdexcept>

namespace amp::dvbs2 {

GaloisField::GaloisField(int m, std::uint32_t primitive_poly)
    : m_(m)
    , q_(1 << m)
{
    if (m < 2 || m > 16)
        throw std::invalid_argument{"GaloisField: m must be in [2, 16]"};
    if ((primitive_poly & (1u << m)) == 0)
        throw std::invalid_argument{"GaloisField: polynomial must have degree m"};

    log_.assign(static_cast<std::size_t>(q_), -1);
    antilog_.assign(static_cast<std::size_t>(q_ - 1), 0);

    int value = 1;
    for (int e = 0; e < q_ - 1; ++e) {
        if (log_[static_cast<std::size_t>(value)] != -1)
            throw std::invalid_argument{"GaloisField: polynomial is not primitive"};
        log_[static_cast<std::size_t>(value)] = e;
        antilog_[static_cast<std::size_t>(e)] = value;
        value <<= 1;
        if (value & q_)
            value ^= static_cast<int>(primitive_poly);
    }
    if (value != 1)
        throw std::invalid_argument{"GaloisField: polynomial is not primitive"};
}

const GaloisField& GaloisField::standard(int m)
{
    // Known primitive polynomials (from standard tables) per degree.
    static const std::map<int, std::uint32_t> polys = {
        {2, 0b111},
        {3, 0b1011},
        {4, 0b10011},
        {5, 0b100101},
        {6, 0b1000011},
        {7, 0b10001001},
        {8, 0b100011101},
        {9, 0b1000010001},
        {10, 0b10000001001},
        {11, 0b100000000101},
        {12, 0b1000001010011},
        {13, 0b10000000011011},
        {14, 0b100010001000011},
        {15, 0b1000000000000011},
        {16, 0b10001000000001011},
    };
    static std::map<int, GaloisField> cache;
    static std::mutex mutex;
    std::lock_guard lock{mutex};
    auto it = cache.find(m);
    if (it == cache.end()) {
        const auto poly = polys.find(m);
        if (poly == polys.end())
            throw std::invalid_argument{"GaloisField::standard: unsupported m"};
        it = cache.emplace(m, GaloisField{m, poly->second}).first;
    }
    return it->second;
}

int GaloisField::inv(int a) const
{
    if (a == 0)
        throw std::domain_error{"GaloisField: zero has no inverse"};
    return antilog_[static_cast<std::size_t>((order() - log_[static_cast<std::size_t>(a)])
                                             % order())];
}

int GaloisField::log_alpha(int a) const
{
    if (a == 0)
        throw std::domain_error{"GaloisField: log of zero"};
    return log_[static_cast<std::size_t>(a)];
}

std::uint64_t GaloisField::minimal_polynomial(int e) const
{
    // Conjugacy class of alpha^e: exponents e, 2e, 4e, ... (mod 2^m - 1).
    std::set<int> conjugates;
    long long exp = e % order();
    while (conjugates.insert(static_cast<int>(exp)).second)
        exp = (exp * 2) % order();

    // m(x) = prod (x - alpha^c). Coefficients live in GF(2^m) during the
    // product but collapse to GF(2) at the end.
    std::vector<int> coeffs{1}; // constant polynomial 1
    for (const int c : conjugates) {
        const int root = pow_alpha(c);
        std::vector<int> next(coeffs.size() + 1, 0);
        for (std::size_t i = 0; i < coeffs.size(); ++i) {
            next[i + 1] ^= coeffs[i];              // x * coeff
            next[i] ^= mul(coeffs[i], root);       // root * coeff
        }
        coeffs = std::move(next);
    }

    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
        if (coeffs[i] != 0 && coeffs[i] != 1)
            throw std::logic_error{"minimal_polynomial: coefficients must be binary"};
        if (coeffs[i] == 1)
            mask |= 1ULL << i;
    }
    return mask;
}

namespace gf2 {

std::vector<std::uint64_t> poly_mul(const std::vector<std::uint64_t>& a, int deg_a,
                                    const std::vector<std::uint64_t>& b, int deg_b)
{
    std::vector<std::uint64_t> out(static_cast<std::size_t>((deg_a + deg_b) / 64 + 1), 0);
    for (int i = 0; i <= deg_a; ++i) {
        if (!get_bit(a, i))
            continue;
        // out ^= b << i
        const int word_shift = i >> 6;
        const int bit_shift = i & 63;
        const int b_words = deg_b / 64 + 1;
        for (int w = 0; w < b_words; ++w) {
            const std::uint64_t chunk = b[static_cast<std::size_t>(w)];
            out[static_cast<std::size_t>(w + word_shift)] ^= chunk << bit_shift;
            if (bit_shift != 0 && static_cast<std::size_t>(w + word_shift + 1) < out.size())
                out[static_cast<std::size_t>(w + word_shift + 1)] ^= chunk >> (64 - bit_shift);
        }
    }
    return out;
}

} // namespace gf2

} // namespace amp::dvbs2
