#include "dvbs2/fec/ldpc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace amp::dvbs2 {

LdpcCode::LdpcCode(int n, int k, int info_degree, std::uint64_t seed)
    : n_(n)
    , k_(k)
{
    const int m = n - k;
    if (n <= 0 || k <= 0 || m <= 0)
        throw std::invalid_argument{"LdpcCode: need n > k > 0"};
    if (info_degree < 2 || info_degree > m)
        throw std::invalid_argument{"LdpcCode: info_degree out of range"};

    // H1: every information column connects to `info_degree` distinct check
    // rows. Rows are drawn pseudo-randomly but balanced (round-robin base +
    // random offset) so that row degrees stay near-uniform, which keeps the
    // layered decoder's work per row even.
    std::vector<std::vector<int>> rows(static_cast<std::size_t>(m));
    Rng rng{seed};
    for (int col = 0; col < k; ++col) {
        int picked = 0;
        std::vector<int> chosen;
        chosen.reserve(static_cast<std::size_t>(info_degree));
        while (picked < info_degree) {
            const int base = static_cast<int>((static_cast<long long>(col) * info_degree + picked)
                                              % m);
            const int jitter = static_cast<int>(rng.uniform_int(0, m - 1));
            const int row = (base + jitter) % m;
            if (std::find(chosen.begin(), chosen.end(), row) != chosen.end())
                continue;
            chosen.push_back(row);
            rows[static_cast<std::size_t>(row)].push_back(col);
            ++picked;
        }
    }

    info_cols_per_row_.resize(static_cast<std::size_t>(m));
    for (int r = 0; r < m; ++r)
        info_cols_per_row_[static_cast<std::size_t>(r)] = rows[static_cast<std::size_t>(r)];

    // H2 (accumulator): check r involves parity bits p_r and p_{r-1}.
    for (int r = 0; r < m; ++r) {
        rows[static_cast<std::size_t>(r)].push_back(k + r);
        if (r > 0)
            rows[static_cast<std::size_t>(r)].push_back(k + r - 1);
    }

    row_ptr_.reserve(static_cast<std::size_t>(m) + 1);
    row_ptr_.push_back(0);
    for (int r = 0; r < m; ++r) {
        const auto& row = rows[static_cast<std::size_t>(r)];
        col_idx_.insert(col_idx_.end(), row.begin(), row.end());
        row_ptr_.push_back(static_cast<int>(col_idx_.size()));
    }
}

const LdpcCode& LdpcCode::dvbs2_short_8_9()
{
    static const LdpcCode code{16200, 14400};
    return code;
}

const LdpcCode& LdpcCode::dvbs2_normal_8_9()
{
    static const LdpcCode code{64800, 57600};
    return code;
}

std::vector<std::uint8_t> LdpcCode::encode(const std::vector<std::uint8_t>& message) const
{
    if (static_cast<int>(message.size()) != k_)
        throw std::invalid_argument{"LdpcCode::encode: message must have k bits"};

    std::vector<std::uint8_t> codeword(static_cast<std::size_t>(n_), 0);
    std::copy(message.begin(), message.end(), codeword.begin());

    // Accumulator: check r states p_r = p_{r-1} + sum of its info bits.
    std::uint8_t accumulator = 0;
    for (int r = 0; r < m(); ++r) {
        std::uint8_t sum = accumulator;
        for (const int col : info_cols_per_row_[static_cast<std::size_t>(r)])
            sum ^= message[static_cast<std::size_t>(col)];
        codeword[static_cast<std::size_t>(k_ + r)] = sum;
        accumulator = sum;
    }
    return codeword;
}

bool LdpcCode::check(const std::vector<std::uint8_t>& word) const
{
    if (static_cast<int>(word.size()) != n_)
        throw std::invalid_argument{"LdpcCode::check: word must have n bits"};
    for (std::size_t r = 0; r + 1 < row_ptr_.size(); ++r) {
        std::uint8_t parity = 0;
        for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e)
            parity ^= word[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(e)])];
        if (parity != 0)
            return false;
    }
    return true;
}

LdpcCode::DecodeResult LdpcCode::decode(const std::vector<float>& llr) const
{
    return decode(llr, DecodeConfig{});
}

LdpcCode::DecodeResult LdpcCode::decode(const std::vector<float>& llr,
                                        const DecodeConfig& config) const
{
    if (static_cast<int>(llr.size()) != n_)
        throw std::invalid_argument{"LdpcCode::decode: llr must have n entries"};

    std::vector<float> posterior = llr;
    std::vector<float> messages(col_idx_.size(), 0.0F);
    std::vector<float> q_buffer;

    DecodeResult result;
    result.bits.assign(static_cast<std::size_t>(n_), 0);

    auto hard_decide = [&] {
        for (int i = 0; i < n_; ++i)
            result.bits[static_cast<std::size_t>(i)] =
                posterior[static_cast<std::size_t>(i)] < 0.0F ? 1 : 0;
    };

    for (int iteration = 1; iteration <= config.max_iterations; ++iteration) {
        // Horizontal layered pass: each check row immediately updates the
        // posteriors it touches (faster convergence than flooding).
        for (std::size_t r = 0; r + 1 < row_ptr_.size(); ++r) {
            const int begin = row_ptr_[r];
            const int end = row_ptr_[r + 1];
            const int degree = end - begin;
            q_buffer.resize(static_cast<std::size_t>(degree));

            float min1 = std::numeric_limits<float>::max();
            float min2 = std::numeric_limits<float>::max();
            int arg_min = -1;
            std::uint32_t sign_product = 0;
            for (int e = begin; e < end; ++e) {
                const int col = col_idx_[static_cast<std::size_t>(e)];
                const float q = posterior[static_cast<std::size_t>(col)]
                    - messages[static_cast<std::size_t>(e)];
                q_buffer[static_cast<std::size_t>(e - begin)] = q;
                const float magnitude = std::fabs(q);
                sign_product ^= q < 0.0F ? 1u : 0u;
                if (magnitude < min1) {
                    min2 = min1;
                    min1 = magnitude;
                    arg_min = e;
                } else if (magnitude < min2) {
                    min2 = magnitude;
                }
            }
            for (int e = begin; e < end; ++e) {
                const float q = q_buffer[static_cast<std::size_t>(e - begin)];
                const std::uint32_t sign = sign_product ^ (q < 0.0F ? 1u : 0u);
                const float magnitude = config.normalization * (e == arg_min ? min2 : min1);
                const float updated = sign != 0 ? -magnitude : magnitude;
                messages[static_cast<std::size_t>(e)] = updated;
                posterior[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(e)])] =
                    q + updated;
            }
        }

        result.iterations = iteration;
        if (config.early_stop) {
            hard_decide();
            if (check(result.bits)) {
                result.success = true;
                return result;
            }
        }
    }

    hard_decide();
    result.success = check(result.bits);
    return result;
}

} // namespace amp::dvbs2
