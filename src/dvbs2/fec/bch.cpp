#include "dvbs2/fec/bch.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>

namespace amp::dvbs2 {

namespace {

[[nodiscard]] int degree_of(const std::vector<std::uint64_t>& poly)
{
    for (int w = static_cast<int>(poly.size()) - 1; w >= 0; --w) {
        if (poly[static_cast<std::size_t>(w)] != 0) {
            const auto word = poly[static_cast<std::size_t>(w)];
            return w * 64 + 63 - std::countl_zero(word);
        }
    }
    return -1;
}

} // namespace

BchCode::BchCode(int m, int t, int n)
    : field_(GaloisField::standard(m))
    , t_(t)
    , n_(n)
    , k_(0)
{
    if (n > field_.order())
        throw std::invalid_argument{"BchCode: n exceeds 2^m - 1"};
    if (t < 1)
        throw std::invalid_argument{"BchCode: t must be >= 1"};

    // g(x) = lcm of the minimal polynomials of alpha^1 .. alpha^(2t):
    // multiply the distinct ones (conjugacy classes share minimal polys).
    std::set<std::uint64_t> factors;
    for (int e = 1; e <= 2 * t; ++e)
        factors.insert(field_.minimal_polynomial(e));

    generator_ = {1};
    generator_degree_ = 0;
    for (const std::uint64_t factor : factors) {
        std::vector<std::uint64_t> factor_bits{factor};
        const int factor_degree = 63 - std::countl_zero(factor);
        generator_ = gf2::poly_mul(generator_, generator_degree_, factor_bits, factor_degree);
        generator_degree_ += factor_degree;
        if (degree_of(generator_) != generator_degree_)
            throw std::logic_error{"BchCode: generator degree mismatch"};
    }

    k_ = n_ - generator_degree_;
    if (k_ <= 0)
        throw std::invalid_argument{"BchCode: n too small for the requested t"};
}

const BchCode& BchCode::dvbs2_short_8_9()
{
    static const BchCode code{14, 12, 14400};
    return code;
}

const BchCode& BchCode::dvbs2_normal_8_9()
{
    static const BchCode code{16, 8, 57600};
    return code;
}

std::vector<std::uint8_t> BchCode::encode(const std::vector<std::uint8_t>& message) const
{
    if (static_cast<int>(message.size()) != k_)
        throw std::invalid_argument{"BchCode::encode: message must have k bits"};

    // Systematic encoding: remainder of x^(n-k) * m(x) divided by g(x),
    // computed with a (n-k)-bit LFSR. Bit j of the message is the
    // coefficient of x^(n-1-j).
    const int r = generator_degree_;
    std::vector<std::uint64_t> reg(static_cast<std::size_t>((r + 63) / 64), 0);
    const int top_word = (r - 1) >> 6;
    const int top_bit = (r - 1) & 63;

    for (int j = 0; j < k_; ++j) {
        const bool feedback =
            (((reg[static_cast<std::size_t>(top_word)] >> top_bit) & 1u) != 0)
            ^ (message[static_cast<std::size_t>(j)] != 0);
        // reg <<= 1 (within r bits)
        for (int w = top_word; w > 0; --w)
            reg[static_cast<std::size_t>(w)] =
                (reg[static_cast<std::size_t>(w)] << 1)
                | (reg[static_cast<std::size_t>(w - 1)] >> 63);
        reg[0] <<= 1;
        if (feedback) {
            // reg ^= g(x) without its x^r term (that term is the feedback).
            for (std::size_t w = 0; w < reg.size(); ++w)
                reg[w] ^= generator_[w];
            gf2::set_bit(reg, r, false); // clear any carry into bit r
        }
        gf2::set_bit(reg, r, false);
    }

    std::vector<std::uint8_t> codeword(static_cast<std::size_t>(n_));
    std::copy(message.begin(), message.end(), codeword.begin());
    // Parity bits follow, highest power first: parity bit j corresponds to
    // the coefficient of x^(r-1-j).
    for (int j = 0; j < r; ++j)
        codeword[static_cast<std::size_t>(k_ + j)] =
            gf2::get_bit(reg, r - 1 - j) ? 1 : 0;
    return codeword;
}

BchCode::DecodeResult BchCode::decode(std::vector<std::uint8_t> codeword) const
{
    if (static_cast<int>(codeword.size()) != n_)
        throw std::invalid_argument{"BchCode::decode: codeword must have n bits"};

    DecodeResult result;

    // Syndromes S_j = c(alpha^j), j = 1..2t, with bit i holding the
    // coefficient of x^(n-1-i). Accumulate over set bits only.
    std::vector<int> syndromes(static_cast<std::size_t>(2 * t_), 0);
    bool all_zero = true;
    for (int i = 0; i < n_; ++i) {
        if (codeword[static_cast<std::size_t>(i)] == 0)
            continue;
        const long long power = n_ - 1 - i;
        for (int j = 1; j <= 2 * t_; ++j)
            syndromes[static_cast<std::size_t>(j - 1)] =
                field_.add(syndromes[static_cast<std::size_t>(j - 1)],
                           field_.pow_alpha(power * j));
    }
    for (const int s : syndromes)
        all_zero &= s == 0;

    if (all_zero) {
        result.success = true;
        result.message.assign(codeword.begin(), codeword.begin() + k_);
        return result;
    }

    // Berlekamp-Massey: error-locator polynomial Lambda(x).
    std::vector<int> lambda{1};
    std::vector<int> prev{1};
    int l = 0;
    int shift = 1;
    int prev_discrepancy = 1;
    for (int step = 0; step < 2 * t_; ++step) {
        int discrepancy = syndromes[static_cast<std::size_t>(step)];
        for (int i = 1; i <= l && i < static_cast<int>(lambda.size()); ++i)
            discrepancy = field_.add(
                discrepancy, field_.mul(lambda[static_cast<std::size_t>(i)],
                                        syndromes[static_cast<std::size_t>(step - i)]));
        if (discrepancy == 0) {
            ++shift;
            continue;
        }
        // lambda' = lambda - (d / d_prev) * x^shift * prev
        std::vector<int> updated = lambda;
        const int scale = field_.div(discrepancy, prev_discrepancy);
        if (updated.size() < prev.size() + static_cast<std::size_t>(shift))
            updated.resize(prev.size() + static_cast<std::size_t>(shift), 0);
        for (std::size_t i = 0; i < prev.size(); ++i)
            updated[i + static_cast<std::size_t>(shift)] =
                field_.add(updated[i + static_cast<std::size_t>(shift)],
                           field_.mul(scale, prev[i]));
        if (2 * l <= step) {
            prev = lambda;
            prev_discrepancy = discrepancy;
            l = step + 1 - l;
            shift = 1;
        } else {
            ++shift;
        }
        lambda = std::move(updated);
    }

    while (lambda.size() > 1 && lambda.back() == 0)
        lambda.pop_back();
    const int locator_degree = static_cast<int>(lambda.size()) - 1;
    if (locator_degree > t_ || l > t_) {
        result.message.assign(codeword.begin(), codeword.begin() + k_);
        return result; // uncorrectable
    }

    // Chien search over the n valid positions: an error at bit i (power
    // p = n-1-i) makes alpha^(-p) a root of Lambda.
    std::vector<int> error_positions;
    // Incrementally evaluate Lambda(alpha^(-p)): term_k(p) = l_k alpha^(-pk).
    std::vector<int> terms(lambda.begin(), lambda.end());
    std::vector<int> steps(lambda.size());
    for (std::size_t kk = 0; kk < lambda.size(); ++kk)
        steps[kk] = field_.pow_alpha(-static_cast<long long>(kk));
    for (int p = 0; p < n_; ++p) {
        if (p > 0)
            for (std::size_t kk = 1; kk < terms.size(); ++kk)
                terms[kk] = field_.mul(terms[kk], steps[kk]);
        int value = 0;
        for (const int term : terms)
            value = field_.add(value, term);
        if (value == 0)
            error_positions.push_back(n_ - 1 - p);
    }

    if (static_cast<int>(error_positions.size()) != locator_degree) {
        result.message.assign(codeword.begin(), codeword.begin() + k_);
        return result; // locator degree and root count disagree: > t errors
    }

    for (const int position : error_positions)
        codeword[static_cast<std::size_t>(position)] ^= 1u;
    result.success = true;
    result.corrected = static_cast<int>(error_positions.size());
    result.message.assign(codeword.begin(), codeword.begin() + k_);
    return result;
}

} // namespace amp::dvbs2
