#pragma once
// LDPC codec: extended-IRA (accumulator-based) code construction, linear-time
// systematic encoding, and horizontal layered normalized-min-sum decoding
// with early stopping -- the inner-code configuration the paper evaluates
// ("LDPC horizontal layered NMS 10 ite with early stop criterion").
//
// DVB-S2's standardized parity-check address tables are not reproduced here;
// a pseudo-random eIRA code with the same (N, K) and a comparable degree
// profile is constructed instead (DESIGN.md, substitution 2). The decoder's
// compute shape -- which is what the scheduling experiments depend on -- is
// identical.

#include "common/rng.hpp"

#include <cstdint>
#include <vector>

namespace amp::dvbs2 {

class LdpcCode {
public:
    /// Builds an eIRA code with N total bits, K information bits, and the
    /// given information-column degree. H = [H1 | H2]: H1 is pseudo-random
    /// with `info_degree` ones per column, H2 is the dual-diagonal
    /// accumulator over the M = N - K parity bits.
    LdpcCode(int n, int k, int info_degree = 3, std::uint64_t seed = 0x1dcc);

    /// The paper's configuration: short FECFRAME, rate 8/9 (16200, 14400).
    static const LdpcCode& dvbs2_short_8_9();

    /// Normal FECFRAME, rate 8/9 (64800, 57600).
    static const LdpcCode& dvbs2_normal_8_9();

    [[nodiscard]] int n() const noexcept { return n_; }
    [[nodiscard]] int k() const noexcept { return k_; }
    [[nodiscard]] int m() const noexcept { return n_ - k_; }
    [[nodiscard]] int edge_count() const noexcept { return static_cast<int>(col_idx_.size()); }

    /// Systematic encoding: [message | parity] with the accumulator.
    [[nodiscard]] std::vector<std::uint8_t> encode(const std::vector<std::uint8_t>& message) const;

    /// True iff the word satisfies every parity check.
    [[nodiscard]] bool check(const std::vector<std::uint8_t>& word) const;

    struct DecodeConfig {
        int max_iterations = 10;
        float normalization = 0.75F; ///< min-sum scaling factor
        bool early_stop = true;      ///< stop once the syndrome is zero
    };

    struct DecodeResult {
        bool success = false; ///< syndrome satisfied on exit
        int iterations = 0;   ///< iterations actually executed
        std::vector<std::uint8_t> bits; ///< hard decisions for all n bits
    };

    /// Soft-input decoding from channel LLRs (positive LLR = bit 0), the
    /// paper's "Decoder LDPC - decode SIHO" task.
    [[nodiscard]] DecodeResult decode(const std::vector<float>& llr,
                                      const DecodeConfig& config) const;
    [[nodiscard]] DecodeResult decode(const std::vector<float>& llr) const;

private:
    int n_;
    int k_;
    // Parity-check matrix in CSR-by-row form: row r covers
    // col_idx_[row_ptr_[r] .. row_ptr_[r+1]).
    std::vector<int> row_ptr_;
    std::vector<int> col_idx_;
    // Information-bit connections per check row (for the encoder).
    std::vector<std::vector<int>> info_cols_per_row_;
};

} // namespace amp::dvbs2
