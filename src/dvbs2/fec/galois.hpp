#pragma once
// Galois field GF(2^m) arithmetic via log/antilog tables, used by the BCH
// codec. DVB-S2 short FECFRAMEs use GF(2^14).

#include <cstdint>
#include <vector>

namespace amp::dvbs2 {

class GaloisField {
public:
    /// Builds GF(2^m) from a primitive polynomial given as a bitmask with
    /// the x^m term included (e.g. 0b10011 = x^4 + x + 1). Throws if the
    /// polynomial is not primitive (the generated powers must enumerate the
    /// whole multiplicative group).
    GaloisField(int m, std::uint32_t primitive_poly);

    /// GF(2^m) with a known-good primitive polynomial for m in [2, 16].
    static const GaloisField& standard(int m);

    [[nodiscard]] int m() const noexcept { return m_; }
    [[nodiscard]] int size() const noexcept { return q_; }          ///< 2^m
    [[nodiscard]] int order() const noexcept { return q_ - 1; }     ///< 2^m - 1

    [[nodiscard]] int add(int a, int b) const noexcept { return a ^ b; }

    [[nodiscard]] int mul(int a, int b) const noexcept
    {
        if (a == 0 || b == 0)
            return 0;
        return antilog_[static_cast<std::size_t>((log_[static_cast<std::size_t>(a)]
                                                  + log_[static_cast<std::size_t>(b)])
                                                 % order())];
    }

    [[nodiscard]] int inv(int a) const;

    [[nodiscard]] int div(int a, int b) const { return mul(a, inv(b)); }

    /// alpha^e for any integer exponent (reduced modulo the group order).
    [[nodiscard]] int pow_alpha(long long e) const noexcept
    {
        long long r = e % order();
        if (r < 0)
            r += order();
        return antilog_[static_cast<std::size_t>(r)];
    }

    /// Discrete log base alpha; element must be nonzero.
    [[nodiscard]] int log_alpha(int a) const;

    /// Minimal polynomial of alpha^e over GF(2), as a coefficient bitmask
    /// (bit i = coefficient of x^i).
    [[nodiscard]] std::uint64_t minimal_polynomial(int e) const;

private:
    int m_;
    int q_;
    std::vector<int> log_;     // log_[element] = exponent, log_[0] unused
    std::vector<int> antilog_; // antilog_[exponent] = element
};

/// Polynomials over GF(2) packed in bit vectors (LSB = x^0), helpers for
/// building BCH generator polynomials of degree up to a few hundred.
namespace gf2 {

/// Multiplies two GF(2) polynomials given as coefficient bit vectors.
[[nodiscard]] std::vector<std::uint64_t> poly_mul(const std::vector<std::uint64_t>& a, int deg_a,
                                                  const std::vector<std::uint64_t>& b, int deg_b);

[[nodiscard]] inline bool get_bit(const std::vector<std::uint64_t>& bits, int i) noexcept
{
    return (bits[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1u;
}

inline void set_bit(std::vector<std::uint64_t>& bits, int i, bool value) noexcept
{
    const auto word = static_cast<std::size_t>(i >> 6);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value)
        bits[word] |= mask;
    else
        bits[word] &= ~mask;
}

} // namespace gf2

} // namespace amp::dvbs2
