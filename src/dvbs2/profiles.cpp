#include "dvbs2/profiles.hpp"

namespace amp::dvbs2 {

const std::array<const char*, 23>& receiver_task_names()
{
    static const std::array<const char*, 23> names = {
        "Radio - receive",
        "Multiplier AGC - imultiply",
        "Sync. Freq. Coarse - synchronize",
        "Filter Matched - filter (part 1)",
        "Filter Matched - filter (part 2)",
        "Sync. Timing - synchronize",
        "Sync. Timing - extract",
        "Multiplier AGC - imultiply",
        "Sync. Frame - synchronize (part 1)",
        "Sync. Frame - synchronize (part 2)",
        "Scrambler Symbol - descramble",
        "Sync. Freq. Fine L&R - synchronize",
        "Sync. Freq. Fine P/F - synchronize",
        "Framer PLH - remove",
        "Noise Estimator - estimate",
        "Modem QPSK - demodulate",
        "Interleaver - deinterleave",
        "Decoder LDPC - decode SIHO",
        "Decoder BCH - decode HIHO",
        "Scrambler Binary - descramble",
        "Sink Binary File - send",
        "Source - generate",
        "Monitor - check errors",
    };
    return names;
}

const std::array<bool, 23>& receiver_task_replicable()
{
    static const std::array<bool, 23> replicable = {
        false, false, false, false, false, false, false, false, false, false,
        true,  false, true,  true,  true,  true,  true,  true,  true,  true,
        false, false, true,
    };
    return replicable;
}

const PlatformProfile& mac_studio_profile()
{
    static const PlatformProfile profile = {
        "Mac Studio",
        4,
        {52.3, 75.2, 96.4, 318.9, 315.1, 950.6, 55.5, 37.1, 361.0, 52.9, 16.0, 50.5, 99.2,
         23.4, 40.5, 2257.5, 21.1, 153.2, 3339.9, 191.7, 9.5, 4.0, 9.5},
        {248.3, 149.9, 496.6, 902.9, 883.2, 1468.9, 106.0, 75.4, 1064.7, 169.1, 61.0, 247.1,
         597.8, 65.1, 65.4, 4838.6, 58.4, 506.7, 7303.5, 464.9, 33.3, 13.6, 21.0},
        core::Resources{16, 4},
        core::Resources{8, 2},
    };
    return profile;
}

const PlatformProfile& x7ti_profile()
{
    static const PlatformProfile profile = {
        "X7 Ti",
        8,
        {131.7, 138.3, 113.7, 334.8, 329.3, 1341.9, 58.7, 63.5, 365.9, 81.1, 25.1, 54.3,
         253.8, 47.4, 32.4, 2123.1, 29.3, 239.7, 6209.0, 559.0, 34.6, 16.9, 9.2},
        {133.2, 318.1, 429.0, 711.9, 712.6, 2387.1, 135.1, 157.4, 848.1, 197.9, 65.9, 203.2,
         356.2, 87.7, 65.4, 5742.4, 47.6, 1024.4, 8166.2, 621.8, 75.6, 23.4, 20.5},
        core::Resources{6, 8},
        core::Resources{3, 4},
    };
    return profile;
}

core::TaskChain profile_chain(const PlatformProfile& profile)
{
    const auto& names = receiver_task_names();
    const auto& replicable = receiver_task_replicable();
    std::vector<core::TaskDesc> tasks;
    tasks.reserve(23);
    for (std::size_t i = 0; i < 23; ++i)
        tasks.push_back(core::TaskDesc{names[i], profile.big_us[i], profile.little_us[i],
                                       replicable[i]});
    return core::TaskChain{std::move(tasks)};
}

std::vector<double> little_slowdown_factors(const PlatformProfile& profile)
{
    std::vector<double> factors(23);
    for (std::size_t i = 0; i < 23; ++i)
        factors[i] = profile.little_us[i] / profile.big_us[i];
    return factors;
}

} // namespace amp::dvbs2
