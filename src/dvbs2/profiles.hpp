#pragma once
// Embedded task-latency profiles of the paper's Table III: the average
// per-task latency (microseconds) of the DVB-S2 receiver on the two
// evaluated platforms. These drive the Table II schedule reproduction on
// machines without asymmetric cores, and calibrate the core emulator.

#include "core/chain.hpp"

#include <array>
#include <string>
#include <vector>

namespace amp::dvbs2 {

struct PlatformProfile {
    std::string name;
    int interframe;                   ///< frames fused per traversal
    std::array<double, 23> big_us;    ///< w^B per task (Table III order)
    std::array<double, 23> little_us; ///< w^L per task
    core::Resources cores_full;       ///< all cores configuration
    core::Resources cores_half;       ///< half cores configuration
};

/// Apple M1 Ultra "Mac Studio": 16 big + 4 little, interframe 4.
[[nodiscard]] const PlatformProfile& mac_studio_profile();

/// Intel Ultra 9 185H "X7 Ti": 6 big + 8 little, interframe 8.
[[nodiscard]] const PlatformProfile& x7ti_profile();

/// Task names and replicability flags of the receiver chain (Table III).
[[nodiscard]] const std::array<const char*, 23>& receiver_task_names();
[[nodiscard]] const std::array<bool, 23>& receiver_task_replicable();

/// Builds the scheduler chain for a profile.
[[nodiscard]] core::TaskChain profile_chain(const PlatformProfile& profile);

/// Little/big latency ratios per task (for the runtime core emulator).
[[nodiscard]] std::vector<double> little_slowdown_factors(const PlatformProfile& profile);

} // namespace amp::dvbs2
