#include "dvbs2/transmitter_chain.hpp"

#include "dvbs2/common/bb_scrambler.hpp"
#include "dvbs2/common/interleaver.hpp"
#include "dvbs2/common/pilots.hpp"
#include "dvbs2/common/pl_scrambler.hpp"
#include "dvbs2/common/plh_framer.hpp"
#include "dvbs2/common/qpsk.hpp"
#include "dvbs2/common/rrc_filter.hpp"
#include "dvbs2/fec/bch.hpp"
#include "dvbs2/fec/ldpc.hpp"
#include "dvbs2/tx/transmitter.hpp"

#include <algorithm>

namespace amp::dvbs2 {

namespace {
using rt::make_task;
constexpr float kRolloff = 0.2F;
constexpr int kRrcSpan = 8;
} // namespace

const std::vector<const char*>& transmitter_task_names()
{
    static const std::vector<const char*> names = {
        "Source - generate",      "Scrambler Binary - scramble", "Encoder BCH - encode",
        "Encoder LDPC - encode",  "Interleaver - interleave",    "Modem QPSK - modulate",
        "Framer PLH - insert",    "Scrambler Symbol - scramble", "Filter Shaping - filter",
        "Radio - send",
    };
    return names;
}

const std::vector<bool>& transmitter_task_replicable()
{
    // The source must emit frames in order (it stamps the frame index), the
    // shaping filter carries its delay line, and the radio sends in order.
    static const std::vector<bool> replicable = {false, true, true, true, true,
                                                 true,  true, true, false, false};
    return replicable;
}

TransmitterChain build_transmitter_chain(const FrameParams& params, std::uint64_t data_seed,
                                         bool collect_samples)
{
    TransmitterChain chain;
    chain.sink = std::make_shared<TxSink>();
    auto& seq = chain.sequence;
    const PilotLayout layout{params.xfec_symbols(), params.pilot_block_symbols,
                             params.payload_per_pilot_block};

    // 1. Source - generate: the frame's payload bits (64-bit index + PRBS).
    {
        const int k_bch = params.k_bch;
        seq.push_back(make_task<TxFrame>("Source - generate", true, [k_bch, data_seed](TxFrame& f) {
            f.bits = reference_payload(k_bch, data_seed, f.seq);
        }));
    }

    // 2. Scrambler Binary - scramble.
    seq.push_back(make_task<TxFrame>("Scrambler Binary - scramble", false,
                                     [](TxFrame& f) { BbScrambler::scramble(f.bits); }));

    // 3. Encoder BCH - encode.
    seq.push_back(make_task<TxFrame>("Encoder BCH - encode", false, [](TxFrame& f) {
        f.bits = BchCode::dvbs2_short_8_9().encode(f.bits);
    }));

    // 4. Encoder LDPC - encode.
    seq.push_back(make_task<TxFrame>("Encoder LDPC - encode", false, [](TxFrame& f) {
        f.bits = LdpcCode::dvbs2_short_8_9().encode(f.bits);
    }));

    // 5. Interleaver - interleave.
    {
        const BlockInterleaver interleaver{params.bits_per_symbol};
        seq.push_back(make_task<TxFrame>("Interleaver - interleave", false,
                                         [interleaver](TxFrame& f) {
                                             f.bits = interleaver.interleave(f.bits);
                                         }));
    }

    // 6. Modem QPSK - modulate.
    seq.push_back(make_task<TxFrame>("Modem QPSK - modulate", false, [](TxFrame& f) {
        f.symbols = QpskModem::modulate(f.bits);
        f.bits.clear();
    }));

    // 7. Framer PLH - insert (pilots + header).
    seq.push_back(make_task<TxFrame>("Framer PLH - insert", false, [layout](TxFrame& f) {
        f.symbols = PlhFramer::insert(Transmitter::kPls, insert_pilots(f.symbols, layout));
    }));

    // 8. Scrambler Symbol - scramble (header stays clean).
    seq.push_back(make_task<TxFrame>("Scrambler Symbol - scramble", false, [](TxFrame& f) {
        std::vector<std::complex<float>> body(f.symbols.begin() + PlhFramer::kHeaderSymbols,
                                              f.symbols.end());
        PlScrambler::scramble(body);
        std::copy(body.begin(), body.end(), f.symbols.begin() + PlhFramer::kHeaderSymbols);
    }));

    // 9. Filter Shaping - filter (stateful: streaming RRC).
    {
        auto shaping =
            std::make_shared<ShapingFilter>(kRolloff, params.samples_per_symbol, kRrcSpan);
        seq.push_back(make_task<TxFrame>("Filter Shaping - filter", true,
                                         [shaping](TxFrame& f) {
                                             f.samples = shaping->shape(f.symbols);
                                             f.symbols.clear();
                                         }));
    }

    // 10. Radio - send.
    {
        auto sink = chain.sink;
        seq.push_back(make_task<TxFrame>("Radio - send", true,
                                         [sink, collect_samples](TxFrame& f) {
                                             sink->send(f.samples);
                                             if (!collect_samples)
                                                 f.samples.clear();
                                         }));
    }

    return chain;
}

} // namespace amp::dvbs2
