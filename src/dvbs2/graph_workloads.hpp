#pragma once
// DVB-S2 graph-shaped workloads: the fan-out/fan-in counterparts of the
// linear receiver chain (profiles.hpp), used by the DAG-plan tests and the
// ext_dag bench.
//
// Two workloads, both series-parallel diamonds over the paper's Table III
// task latencies:
//
//  * tx_rx_split_workload -- a full-duplex modem: one front-end branch
//    (source + radio) fans out into a TX encode branch and the profiled RX
//    decode branch, which join at a sink/monitor branch. The paper profiles
//    only the receiver, so the TX branch derives its weights from the RX
//    counterparts at a fixed encode/decode cost ratio (iterative decoding
//    dominates encoding).
//
//  * ab_decode_workload -- one front end feeding two redundant decode paths
//    (A/B codeword halves) that rejoin for descrambling and monitoring; the
//    decode tasks carry the profiled LDPC/BCH weights on both branches.
//
// Task order is branch-concatenated (branch 0 tasks, then branch 1, ...),
// matching plan::GraphShape's contiguous-interval convention, so the chains
// feed svc::schedule_graph and plan::ExecutionPlan::compile directly.

#include "core/chain.hpp"
#include "dvbs2/profiles.hpp"
#include "plan/graph_shape.hpp"
#include "rt/task.hpp"

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace amp::dvbs2 {

/// A graph-shaped scheduling workload: the global (branch-concatenated)
/// chain, its branch structure, and per-task display names.
struct GraphWorkload {
    core::TaskChain chain;
    plan::GraphShape shape;
    std::vector<std::string> names; ///< global task order, aligned with chain
};

/// Runtime frame payload for graph pipelines: each task stamps the bit of
/// its (global, 1-based) task index, and the fan-in merge unions the stamps
/// and sums the branches' numeric products -- so a test can assert that
/// every branch processed every frame exactly once.
struct GraphFrame {
    std::uint64_t seq = 0;
    std::uint64_t visited = 0; ///< bit (i-1) set once task i ran on the frame
    double accum = 0.0;

    void merge_from(const GraphFrame& other)
    {
        visited |= other.visited;
        accum += other.accum;
    }
};

namespace detail {

struct BranchDraft {
    std::vector<int> task_ids;      ///< Table III indices (0-based), or -1
    std::vector<double> big_us;     ///< used when task_ids entry is -1
    std::vector<double> little_us;
    std::vector<bool> replicable;
    std::vector<std::string> names;
    std::vector<int> preds;
    std::vector<int> succs;
};

[[nodiscard]] inline GraphWorkload assemble(const PlatformProfile& profile,
                                            const std::vector<BranchDraft>& drafts)
{
    const auto& names = receiver_task_names();
    const auto& replicable = receiver_task_replicable();
    GraphWorkload w;
    std::vector<core::TaskDesc> tasks;
    int next = 1;
    for (std::size_t b = 0; b < drafts.size(); ++b) {
        const BranchDraft& d = drafts[b];
        plan::GraphBranch branch;
        branch.index = static_cast<int>(b);
        branch.first = next;
        for (std::size_t t = 0; t < d.task_ids.size(); ++t) {
            const int id = d.task_ids[t];
            core::TaskDesc task;
            if (id >= 0) {
                task = core::TaskDesc{names[static_cast<std::size_t>(id)],
                                      profile.big_us[static_cast<std::size_t>(id)],
                                      profile.little_us[static_cast<std::size_t>(id)],
                                      replicable[static_cast<std::size_t>(id)]};
            } else {
                task = core::TaskDesc{d.names[t], d.big_us[t], d.little_us[t],
                                      d.replicable[t]};
            }
            w.names.push_back(task.name);
            tasks.push_back(std::move(task));
            ++next;
        }
        branch.last = next - 1;
        branch.preds = d.preds;
        branch.succs = d.succs;
        w.shape.branches.push_back(std::move(branch));
    }
    w.shape.chain.tasks = static_cast<int>(tasks.size());
    for (const core::TaskDesc& task : tasks)
        w.shape.chain.replicable.push_back(task.replicable);
    w.chain = core::TaskChain{std::move(tasks)};
    w.shape.validate();
    return w;
}

} // namespace detail

/// Full-duplex modem diamond: front end -> {TX encode, RX decode} -> sink.
/// The RX branch carries the profiled receiver middle (AGC through binary
/// descrambling); the TX branch mirrors the symmetric subset at
/// `encode_ratio` of the decode cost (default 0.3 -- encoding is cheap next
/// to iterative decoding).
[[nodiscard]] inline GraphWorkload tx_rx_split_workload(const PlatformProfile& profile,
                                                        double encode_ratio = 0.3)
{
    const auto& names = receiver_task_names();
    const auto& replicable = receiver_task_replicable();

    detail::BranchDraft front;
    front.task_ids = {21, 0}; // Source - generate, Radio - receive
    front.succs = {1, 2};

    // TX encode path, mirrored from the RX counterparts (Table III is
    // receiver-only): binary scramble, BCH/LDPC encode, interleave,
    // modulate, PLH insert, symbol scramble, shaping filter, radio send.
    detail::BranchDraft tx;
    tx.preds = {0};
    tx.succs = {3};
    const int mirrored[] = {19, 18, 17, 16, 15, 13, 10, 3, 0};
    const char* tx_names[] = {
        "Scrambler Binary - scramble", "Encoder BCH - encode HIHO",
        "Encoder LDPC - encode",       "Interleaver - interleave",
        "Modem QPSK - modulate",       "Framer PLH - insert",
        "Scrambler Symbol - scramble", "Filter Shaping - filter",
        "Radio - send",
    };
    for (std::size_t t = 0; t < std::size(mirrored); ++t) {
        const auto id = static_cast<std::size_t>(mirrored[t]);
        tx.task_ids.push_back(-1);
        tx.names.emplace_back(tx_names[t]);
        tx.big_us.push_back(profile.big_us[id] * encode_ratio);
        tx.little_us.push_back(profile.little_us[id] * encode_ratio);
        // The radio endpoint stays sequential like its RX counterpart.
        tx.replicable.push_back(t + 1 < std::size(mirrored) ? replicable[id] : false);
    }

    detail::BranchDraft rx;
    rx.preds = {0};
    rx.succs = {3};
    for (int id = 1; id <= 19; ++id) // AGC .. Scrambler Binary - descramble
        rx.task_ids.push_back(id);
    (void)names;

    detail::BranchDraft sink;
    sink.preds = {1, 2};
    sink.task_ids = {20, 22}; // Sink Binary File - send, Monitor - check errors

    return detail::assemble(profile, {front, tx, rx, sink});
}

/// Redundant decode diamond: the profiled front end (radio through
/// deinterleaving) fans out into two identical LDPC+BCH decode paths (A/B
/// codeword halves) that rejoin for descrambling, sinking and monitoring.
[[nodiscard]] inline GraphWorkload ab_decode_workload(const PlatformProfile& profile)
{
    detail::BranchDraft front;
    front.task_ids.resize(17); // Radio - receive .. Interleaver - deinterleave
    for (int id = 0; id <= 16; ++id)
        front.task_ids[static_cast<std::size_t>(id)] = id;
    front.succs = {1, 2};

    const auto decode_path = [&](const char* tag) {
        detail::BranchDraft path;
        path.preds = {0};
        path.succs = {3};
        for (const int id : {17, 18}) { // Decoder LDPC, Decoder BCH
            const auto i = static_cast<std::size_t>(id);
            path.task_ids.push_back(-1);
            path.names.push_back(std::string{receiver_task_names()[i]} + " (" + tag + ")");
            path.big_us.push_back(profile.big_us[i]);
            path.little_us.push_back(profile.little_us[i]);
            path.replicable.push_back(receiver_task_replicable()[i]);
        }
        return path;
    };

    detail::BranchDraft tail;
    tail.preds = {1, 2};
    tail.task_ids = {19, 20, 22}; // descramble, sink, monitor

    return detail::assemble(profile, {front, decode_path("A"), decode_path("B"), tail});
}

/// Builds a runnable task sequence for a graph workload: task i stamps bit
/// (i-1) into GraphFrame::visited and adds its index to `accum`; with
/// `time_scale` > 0 each task additionally spins time_scale * w_big
/// microseconds, so real pipeline runs reproduce the profiled load shape.
/// Statefulness follows the chain's replicability flags.
[[nodiscard]] inline rt::TaskSequence<GraphFrame> graph_sequence(const GraphWorkload& w,
                                                                 double time_scale = 0.0)
{
    rt::TaskSequence<GraphFrame> sequence;
    for (int i = 1; i <= w.chain.size(); ++i) {
        const core::TaskDesc& task = w.chain.task(i);
        const auto spin_us = time_scale > 0.0 ? task.w_big * time_scale : 0.0;
        sequence.push_back(rt::make_task<GraphFrame>(
            task.name, !task.replicable, [i, spin_us](GraphFrame& frame) {
                frame.visited |= std::uint64_t{1} << (i - 1);
                frame.accum += static_cast<double>(i);
                if (spin_us > 0.0) {
                    const auto deadline = std::chrono::steady_clock::now()
                        + std::chrono::duration<double, std::micro>(spin_us);
                    while (std::chrono::steady_clock::now() < deadline) {
                    }
                }
            }));
    }
    return sequence;
}

} // namespace amp::dvbs2
