#include "dvbs2/modcod.hpp"

#include <stdexcept>

namespace amp::dvbs2 {

const std::vector<ModCod>& supported_modcods()
{
    static const std::vector<ModCod> modcods = [] {
        std::vector<ModCod> list;
        list.push_back(ModCod{2, "qpsk-8/9-short", Modulation::qpsk, FrameSize::short_frame,
                              &BchCode::dvbs2_short_8_9(), &LdpcCode::dvbs2_short_8_9()});
        list.push_back(ModCod{2 | 0x80, "qpsk-8/9-normal", Modulation::qpsk,
                              FrameSize::normal_frame, &BchCode::dvbs2_normal_8_9(),
                              &LdpcCode::dvbs2_normal_8_9()});
        list.push_back(ModCod{17, "8psk-8/9-short", Modulation::psk8, FrameSize::short_frame,
                              &BchCode::dvbs2_short_8_9(), &LdpcCode::dvbs2_short_8_9()});
        list.push_back(ModCod{23, "16apsk-8/9-short", Modulation::apsk16,
                              FrameSize::short_frame, &BchCode::dvbs2_short_8_9(),
                              &LdpcCode::dvbs2_short_8_9()});
        return list;
    }();
    return modcods;
}

const ModCod& modcod_by_name(const std::string& name)
{
    for (const auto& modcod : supported_modcods())
        if (modcod.name == name)
            return modcod;
    throw std::invalid_argument{"unknown MODCOD: " + name};
}

} // namespace amp::dvbs2
