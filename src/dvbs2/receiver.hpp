#pragma once
// The DVB-S2 receiver task chain of the paper (Table III): 23 tasks from
// "Radio - receive" to "Monitor - check errors", built as a runtime
// TaskSequence over the DvbFrame payload. Task order, names, and
// replicability flags match the paper exactly; every task performs the real
// signal processing implemented by this library's substrate modules.

#include "dvbs2/io/monitor.hpp"
#include "dvbs2/io/radio.hpp"
#include "dvbs2/params.hpp"
#include "rt/task.hpp"

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

namespace amp::dvbs2 {

/// Blackboard frame payload flowing through the pipeline. Each pipeline
/// traversal carries `interframe` fused PLFRAMEs (the paper uses 4 or 8).
struct DvbFrame {
    std::uint64_t seq = 0;
    bool valid = true; ///< false until frame sync has enough buffered data

    std::vector<std::complex<float>> samples;      ///< radio output (2 sps)
    std::vector<std::complex<float>> filtered;     ///< matched-filter output
    std::vector<std::complex<float>> interpolated; ///< timing interpolants
    std::vector<std::uint8_t> strobes;             ///< on-time markers
    std::vector<std::complex<float>> symbols;      ///< symbol-rate stream
    std::vector<std::complex<float>> window;       ///< frame-sync window
    std::vector<float> correlation;                ///< frame-sync profile
    bool sync_ready = false;
    std::vector<std::complex<float>> aligned;      ///< aligned PLFRAMEs
    std::vector<float> llrs;                       ///< demodulated LLRs
    std::vector<std::uint8_t> bits;                ///< decoded payload bits
    std::vector<std::uint8_t> reference_bits;      ///< regenerated reference
    float sigma2 = 1.0F;
    int ldpc_iterations = 0;
    bool fec_ok = true;
};

/// LDPC decoding knobs surfaced at the chain level (paper: "horizontal
/// layered NMS 10 ite with early stop criterion").
struct LdpcDecodeParams {
    int max_iterations = 10;
    float normalization = 0.75F;
    bool early_stop = true;
};

struct ReceiverConfig {
    FrameParams params{};
    ChannelConfig channel{};
    std::uint64_t data_seed = 0xdada;
    LdpcDecodeParams ldpc{};
};

struct ReceiverChain {
    rt::TaskSequence<DvbFrame> sequence;
    std::shared_ptr<MonitorCounters> counters;
    std::shared_ptr<BinarySink> sink;
};

/// Builds the full 23-task receiver chain.
[[nodiscard]] ReceiverChain build_receiver_chain(const ReceiverConfig& config);

} // namespace amp::dvbs2
