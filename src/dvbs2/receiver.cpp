#include "dvbs2/receiver.hpp"

#include "dvbs2/common/bb_scrambler.hpp"
#include "dvbs2/common/interleaver.hpp"
#include "dvbs2/common/pl_scrambler.hpp"
#include "dvbs2/common/plh_framer.hpp"
#include "dvbs2/common/pilots.hpp"
#include "dvbs2/common/qpsk.hpp"
#include "dvbs2/common/rrc_filter.hpp"
#include "dvbs2/fec/bch.hpp"
#include "dvbs2/fec/ldpc.hpp"
#include "dvbs2/rx/agc.hpp"
#include "dvbs2/rx/frame_sync.hpp"
#include "dvbs2/rx/freq_coarse.hpp"
#include "dvbs2/rx/freq_fine.hpp"
#include "dvbs2/rx/noise_estimator.hpp"
#include "dvbs2/rx/timing.hpp"
#include "dvbs2/tx/transmitter.hpp"

#include <algorithm>

namespace amp::dvbs2 {

namespace {

using rt::make_task;

constexpr float kRolloff = 0.2F;
constexpr int kRrcSpan = 8;

} // namespace

ReceiverChain build_receiver_chain(const ReceiverConfig& config)
{
    const FrameParams& p = config.params;
    const PilotLayout layout{p.xfec_symbols(), p.pilot_block_symbols,
                             p.payload_per_pilot_block};
    const int interframe = p.interframe;
    const int plframe = p.plframe_symbols();

    ReceiverChain chain;
    chain.counters = std::make_shared<MonitorCounters>();
    chain.sink = std::make_shared<BinarySink>();
    auto& seq = chain.sequence;

    // tau_1: Radio - receive (sequential).
    {
        auto radio = std::make_shared<Radio>(p, config.channel, config.data_seed);
        seq.push_back(make_task<DvbFrame>(
            "Radio - receive", true,
            [radio, interframe](DvbFrame& f) { f.samples = radio->receive(interframe); }));
    }

    // tau_2: Multiplier AGC - imultiply (sequential: running power estimate).
    {
        auto agc = std::make_shared<Agc>(1.0F);
        seq.push_back(make_task<DvbFrame>("Multiplier AGC - imultiply", true,
                                          [agc](DvbFrame& f) { agc->apply(f.samples); }));
    }

    // tau_3: Sync. Freq. Coarse - synchronize (sequential: NCO state).
    {
        auto coarse = std::make_shared<CoarseFreqSync>();
        seq.push_back(make_task<DvbFrame>("Sync. Freq. Coarse - synchronize", true,
                                          [coarse](DvbFrame& f) {
                                              coarse->synchronize(f.samples);
                                          }));
    }

    // tau_4 / tau_5: Filter Matched - filter parts 1 and 2 (sequential:
    // streaming delay lines). They share a SplitFir whose two halves hold
    // disjoint state, so the two pipeline stages never race.
    {
        auto split = std::make_shared<SplitFir>(rrc_taps(kRolloff, p.samples_per_symbol,
                                                         kRrcSpan));
        seq.push_back(make_task<DvbFrame>("Filter Matched - filter (part 1)", true,
                                          [split](DvbFrame& f) {
                                              f.filtered = split->part1(f.samples);
                                          }));
        seq.push_back(make_task<DvbFrame>("Filter Matched - filter (part 2)", true,
                                          [split](DvbFrame& f) {
                                              f.filtered = split->part2(f.samples,
                                                                        std::move(f.filtered));
                                              f.samples.clear();
                                          }));
    }

    // tau_6 / tau_7: Sync. Timing - synchronize / extract (sequential).
    {
        auto timing = std::make_shared<TimingSync>();
        seq.push_back(make_task<DvbFrame>("Sync. Timing - synchronize", true,
                                          [timing](DvbFrame& f) {
                                              auto out = timing->synchronize(f.filtered);
                                              f.interpolated = std::move(out.interpolated);
                                              f.strobes = std::move(out.strobes);
                                              f.filtered.clear();
                                          }));
        auto extractor = std::make_shared<SymbolExtractor>();
        seq.push_back(make_task<DvbFrame>(
            "Sync. Timing - extract", true, [extractor](DvbFrame& f) {
                TimingSync::Output view;
                view.interpolated = std::move(f.interpolated);
                view.strobes = std::move(f.strobes);
                f.symbols = extractor->extract(view);
                f.interpolated.clear();
                f.strobes.clear();
            }));
    }

    // tau_8: Multiplier AGC - imultiply (symbol-level gain, sequential).
    {
        auto agc = std::make_shared<Agc>(1.0F);
        seq.push_back(make_task<DvbFrame>("Multiplier AGC - imultiply (2)", true,
                                          [agc](DvbFrame& f) { agc->apply(f.symbols); }));
    }

    // tau_9 / tau_10: Sync. Frame - synchronize parts 1 and 2 (sequential).
    {
        auto correlator = std::make_shared<FrameSyncCorrelator>(plframe, interframe);
        seq.push_back(make_task<DvbFrame>(
            "Sync. Frame - synchronize (part 1)", true, [correlator](DvbFrame& f) {
                auto window = correlator->process(f.symbols);
                f.sync_ready = window.ready;
                f.window = std::move(window.window);
                f.correlation = std::move(window.correlation);
                f.symbols.clear();
            }));
        auto aligner = std::make_shared<FrameAligner>(plframe, interframe);
        seq.push_back(make_task<DvbFrame>(
            "Sync. Frame - synchronize (part 2)", true, [aligner](DvbFrame& f) {
                FrameSyncWindow window;
                window.ready = f.sync_ready;
                window.window = std::move(f.window);
                window.correlation = std::move(f.correlation);
                auto aligned = aligner->align(window);
                f.valid = aligned.valid;
                f.aligned = std::move(aligned.frames);
                f.window.clear();
                f.correlation.clear();
            }));
    }

    // tau_11: Scrambler Symbol - descramble (replicable).
    {
        const int header = p.header_symbols();
        seq.push_back(make_task<DvbFrame>(
            "Scrambler Symbol - descramble", false, [plframe, header](DvbFrame& f) {
                if (!f.valid)
                    return;
                for (std::size_t start = 0; start + static_cast<std::size_t>(plframe)
                     <= f.aligned.size();
                     start += static_cast<std::size_t>(plframe)) {
                    std::vector<std::complex<float>> body(
                        f.aligned.begin() + static_cast<std::ptrdiff_t>(start) + header,
                        f.aligned.begin() + static_cast<std::ptrdiff_t>(start) + plframe);
                    PlScrambler::descramble(body);
                    std::copy(body.begin(), body.end(),
                              f.aligned.begin() + static_cast<std::ptrdiff_t>(start) + header);
                }
            }));
    }

    // tau_12: Sync. Freq. Fine L&R - synchronize (sequential: tracked CFO).
    {
        auto lr = std::make_shared<FineFreqLr>(plframe);
        seq.push_back(make_task<DvbFrame>("Sync. Freq. Fine L&R - synchronize", true,
                                          [lr](DvbFrame& f) {
                                              if (f.valid)
                                                  lr->synchronize(f.aligned);
                                          }));
    }

    // tau_13: Sync. Freq. Fine P/F - synchronize (replicable, pilot-aided).
    {
        const FineFreqPf pf{plframe, layout};
        seq.push_back(make_task<DvbFrame>("Sync. Freq. Fine P/F - synchronize", false,
                                          [pf](DvbFrame& f) {
                                              if (f.valid)
                                                  f.aligned = pf.synchronize(f.aligned);
                                          }));
    }

    // tau_14: Framer PLH - remove (replicable).
    {
        const int header = p.header_symbols();
        const int frame_no_pilots = p.header_symbols() + p.xfec_symbols();
        seq.push_back(make_task<DvbFrame>(
            "Framer PLH - remove", false, [header, frame_no_pilots](DvbFrame& f) {
                if (!f.valid)
                    return;
                std::vector<std::complex<float>> payload;
                payload.reserve(f.aligned.size());
                for (std::size_t start = 0;
                     start + static_cast<std::size_t>(frame_no_pilots) <= f.aligned.size();
                     start += static_cast<std::size_t>(frame_no_pilots)) {
                    payload.insert(payload.end(),
                                   f.aligned.begin() + static_cast<std::ptrdiff_t>(start)
                                       + header,
                                   f.aligned.begin() + static_cast<std::ptrdiff_t>(start)
                                       + frame_no_pilots);
                }
                f.aligned = std::move(payload);
            }));
    }

    // tau_15: Noise Estimator - estimate (replicable).
    seq.push_back(make_task<DvbFrame>("Noise Estimator - estimate", false, [](DvbFrame& f) {
        if (f.valid)
            f.sigma2 = NoiseEstimator::estimate(f.aligned).sigma2;
    }));

    // tau_16: Modem QPSK - demodulate (replicable).
    seq.push_back(make_task<DvbFrame>("Modem QPSK - demodulate", false, [](DvbFrame& f) {
        if (!f.valid)
            return;
        f.llrs = QpskModem::demodulate(f.aligned, f.sigma2);
        f.aligned.clear();
    }));

    // tau_17: Interleaver - deinterleave (replicable).
    {
        const BlockInterleaver interleaver{p.bits_per_symbol};
        const int n_ldpc = p.n_ldpc;
        seq.push_back(make_task<DvbFrame>(
            "Interleaver - deinterleave", false, [interleaver, n_ldpc](DvbFrame& f) {
                if (!f.valid)
                    return;
                std::vector<float> out;
                out.reserve(f.llrs.size());
                for (std::size_t start = 0;
                     start + static_cast<std::size_t>(n_ldpc) <= f.llrs.size();
                     start += static_cast<std::size_t>(n_ldpc)) {
                    const std::vector<float> block(
                        f.llrs.begin() + static_cast<std::ptrdiff_t>(start),
                        f.llrs.begin() + static_cast<std::ptrdiff_t>(start) + n_ldpc);
                    const auto restored = interleaver.deinterleave(block);
                    out.insert(out.end(), restored.begin(), restored.end());
                }
                f.llrs = std::move(out);
            }));
    }

    // tau_18: Decoder LDPC - decode SIHO (replicable).
    {
        const LdpcCode::DecodeConfig decode_config{config.ldpc.max_iterations,
                                                   config.ldpc.normalization,
                                                   config.ldpc.early_stop};
        const int n_ldpc = p.n_ldpc;
        const int k_ldpc = p.k_ldpc;
        seq.push_back(make_task<DvbFrame>(
            "Decoder LDPC - decode SIHO", false, [decode_config, n_ldpc, k_ldpc](DvbFrame& f) {
                if (!f.valid)
                    return;
                const auto& code = LdpcCode::dvbs2_short_8_9();
                std::vector<std::uint8_t> decoded;
                decoded.reserve(f.llrs.size() / static_cast<std::size_t>(n_ldpc)
                                * static_cast<std::size_t>(k_ldpc));
                f.fec_ok = true;
                f.ldpc_iterations = 0;
                for (std::size_t start = 0;
                     start + static_cast<std::size_t>(n_ldpc) <= f.llrs.size();
                     start += static_cast<std::size_t>(n_ldpc)) {
                    const std::vector<float> block(
                        f.llrs.begin() + static_cast<std::ptrdiff_t>(start),
                        f.llrs.begin() + static_cast<std::ptrdiff_t>(start) + n_ldpc);
                    auto result = code.decode(block, decode_config);
                    f.fec_ok &= result.success;
                    f.ldpc_iterations += result.iterations;
                    decoded.insert(decoded.end(), result.bits.begin(),
                                   result.bits.begin() + k_ldpc);
                }
                f.bits = std::move(decoded);
                f.llrs.clear();
            }));
    }

    // tau_19: Decoder BCH - decode HIHO (replicable).
    {
        const int k_ldpc = p.k_ldpc;
        const int k_bch = p.k_bch;
        seq.push_back(make_task<DvbFrame>(
            "Decoder BCH - decode HIHO", false, [k_ldpc, k_bch](DvbFrame& f) {
                if (!f.valid)
                    return;
                const auto& code = BchCode::dvbs2_short_8_9();
                std::vector<std::uint8_t> decoded;
                decoded.reserve(f.bits.size() / static_cast<std::size_t>(k_ldpc)
                                * static_cast<std::size_t>(k_bch));
                for (std::size_t start = 0;
                     start + static_cast<std::size_t>(k_ldpc) <= f.bits.size();
                     start += static_cast<std::size_t>(k_ldpc)) {
                    std::vector<std::uint8_t> block(
                        f.bits.begin() + static_cast<std::ptrdiff_t>(start),
                        f.bits.begin() + static_cast<std::ptrdiff_t>(start) + k_ldpc);
                    auto result = code.decode(std::move(block));
                    f.fec_ok &= result.success;
                    decoded.insert(decoded.end(), result.message.begin(), result.message.end());
                }
                f.bits = std::move(decoded);
            }));
    }

    // tau_20: Scrambler Binary - descramble (replicable).
    {
        const int k_bch = p.k_bch;
        seq.push_back(make_task<DvbFrame>(
            "Scrambler Binary - descramble", false, [k_bch](DvbFrame& f) {
                if (!f.valid)
                    return;
                for (std::size_t start = 0;
                     start + static_cast<std::size_t>(k_bch) <= f.bits.size();
                     start += static_cast<std::size_t>(k_bch)) {
                    std::vector<std::uint8_t> block(
                        f.bits.begin() + static_cast<std::ptrdiff_t>(start),
                        f.bits.begin() + static_cast<std::ptrdiff_t>(start) + k_bch);
                    BbScrambler::scramble(block);
                    std::copy(block.begin(), block.end(),
                              f.bits.begin() + static_cast<std::ptrdiff_t>(start));
                }
            }));
    }

    // tau_21: Sink Binary File - send (sequential).
    {
        auto sink = chain.sink;
        seq.push_back(make_task<DvbFrame>("Sink Binary File - send", true,
                                          [sink](DvbFrame& f) {
                                              if (f.valid)
                                                  sink->send(f.bits);
                                          }));
    }

    // tau_22: Source - generate (sequential per the paper's flag; the
    // reference is regenerated from each decoded frame's embedded index).
    {
        const int k_bch = p.k_bch;
        const std::uint64_t seed = config.data_seed;
        seq.push_back(make_task<DvbFrame>(
            "Source - generate", true, [k_bch, seed](DvbFrame& f) {
                f.reference_bits.clear();
                if (!f.valid)
                    return;
                for (std::size_t start = 0;
                     start + static_cast<std::size_t>(k_bch) <= f.bits.size();
                     start += static_cast<std::size_t>(k_bch)) {
                    const std::vector<std::uint8_t> block(
                        f.bits.begin() + static_cast<std::ptrdiff_t>(start),
                        f.bits.begin() + static_cast<std::ptrdiff_t>(start) + k_bch);
                    const auto reference =
                        reference_payload(k_bch, seed, extract_frame_index(block));
                    f.reference_bits.insert(f.reference_bits.end(), reference.begin(),
                                            reference.end());
                }
            }));
    }

    // tau_23: Monitor - check errors (replicable, shared atomic counters).
    {
        const int k_bch = p.k_bch;
        const Monitor monitor{chain.counters};
        seq.push_back(make_task<DvbFrame>(
            "Monitor - check errors", false, [k_bch, monitor](DvbFrame& f) mutable {
                if (!f.valid || f.bits.size() != f.reference_bits.size()
                    || f.bits.empty()) {
                    monitor.skip();
                    return;
                }
                for (std::size_t start = 0;
                     start + static_cast<std::size_t>(k_bch) <= f.bits.size();
                     start += static_cast<std::size_t>(k_bch)) {
                    const std::vector<std::uint8_t> decoded(
                        f.bits.begin() + static_cast<std::ptrdiff_t>(start),
                        f.bits.begin() + static_cast<std::ptrdiff_t>(start) + k_bch);
                    const std::vector<std::uint8_t> reference(
                        f.reference_bits.begin() + static_cast<std::ptrdiff_t>(start),
                        f.reference_bits.begin() + static_cast<std::ptrdiff_t>(start) + k_bch);
                    monitor.check(decoded, reference);
                }
            }));
    }

    return chain;
}

} // namespace amp::dvbs2
