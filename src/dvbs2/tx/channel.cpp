#include "dvbs2/tx/channel.hpp"

#include <cmath>
#include <numbers>

namespace amp::dvbs2 {

Channel::Channel(ChannelConfig config)
    : config_(config)
    , rng_(config.seed)
    , carrier_phase_(config.phase_offset_rad)
{
    delay_line_.assign(static_cast<std::size_t>(std::max(0, config_.integer_delay)),
                       {0.0F, 0.0F});
}

std::vector<std::complex<float>> Channel::apply(const std::vector<std::complex<float>>& input)
{
    std::vector<std::complex<float>> output;
    output.reserve(input.size());

    const double step = 2.0 * std::numbers::pi * config_.cfo_cycles_per_sample;
    const auto mu = static_cast<float>(config_.fractional_delay);

    for (const auto& raw : input) {
        // Fractional delay by linear interpolation with the previous sample.
        const std::complex<float> delayed =
            (1.0F - mu) * raw + mu * previous_sample_;
        previous_sample_ = raw;

        // Integer delay through a FIFO.
        std::complex<float> sample = delayed;
        if (!delay_line_.empty()) {
            delay_line_.push_back(delayed);
            sample = delay_line_.front();
            delay_line_.erase(delay_line_.begin());
        }

        // Gain, carrier offset and static phase.
        const std::complex<float> rotation{static_cast<float>(std::cos(carrier_phase_)),
                                           static_cast<float>(std::sin(carrier_phase_))};
        sample *= config_.gain * rotation;
        carrier_phase_ += step;
        if (carrier_phase_ > 64.0 * std::numbers::pi)
            carrier_phase_ = std::fmod(carrier_phase_, 2.0 * std::numbers::pi);

        // AWGN calibrated against the running signal-power estimate.
        signal_power_estimate_ += (static_cast<double>(std::norm(sample))
                                   - signal_power_estimate_)
            / static_cast<double>(std::min<std::uint64_t>(++samples_seen_, 4096));
        const double snr_linear = std::pow(10.0, config_.snr_db / 10.0);
        noise_sigma_per_component_ =
            std::sqrt(signal_power_estimate_ / snr_linear / 2.0);
        const auto noise = std::complex<float>{
            static_cast<float>(noise_sigma_per_component_ * rng_.normal()),
            static_cast<float>(noise_sigma_per_component_ * rng_.normal())};
        output.push_back(sample + noise);
    }
    return output;
}

} // namespace amp::dvbs2
