#include "dvbs2/tx/transmitter.hpp"

#include "dvbs2/common/bb_scrambler.hpp"
#include "dvbs2/common/interleaver.hpp"
#include "dvbs2/common/pilots.hpp"
#include "dvbs2/common/pl_scrambler.hpp"
#include "dvbs2/common/plh_framer.hpp"
#include "dvbs2/common/qpsk.hpp"
#include "dvbs2/fec/bch.hpp"
#include "dvbs2/fec/ldpc.hpp"

#include <stdexcept>

namespace amp::dvbs2 {

std::vector<std::uint8_t> reference_payload(int k_bits, std::uint64_t seed, std::uint64_t index)
{
    if (k_bits <= 64)
        throw std::invalid_argument{"reference_payload: k_bits must exceed the 64-bit header"};
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(k_bits));
    for (int b = 0; b < 64; ++b)
        bits[static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>((index >> (63 - b)) & 1u);
    Rng rng{seed ^ (index * 0x9e3779b97f4a7c15ULL + 0x7ULL)};
    for (int b = 64; b < k_bits; ++b)
        bits[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(rng() & 1u);
    return bits;
}

std::uint64_t extract_frame_index(const std::vector<std::uint8_t>& payload)
{
    if (payload.size() < 64)
        throw std::invalid_argument{"extract_frame_index: payload shorter than 64 bits"};
    std::uint64_t index = 0;
    for (int b = 0; b < 64; ++b)
        index = (index << 1) | (payload[static_cast<std::size_t>(b)] & 1u);
    return index;
}

Transmitter::Transmitter(FrameParams params, std::uint64_t data_seed, float rolloff,
                         int rrc_span)
    : params_(params)
    , data_seed_(data_seed)
    , shaping_(rolloff, params.samples_per_symbol, rrc_span)
{
}

std::vector<std::complex<float>> Transmitter::frame_symbols(std::uint64_t index) const
{
    // Baseband frame: payload bits, scrambled, then the FEC cascade.
    auto bits = reference_payload(params_.k_bch, data_seed_, index);
    BbScrambler::scramble(bits);
    const auto& bch = BchCode::dvbs2_short_8_9();
    const auto& ldpc = LdpcCode::dvbs2_short_8_9();
    const auto bch_word = bch.encode(bits);
    const auto ldpc_word = ldpc.encode(bch_word);

    const BlockInterleaver interleaver{params_.bits_per_symbol};
    const auto interleaved = interleaver.interleave(ldpc_word);
    auto payload_symbols = QpskModem::modulate(interleaved);

    // Physical layer: pilots, header, scrambling (header stays clean).
    const PilotLayout layout{params_.xfec_symbols(), params_.pilot_block_symbols,
                             params_.payload_per_pilot_block};
    const auto with_pilots = insert_pilots(payload_symbols, layout);
    auto plframe = PlhFramer::insert(kPls, with_pilots);

    std::vector<std::complex<float>> scrambled_part(plframe.begin() + PlhFramer::kHeaderSymbols,
                                                    plframe.end());
    PlScrambler::scramble(scrambled_part);
    std::copy(scrambled_part.begin(), scrambled_part.end(),
              plframe.begin() + PlhFramer::kHeaderSymbols);
    return plframe;
}

std::vector<std::complex<float>> Transmitter::next_frame_samples()
{
    const auto symbols = frame_symbols(next_index_++);
    return shaping_.shape(symbols);
}

} // namespace amp::dvbs2
