#pragma once
// DVB-S2 transmitter: builds the PLFRAME sample stream the receiver chain
// consumes. Per frame: payload bits (64-bit frame index + seeded PRBS) ->
// BB scrambling -> BCH -> LDPC -> bit interleaving -> QPSK -> pilot
// insertion -> PLHEADER insertion -> PL scrambling -> RRC pulse shaping at
// 2 samples/symbol (streaming across frames).

#include "common/rng.hpp"
#include "dvbs2/common/rrc_filter.hpp"
#include "dvbs2/params.hpp"

#include <complex>
#include <cstdint>
#include <vector>

namespace amp::dvbs2 {

/// Deterministic payload of frame `index`: the 64-bit index (MSB first)
/// followed by PRBS bits seeded by (seed, index). The receiver's Source
/// task regenerates this to verify decoded frames.
[[nodiscard]] std::vector<std::uint8_t> reference_payload(int k_bits, std::uint64_t seed,
                                                          std::uint64_t index);

/// Reads the 64-bit frame index back from decoded payload bits.
[[nodiscard]] std::uint64_t extract_frame_index(const std::vector<std::uint8_t>& payload);

class Transmitter {
public:
    Transmitter(FrameParams params, std::uint64_t data_seed, float rolloff = 0.2F,
                int rrc_span = 8);

    /// Samples of the next PLFRAME (params.plframe_samples() of them); the
    /// shaping filter streams across calls so frames are contiguous.
    [[nodiscard]] std::vector<std::complex<float>> next_frame_samples();

    /// PLFRAME symbols of an arbitrary frame (no shaping); used by tests.
    [[nodiscard]] std::vector<std::complex<float>> frame_symbols(std::uint64_t index) const;

    [[nodiscard]] std::uint64_t frames_sent() const noexcept { return next_index_; }
    [[nodiscard]] const FrameParams& params() const noexcept { return params_; }

    /// PLS field of the evaluated configuration (MODCOD 2, short frames).
    static constexpr std::uint8_t kPls = (2 << 3) | 2;

private:
    FrameParams params_;
    std::uint64_t data_seed_;
    std::uint64_t next_index_ = 0;
    ShapingFilter shaping_;
};

} // namespace amp::dvbs2
