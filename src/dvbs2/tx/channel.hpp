#pragma once
// Channel model between the transmitter and the receiver's radio front-end:
// complex gain, carrier-frequency offset (continuous phase), static phase
// offset, fractional + integer delay, and AWGN. Replaces the paper's real
// RF front-end (DESIGN.md, substitution 3) with a deterministic, seeded
// impairment chain in the "error-free SNR zone".

#include "common/rng.hpp"

#include <complex>
#include <cstdint>
#include <vector>

namespace amp::dvbs2 {

struct ChannelConfig {
    float gain = 0.8F;               ///< complex amplitude scale
    double cfo_cycles_per_sample = 5e-4; ///< carrier offset at 2 sps
    double phase_offset_rad = 0.6;   ///< static phase rotation
    double fractional_delay = 0.3;   ///< sub-sample delay (linear interp)
    int integer_delay = 23;          ///< whole-sample delay
    double snr_db = 18.0;            ///< per-sample SNR (error-free zone)
    std::uint64_t seed = 0xc4a11;
};

class Channel {
public:
    explicit Channel(ChannelConfig config = {});

    /// Applies the impairments to a sample block (streaming: delay lines,
    /// carrier phase and the noise generator persist across calls).
    [[nodiscard]] std::vector<std::complex<float>>
    apply(const std::vector<std::complex<float>>& input);

    [[nodiscard]] const ChannelConfig& config() const noexcept { return config_; }

private:
    ChannelConfig config_;
    Rng rng_;
    double carrier_phase_;
    std::complex<float> previous_sample_{0.0F, 0.0F};
    std::vector<std::complex<float>> delay_line_;
    double noise_sigma_per_component_ = 0.0;
    double signal_power_estimate_ = 1.0;
    std::uint64_t samples_seen_ = 0;
};

} // namespace amp::dvbs2
