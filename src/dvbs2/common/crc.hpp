#pragma once
// CRC-8 over bit vectors with the DVB-S2 BBHEADER polynomial
// x^8 + x^7 + x^6 + x^4 + x^2 + 1 (ETSI EN 302 307 §5.1.6). The transmitter
// protects each baseband frame header with it; the receiver's monitor can
// then detect residual errors in-band.

#include <cstdint>
#include <vector>

namespace amp::dvbs2 {

class Crc8 {
public:
    /// DVB-S2 BBHEADER generator, bit mask without the x^8 term.
    static constexpr std::uint8_t kDvbs2Poly = 0b11010101;

    explicit constexpr Crc8(std::uint8_t poly = kDvbs2Poly) noexcept
        : poly_(poly)
    {
    }

    /// CRC over `count` bits of the 0/1 byte vector starting at `offset`.
    [[nodiscard]] std::uint8_t compute(const std::vector<std::uint8_t>& bits,
                                       std::size_t offset, std::size_t count) const;

    [[nodiscard]] std::uint8_t compute(const std::vector<std::uint8_t>& bits) const
    {
        return compute(bits, 0, bits.size());
    }

    /// Appends the 8 CRC bits (MSB first) to the vector.
    void append(std::vector<std::uint8_t>& bits) const;

    /// True iff the last 8 bits are the CRC of everything before them.
    [[nodiscard]] bool check(const std::vector<std::uint8_t>& bits) const;

private:
    std::uint8_t poly_;
};

} // namespace amp::dvbs2
