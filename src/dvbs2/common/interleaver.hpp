#pragma once
// Row/column block interleaver (the DVB-S2 bit interleaver family, §5.3.3):
// written row-wise into `columns` columns, read column-wise. Works on any
// element type so the RX side can deinterleave soft LLRs.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace amp::dvbs2 {

class BlockInterleaver {
public:
    explicit BlockInterleaver(int columns)
        : columns_(columns)
    {
        if (columns < 1)
            throw std::invalid_argument{"BlockInterleaver: columns must be >= 1"};
    }

    [[nodiscard]] int columns() const noexcept { return columns_; }

    template <typename T>
    [[nodiscard]] std::vector<T> interleave(const std::vector<T>& input) const
    {
        const std::size_t rows = check_size(input.size());
        std::vector<T> output(input.size());
        std::size_t write = 0;
        for (std::size_t c = 0; c < static_cast<std::size_t>(columns_); ++c)
            for (std::size_t r = 0; r < rows; ++r)
                output[write++] = input[r * static_cast<std::size_t>(columns_) + c];
        return output;
    }

    template <typename T>
    [[nodiscard]] std::vector<T> deinterleave(const std::vector<T>& input) const
    {
        const std::size_t rows = check_size(input.size());
        std::vector<T> output(input.size());
        std::size_t read = 0;
        for (std::size_t c = 0; c < static_cast<std::size_t>(columns_); ++c)
            for (std::size_t r = 0; r < rows; ++r)
                output[r * static_cast<std::size_t>(columns_) + c] = input[read++];
        return output;
    }

private:
    [[nodiscard]] std::size_t check_size(std::size_t size) const
    {
        if (size % static_cast<std::size_t>(columns_) != 0)
            throw std::invalid_argument{"BlockInterleaver: size not divisible by columns"};
        return size / static_cast<std::size_t>(columns_);
    }

    int columns_;
};

} // namespace amp::dvbs2
