#include "dvbs2/common/rrc_filter.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace amp::dvbs2 {

std::vector<float> rrc_taps(float rolloff, int sps, int span)
{
    if (rolloff <= 0.0F || rolloff > 1.0F)
        throw std::invalid_argument{"rrc_taps: rolloff must be in (0, 1]"};
    if (sps < 1 || span < 1)
        throw std::invalid_argument{"rrc_taps: sps and span must be >= 1"};

    const int half = span * sps;
    const int count = 2 * half + 1;
    std::vector<float> taps(static_cast<std::size_t>(count));
    const double beta = rolloff;
    const double pi = std::numbers::pi;

    double energy = 0.0;
    for (int i = 0; i < count; ++i) {
        const double t = static_cast<double>(i - half) / sps; // in symbols
        double value = 0.0;
        const double singular = std::abs(std::abs(4.0 * beta * t) - 1.0);
        if (t == 0.0) {
            value = 1.0 + beta * (4.0 / pi - 1.0);
        } else if (singular < 1e-8) {
            value = (beta / std::sqrt(2.0))
                * ((1.0 + 2.0 / pi) * std::sin(pi / (4.0 * beta))
                   + (1.0 - 2.0 / pi) * std::cos(pi / (4.0 * beta)));
        } else {
            const double num = std::sin(pi * t * (1.0 - beta))
                + 4.0 * beta * t * std::cos(pi * t * (1.0 + beta));
            const double den = pi * t * (1.0 - 16.0 * beta * beta * t * t);
            value = num / den;
        }
        taps[static_cast<std::size_t>(i)] = static_cast<float>(value);
        energy += value * value;
    }
    const auto norm = static_cast<float>(1.0 / std::sqrt(energy));
    for (auto& tap : taps)
        tap *= norm;
    return taps;
}

StreamingFir::StreamingFir(std::vector<float> taps)
    : taps_(std::move(taps))
{
    if (taps_.empty())
        throw std::invalid_argument{"StreamingFir: empty tap set"};
    history_.assign(taps_.size() - 1, {0.0F, 0.0F});
}

void StreamingFir::reset()
{
    history_.assign(history_.size(), {0.0F, 0.0F});
}

std::vector<std::complex<float>>
StreamingFir::filter(const std::vector<std::complex<float>>& input)
{
    const std::size_t t = taps_.size();
    // Work buffer = history + input so that x[n-k] lookups never branch.
    std::vector<std::complex<float>> extended;
    extended.reserve(history_.size() + input.size());
    extended.insert(extended.end(), history_.begin(), history_.end());
    extended.insert(extended.end(), input.begin(), input.end());

    std::vector<std::complex<float>> output(input.size());
    for (std::size_t n = 0; n < input.size(); ++n) {
        float acc_re = 0.0F;
        float acc_im = 0.0F;
        const std::complex<float>* x = extended.data() + n; // x[n - (t-1)] .. x[n]
        for (std::size_t k = 0; k < t; ++k) {
            const auto& sample = x[t - 1 - k];
            acc_re += taps_[k] * sample.real();
            acc_im += taps_[k] * sample.imag();
        }
        output[n] = {acc_re, acc_im};
    }

    if (!history_.empty()) {
        if (input.size() >= history_.size()) {
            history_.assign(extended.end() - static_cast<std::ptrdiff_t>(history_.size()),
                            extended.end());
        } else {
            history_.erase(history_.begin(),
                           history_.begin() + static_cast<std::ptrdiff_t>(input.size()));
            history_.insert(history_.end(), input.begin(), input.end());
        }
    }
    return output;
}

SplitFir::SplitFir(const std::vector<float>& taps)
    : first_(std::vector<float>(taps.begin(), taps.begin() + static_cast<std::ptrdiff_t>(taps.size() / 2)))
    , second_(std::vector<float>(taps.begin() + static_cast<std::ptrdiff_t>(taps.size() / 2), taps.end()))
    , delay_(static_cast<int>(taps.size() / 2))
{
    if (taps.size() < 2)
        throw std::invalid_argument{"SplitFir: need at least two taps"};
    delay_line_.assign(static_cast<std::size_t>(delay_), {0.0F, 0.0F});
}

std::vector<std::complex<float>> SplitFir::part1(const std::vector<std::complex<float>>& input)
{
    return first_.filter(input);
}

std::vector<std::complex<float>>
SplitFir::part2(const std::vector<std::complex<float>>& input,
                std::vector<std::complex<float>> partial)
{
    if (partial.size() != input.size())
        throw std::invalid_argument{"SplitFir::part2: partial/input size mismatch"};
    // Delay the input by taps/2 samples, then run the second-half FIR:
    // y2[n] = (h2 * x)[n - delay].
    std::vector<std::complex<float>> delayed;
    delayed.reserve(input.size());
    if (input.size() >= delay_line_.size()) {
        delayed.insert(delayed.end(), delay_line_.begin(), delay_line_.end());
        delayed.insert(delayed.end(), input.begin(),
                       input.end() - static_cast<std::ptrdiff_t>(delay_line_.size()));
        delay_line_.assign(input.end() - static_cast<std::ptrdiff_t>(delay_line_.size()),
                           input.end());
    } else {
        delayed.insert(delayed.end(), delay_line_.begin(),
                       delay_line_.begin() + static_cast<std::ptrdiff_t>(input.size()));
        delay_line_.erase(delay_line_.begin(),
                          delay_line_.begin() + static_cast<std::ptrdiff_t>(input.size()));
        delay_line_.insert(delay_line_.end(), input.begin(), input.end());
    }
    const auto tail = second_.filter(delayed);
    for (std::size_t n = 0; n < partial.size(); ++n)
        partial[n] += tail[n];
    return partial;
}

ShapingFilter::ShapingFilter(float rolloff, int sps, int span)
    : sps_(sps)
    , fir_(rrc_taps(rolloff, sps, span))
{
}

std::vector<std::complex<float>>
ShapingFilter::shape(const std::vector<std::complex<float>>& symbols)
{
    std::vector<std::complex<float>> upsampled(symbols.size() * static_cast<std::size_t>(sps_),
                                               {0.0F, 0.0F});
    // Scale by sqrt(sps) so that the shaped signal keeps unit symbol energy
    // after matched filtering.
    const float gain = std::sqrt(static_cast<float>(sps_));
    for (std::size_t s = 0; s < symbols.size(); ++s)
        upsampled[s * static_cast<std::size_t>(sps_)] = gain * symbols[s];
    return fir_.filter(upsampled);
}

} // namespace amp::dvbs2
