#include "dvbs2/common/plh_framer.hpp"

#include <algorithm>
#include <stdexcept>

namespace amp::dvbs2 {

namespace {

constexpr float kInvSqrt2 = 0.70710678118654752F;

/// RM(1,5) generator rows: the all-ones row plus the 5 binary "address"
/// rows; 6 information bits -> 32-bit codeword.
[[nodiscard]] std::uint32_t rm15_encode(std::uint8_t info6)
{
    std::uint32_t word = 0;
    for (int position = 0; position < 32; ++position) {
        std::uint8_t bit = (info6 >> 5) & 1u; // all-ones row weight
        for (int row = 0; row < 5; ++row)
            if ((info6 >> row) & 1u)
                bit ^= static_cast<std::uint8_t>((position >> row) & 1);
        word |= static_cast<std::uint32_t>(bit) << position;
    }
    return word;
}

} // namespace

std::complex<float> PlhFramer::pi2_bpsk(std::uint8_t bit, int index)
{
    const float amplitude = bit ? -1.0F : 1.0F;
    // Base constellation point at 45 degrees, rotated by 90 degrees per
    // symbol index (the pi/2-BPSK spin).
    std::complex<float> value{amplitude * kInvSqrt2, amplitude * kInvSqrt2};
    switch (index & 3) {
    case 0: return value;
    case 1: return {-value.imag(), value.real()};
    case 2: return {-value.real(), -value.imag()};
    default: return {value.imag(), -value.real()};
    }
}

const std::vector<std::complex<float>>& PlhFramer::sof_symbols()
{
    static const std::vector<std::complex<float>> symbols = [] {
        std::vector<std::complex<float>> out(kSofBits);
        for (int j = 0; j < kSofBits; ++j) {
            const std::uint8_t bit =
                static_cast<std::uint8_t>((kSofPattern >> (kSofBits - 1 - j)) & 1u);
            out[static_cast<std::size_t>(j)] = pi2_bpsk(bit, j);
        }
        return out;
    }();
    return symbols;
}

std::vector<std::uint8_t> PlhFramer::encode_pls(std::uint8_t pls)
{
    // 7 bits: 6 through RM(1,5) into 32 bits y, then 64 bits by emitting
    // (y_i, y_i ^ b7) pairs -- the standard's construction.
    const std::uint32_t y = rm15_encode(static_cast<std::uint8_t>(pls >> 1));
    const std::uint8_t b7 = pls & 1u;
    std::vector<std::uint8_t> bits(kPlscBits);
    for (int i = 0; i < 32; ++i) {
        const auto yi = static_cast<std::uint8_t>((y >> i) & 1u);
        bits[static_cast<std::size_t>(2 * i)] = yi;
        bits[static_cast<std::size_t>(2 * i + 1)] = yi ^ b7;
    }
    return bits;
}

std::uint8_t PlhFramer::decode_pls(const std::vector<std::complex<float>>& symbols)
{
    if (static_cast<int>(symbols.size()) != kPlscBits)
        throw std::invalid_argument{"PlhFramer::decode_pls: expected 64 symbols"};
    float best = -1.0F;
    std::uint8_t best_pls = 0;
    for (int pls = 0; pls < 128; ++pls) {
        const auto bits = encode_pls(static_cast<std::uint8_t>(pls));
        float correlation = 0.0F;
        for (int i = 0; i < kPlscBits; ++i) {
            const auto reference = pi2_bpsk(bits[static_cast<std::size_t>(i)], kSofBits + i);
            correlation += symbols[static_cast<std::size_t>(i)].real() * reference.real()
                + symbols[static_cast<std::size_t>(i)].imag() * reference.imag();
        }
        if (correlation > best) {
            best = correlation;
            best_pls = static_cast<std::uint8_t>(pls);
        }
    }
    return best_pls;
}

std::vector<std::complex<float>> PlhFramer::build_header(std::uint8_t pls)
{
    std::vector<std::complex<float>> header = sof_symbols();
    header.reserve(kHeaderSymbols);
    const auto bits = encode_pls(pls);
    for (int i = 0; i < kPlscBits; ++i)
        header.push_back(pi2_bpsk(bits[static_cast<std::size_t>(i)], kSofBits + i));
    return header;
}

std::vector<std::complex<float>>
PlhFramer::insert(std::uint8_t pls, const std::vector<std::complex<float>>& payload)
{
    std::vector<std::complex<float>> frame = build_header(pls);
    frame.insert(frame.end(), payload.begin(), payload.end());
    return frame;
}

std::vector<std::complex<float>>
PlhFramer::remove(const std::vector<std::complex<float>>& plframe)
{
    if (static_cast<int>(plframe.size()) < kHeaderSymbols)
        throw std::invalid_argument{"PlhFramer::remove: frame shorter than the header"};
    return {plframe.begin() + kHeaderSymbols, plframe.end()};
}

} // namespace amp::dvbs2
