#include "dvbs2/common/psk.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace amp::dvbs2 {

namespace {

constexpr float kInvSqrt2 = 0.70710678118654752F;

[[nodiscard]] std::complex<float> from_angle(double radians, double radius = 1.0)
{
    return {static_cast<float>(radius * std::cos(radians)),
            static_cast<float>(radius * std::sin(radians))};
}

std::vector<std::complex<float>> build_points(Modulation modulation, float gamma)
{
    switch (modulation) {
    case Modulation::qpsk: {
        // Matches QpskModem: bit0 -> I sign, bit1 -> Q sign (Gray).
        std::vector<std::complex<float>> points(4);
        for (int label = 0; label < 4; ++label) {
            const float i = (label & 0b10) ? -kInvSqrt2 : kInvSqrt2;
            const float q = (label & 0b01) ? -kInvSqrt2 : kInvSqrt2;
            points[static_cast<std::size_t>(label)] = {i, q};
        }
        return points;
    }
    case Modulation::psk8: {
        // DVB-S2 8PSK Gray labelling around the circle, first point at pi/4.
        static constexpr int kGray[8] = {0, 1, 3, 2, 6, 7, 5, 4};
        std::vector<std::complex<float>> points(8);
        for (int position = 0; position < 8; ++position) {
            const double angle = std::numbers::pi / 4.0
                + position * (2.0 * std::numbers::pi / 8.0);
            points[static_cast<std::size_t>(kGray[position])] = from_angle(angle);
        }
        return points;
    }
    case Modulation::apsk16: {
        // 4 + 12 APSK: inner QPSK ring radius r1, outer 12-PSK ring radius
        // r2 = gamma * r1, normalized to unit average energy. Labels follow
        // the standard's structure: the two MSBs select ring/sector, the
        // rest the position (a Gray-ish mapping adequate for max-log LLRs).
        if (gamma <= 1.0F)
            throw std::invalid_argument{"16APSK: gamma must exceed 1"};
        const double r1 = std::sqrt(4.0 / (1.0 + 3.0 * gamma * gamma));
        const double r2 = gamma * r1;
        std::vector<std::complex<float>> points(16);
        // Inner ring: labels 12..15 (11xx in DVB-S2 carry the inner ring).
        static constexpr int kInner[4] = {0b1100, 0b1110, 0b1111, 0b1101};
        for (int position = 0; position < 4; ++position) {
            const double angle = std::numbers::pi / 4.0
                + position * (std::numbers::pi / 2.0);
            points[static_cast<std::size_t>(kInner[position])] = from_angle(angle, r1);
        }
        static constexpr int kOuter[12] = {0b0000, 0b0100, 0b0110, 0b0010, 0b0011, 0b0111,
                                           0b0101, 0b0001, 0b1001, 0b1011, 0b1010, 0b1000};
        for (int position = 0; position < 12; ++position) {
            const double angle = std::numbers::pi / 12.0
                + position * (2.0 * std::numbers::pi / 12.0);
            points[static_cast<std::size_t>(kOuter[position])] = from_angle(angle, r2);
        }
        return points;
    }
    }
    throw std::invalid_argument{"unknown modulation"};
}

} // namespace

ConstellationModem::ConstellationModem(Modulation modulation, float apsk_gamma)
    : modulation_(modulation)
    , points_(build_points(modulation, apsk_gamma))
{
}

std::vector<std::complex<float>>
ConstellationModem::modulate(const std::vector<std::uint8_t>& bits) const
{
    const int per_symbol = this->bits();
    if (bits.size() % static_cast<std::size_t>(per_symbol) != 0)
        throw std::invalid_argument{"ConstellationModem::modulate: bit count mismatch"};
    std::vector<std::complex<float>> symbols(bits.size() / static_cast<std::size_t>(per_symbol));
    for (std::size_t s = 0; s < symbols.size(); ++s) {
        int label = 0;
        for (int b = 0; b < per_symbol; ++b)
            label = (label << 1)
                | (bits[s * static_cast<std::size_t>(per_symbol) + static_cast<std::size_t>(b)]
                   & 1);
        symbols[s] = points_[static_cast<std::size_t>(label)];
    }
    return symbols;
}

std::vector<float>
ConstellationModem::demodulate(const std::vector<std::complex<float>>& symbols,
                               float sigma2) const
{
    if (sigma2 <= 0.0F)
        throw std::invalid_argument{"ConstellationModem::demodulate: sigma2 must be positive"};
    const int per_symbol = this->bits();
    std::vector<float> llrs(symbols.size() * static_cast<std::size_t>(per_symbol));

    std::vector<float> distance(points_.size());
    for (std::size_t s = 0; s < symbols.size(); ++s) {
        for (std::size_t label = 0; label < points_.size(); ++label)
            distance[label] = std::norm(symbols[s] - points_[label]);
        for (int b = 0; b < per_symbol; ++b) {
            // Max-log: LLR = (min dist over bit=1) - (min dist over bit=0),
            // scaled by 1/sigma2; positive favours bit 0.
            float best0 = std::numeric_limits<float>::max();
            float best1 = std::numeric_limits<float>::max();
            const int mask = 1 << (per_symbol - 1 - b);
            for (std::size_t label = 0; label < points_.size(); ++label) {
                if (static_cast<int>(label) & mask)
                    best1 = std::min(best1, distance[label]);
                else
                    best0 = std::min(best0, distance[label]);
            }
            llrs[s * static_cast<std::size_t>(per_symbol) + static_cast<std::size_t>(b)] =
                (best1 - best0) / sigma2;
        }
    }
    return llrs;
}

std::vector<std::uint8_t>
ConstellationModem::hard_decide(const std::vector<std::complex<float>>& symbols) const
{
    const int per_symbol = this->bits();
    std::vector<std::uint8_t> bits(symbols.size() * static_cast<std::size_t>(per_symbol));
    for (std::size_t s = 0; s < symbols.size(); ++s) {
        float best = std::numeric_limits<float>::max();
        int best_label = 0;
        for (std::size_t label = 0; label < points_.size(); ++label) {
            const float dist = std::norm(symbols[s] - points_[label]);
            if (dist < best) {
                best = dist;
                best_label = static_cast<int>(label);
            }
        }
        for (int b = 0; b < per_symbol; ++b)
            bits[s * static_cast<std::size_t>(per_symbol) + static_cast<std::size_t>(b)] =
                static_cast<std::uint8_t>((best_label >> (per_symbol - 1 - b)) & 1);
    }
    return bits;
}

} // namespace amp::dvbs2
