#include "dvbs2/common/bb_scrambler.hpp"

namespace amp::dvbs2 {

namespace {

/// 15-bit LFSR with feedback x^14 + x^15 and the standard's init sequence.
class Lfsr {
public:
    Lfsr()
        : state_(0b100101010000000)
    {
    }

    std::uint8_t next()
    {
        const std::uint8_t out = static_cast<std::uint8_t>((state_ >> 13 ^ state_ >> 14) & 1u);
        state_ = static_cast<std::uint16_t>(((state_ << 1) | out) & 0x7fff);
        return out;
    }

private:
    std::uint16_t state_;
};

} // namespace

void BbScrambler::scramble(std::vector<std::uint8_t>& bits)
{
    Lfsr lfsr;
    for (auto& bit : bits)
        bit ^= lfsr.next();
}

std::vector<std::uint8_t> BbScrambler::prbs(std::size_t count)
{
    Lfsr lfsr;
    std::vector<std::uint8_t> out(count);
    for (auto& bit : out)
        bit = lfsr.next();
    return out;
}

} // namespace amp::dvbs2
