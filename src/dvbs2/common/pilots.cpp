#include "dvbs2/common/pilots.hpp"

#include <stdexcept>

namespace amp::dvbs2 {

std::vector<int> pilot_block_offsets(const PilotLayout& layout)
{
    std::vector<int> offsets;
    offsets.reserve(static_cast<std::size_t>(layout.block_count()));
    for (int b = 0; b < layout.block_count(); ++b)
        offsets.push_back((b + 1) * layout.payload_per_block + b * layout.block_symbols);
    return offsets;
}

std::vector<std::complex<float>> insert_pilots(const std::vector<std::complex<float>>& payload,
                                               const PilotLayout& layout)
{
    if (static_cast<int>(payload.size()) != layout.payload_symbols)
        throw std::invalid_argument{"insert_pilots: payload size mismatch"};
    std::vector<std::complex<float>> out;
    out.reserve(static_cast<std::size_t>(layout.total_symbols()));
    int consumed = 0;
    for (int b = 0; b < layout.block_count(); ++b) {
        out.insert(out.end(), payload.begin() + consumed,
                   payload.begin() + consumed + layout.payload_per_block);
        consumed += layout.payload_per_block;
        out.insert(out.end(), static_cast<std::size_t>(layout.block_symbols), pilot_symbol());
    }
    out.insert(out.end(), payload.begin() + consumed, payload.end());
    return out;
}

std::vector<std::complex<float>>
remove_pilots(const std::vector<std::complex<float>>& with_pilots, const PilotLayout& layout)
{
    if (static_cast<int>(with_pilots.size()) != layout.total_symbols())
        throw std::invalid_argument{"remove_pilots: input size mismatch"};
    std::vector<std::complex<float>> out;
    out.reserve(static_cast<std::size_t>(layout.payload_symbols));
    int cursor = 0;
    for (int b = 0; b < layout.block_count(); ++b) {
        out.insert(out.end(), with_pilots.begin() + cursor,
                   with_pilots.begin() + cursor + layout.payload_per_block);
        cursor += layout.payload_per_block + layout.block_symbols;
    }
    out.insert(out.end(), with_pilots.begin() + cursor, with_pilots.end());
    return out;
}

} // namespace amp::dvbs2
