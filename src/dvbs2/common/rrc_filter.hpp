#pragma once
// Root-raised-cosine pulse shaping / matched filtering (DVB-S2 uses RRC
// with rolloff 0.35 / 0.25 / 0.20; the evaluated configuration uses 0.20).
//
// The RX matched filter appears in the paper's chain as two tasks
// ("Filter Matched - filter (part 1/2)"): SplitFir computes the convolution
// with the first half of the taps in part 1 and adds the second half in
// part 2, each part keeping its own streaming delay line. Summing the two
// partial convolutions reproduces the full filter exactly.

#include <complex>
#include <vector>

namespace amp::dvbs2 {

/// RRC impulse response with `span` symbols on each side at `sps` samples
/// per symbol; unit-energy normalized. Tap count = 2 * span * sps + 1.
[[nodiscard]] std::vector<float> rrc_taps(float rolloff, int sps, int span);

/// Streaming FIR filter over complex samples with persistent state.
class StreamingFir {
public:
    explicit StreamingFir(std::vector<float> taps);

    /// Filters a block; the delay line persists across calls, so
    /// concatenated blocks produce the same output as one big block.
    [[nodiscard]] std::vector<std::complex<float>>
    filter(const std::vector<std::complex<float>>& input);

    void reset();

    [[nodiscard]] const std::vector<float>& taps() const noexcept { return taps_; }

private:
    std::vector<float> taps_;
    std::vector<std::complex<float>> history_; ///< last taps-1 input samples
};

/// The matched filter split into two partial convolutions (paper tasks
/// tau_4 / tau_5): part1() computes taps [0, T/2), part2() adds taps
/// [T/2, T) with the appropriate delay. part1 followed by part2 equals
/// StreamingFir over the full tap set.
class SplitFir {
public:
    explicit SplitFir(const std::vector<float>& taps);

    [[nodiscard]] std::vector<std::complex<float>>
    part1(const std::vector<std::complex<float>>& input);

    /// `input` must be the same block passed to part1; `partial` is part1's
    /// output, completed in place and returned.
    [[nodiscard]] std::vector<std::complex<float>>
    part2(const std::vector<std::complex<float>>& input, std::vector<std::complex<float>> partial);

    /// Accessors for building the two halves as independent tasks.
    [[nodiscard]] StreamingFir& first_half() noexcept { return first_; }
    [[nodiscard]] StreamingFir& second_half() noexcept { return second_; }

private:
    StreamingFir first_;
    StreamingFir second_;
    int delay_;
    std::vector<std::complex<float>> delay_line_;
};

/// TX upsampler + shaping filter: zero-stuffs to `sps` samples per symbol
/// and applies the RRC pulse, streaming across frames.
class ShapingFilter {
public:
    ShapingFilter(float rolloff, int sps, int span);

    [[nodiscard]] std::vector<std::complex<float>>
    shape(const std::vector<std::complex<float>>& symbols);

private:
    int sps_;
    StreamingFir fir_;
};

} // namespace amp::dvbs2
