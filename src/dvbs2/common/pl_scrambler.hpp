#pragma once
// Physical-layer symbol scrambler (DVB-S2 §5.5.4): the payload symbols of
// every PLFRAME are rotated by i^(R_n) where R_n in {0,1,2,3} comes from a
// Gold-like sequence built from two length-2^18-1 m-sequences (polynomials
// 1 + x^7 + x^18 and 1 + y^5 + y^7 + y^10 + y^18). The PLHEADER itself is
// not scrambled. Descrambling applies the conjugate rotation.

#include <complex>
#include <cstdint>
#include <vector>

namespace amp::dvbs2 {

class PlScrambler {
public:
    /// Scrambling sequence R_n for n in [0, count), using scrambling code 0.
    [[nodiscard]] static std::vector<std::uint8_t> sequence(std::size_t count);

    /// Rotates `symbols` by i^(R_n) in place (TX direction).
    static void scramble(std::vector<std::complex<float>>& symbols);

    /// Applies the conjugate rotation in place (RX direction).
    static void descramble(std::vector<std::complex<float>>& symbols);
};

} // namespace amp::dvbs2
