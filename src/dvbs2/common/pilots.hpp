#pragma once
// PLFRAME pilot structure (DVB-S2 §5.5.3): when pilots are on, a block of 36
// unmodulated pilot symbols is inserted after every 16 slots (16 x 90 = 1440
// payload symbols). For the short-frame QPSK configuration (8100 payload
// symbols) this yields 5 pilot blocks = 180 pilot symbols.
//
// Pilots make the fine phase/frequency task (tau_13) replicable: each frame
// carries enough known symbols to track phase without cross-frame state.

#include <complex>
#include <vector>

namespace amp::dvbs2 {

struct PilotLayout {
    int payload_symbols;        ///< data symbols per frame (e.g. 8100)
    int block_symbols = 36;     ///< pilots per block
    int payload_per_block = 1440; ///< data symbols between blocks (16 slots)

    [[nodiscard]] int block_count() const noexcept
    {
        // A block is inserted after every full 1440-symbol section, except
        // when it would trail the very end of the payload.
        const int sections = payload_symbols / payload_per_block;
        return payload_symbols % payload_per_block == 0 ? sections - 1 : sections;
    }
    [[nodiscard]] int pilot_symbols() const noexcept { return block_count() * block_symbols; }
    [[nodiscard]] int total_symbols() const noexcept
    {
        return payload_symbols + pilot_symbols();
    }
};

[[nodiscard]] inline std::complex<float> pilot_symbol() noexcept
{
    return {0.70710678118654752F, 0.70710678118654752F};
}

/// Inserts pilot blocks into a payload-symbol vector (TX direction).
[[nodiscard]] std::vector<std::complex<float>>
insert_pilots(const std::vector<std::complex<float>>& payload, const PilotLayout& layout);

/// Removes the pilot blocks again (RX direction).
[[nodiscard]] std::vector<std::complex<float>>
remove_pilots(const std::vector<std::complex<float>>& with_pilots, const PilotLayout& layout);

/// Start indices (within the pilot-bearing payload) of each pilot block.
[[nodiscard]] std::vector<int> pilot_block_offsets(const PilotLayout& layout);

} // namespace amp::dvbs2
