#pragma once
// Gray-mapped QPSK modem. Mapping (DVB-S2 convention): the symbol carries
// bits (b0, b1) with I = (1 - 2 b0) / sqrt(2), Q = (1 - 2 b1) / sqrt(2), so
// each component independently carries one bit and the max-likelihood LLR is
// linear in the received component: LLR(b) = 2 sqrt(2) y / sigma^2 with
// positive LLR meaning bit 0.

#include <complex>
#include <vector>

namespace amp::dvbs2 {

class QpskModem {
public:
    /// Maps 2N bits to N unit-energy symbols.
    [[nodiscard]] static std::vector<std::complex<float>>
    modulate(const std::vector<std::uint8_t>& bits);

    /// Computes per-bit LLRs (2 per symbol) for AWGN with noise variance
    /// sigma2 (total complex noise power). Positive LLR = bit 0.
    [[nodiscard]] static std::vector<float>
    demodulate(const std::vector<std::complex<float>>& symbols, float sigma2);

    /// Hard decisions straight from symbol signs (2 bits per symbol).
    [[nodiscard]] static std::vector<std::uint8_t>
    hard_decide(const std::vector<std::complex<float>>& symbols);
};

} // namespace amp::dvbs2
