#pragma once
// Generic constellation modem covering the DVB-S2 modulations beyond the
// paper's QPSK configuration: 8PSK and 16APSK (32APSK omitted), with
// max-log LLR demodulation over the constellation points.
//
// QpskModem (qpsk.hpp) remains the fast path the 23-task chain uses (its
// LLRs are exact and linear); this modem generalizes the library to the
// other MODCODs of the standard.

#include <complex>
#include <cstdint>
#include <vector>

namespace amp::dvbs2 {

enum class Modulation : std::uint8_t { qpsk, psk8, apsk16 };

[[nodiscard]] constexpr int bits_per_symbol(Modulation modulation) noexcept
{
    switch (modulation) {
    case Modulation::qpsk: return 2;
    case Modulation::psk8: return 3;
    case Modulation::apsk16: return 4;
    }
    return 0;
}

[[nodiscard]] constexpr const char* to_string(Modulation modulation) noexcept
{
    switch (modulation) {
    case Modulation::qpsk: return "QPSK";
    case Modulation::psk8: return "8PSK";
    case Modulation::apsk16: return "16APSK";
    }
    return "?";
}

/// Unit-average-energy constellation with max-log soft demodulation.
class ConstellationModem {
public:
    /// `apsk_gamma` is the 16APSK outer/inner ring ratio (DVB-S2 uses
    /// code-rate-dependent values; 3.15 corresponds to rate 8/9).
    explicit ConstellationModem(Modulation modulation, float apsk_gamma = 3.15F);

    [[nodiscard]] Modulation modulation() const noexcept { return modulation_; }
    [[nodiscard]] int bits() const noexcept { return bits_per_symbol(modulation_); }
    [[nodiscard]] const std::vector<std::complex<float>>& points() const noexcept
    {
        return points_;
    }

    /// Maps bits (count divisible by bits()) to symbols.
    [[nodiscard]] std::vector<std::complex<float>>
    modulate(const std::vector<std::uint8_t>& bits) const;

    /// Max-log LLRs, bits() per symbol, positive = bit 0, for complex AWGN
    /// with total noise power sigma2.
    [[nodiscard]] std::vector<float>
    demodulate(const std::vector<std::complex<float>>& symbols, float sigma2) const;

    /// Nearest-point hard decisions.
    [[nodiscard]] std::vector<std::uint8_t>
    hard_decide(const std::vector<std::complex<float>>& symbols) const;

private:
    Modulation modulation_;
    std::vector<std::complex<float>> points_; ///< points_[label] = symbol
};

} // namespace amp::dvbs2
