#include "dvbs2/common/crc.hpp"

#include <stdexcept>

namespace amp::dvbs2 {

std::uint8_t Crc8::compute(const std::vector<std::uint8_t>& bits, std::size_t offset,
                           std::size_t count) const
{
    if (offset + count > bits.size())
        throw std::out_of_range{"Crc8::compute: range exceeds input"};
    std::uint8_t crc = 0;
    for (std::size_t i = offset; i < offset + count; ++i) {
        const auto top = static_cast<std::uint8_t>((crc >> 7) ^ (bits[i] & 1u));
        crc = static_cast<std::uint8_t>(crc << 1);
        if (top)
            crc ^= poly_;
    }
    return crc;
}

void Crc8::append(std::vector<std::uint8_t>& bits) const
{
    const std::uint8_t crc = compute(bits);
    for (int b = 7; b >= 0; --b)
        bits.push_back(static_cast<std::uint8_t>((crc >> b) & 1u));
}

bool Crc8::check(const std::vector<std::uint8_t>& bits) const
{
    if (bits.size() < 8)
        return false;
    const std::uint8_t expected = compute(bits, 0, bits.size() - 8);
    std::uint8_t found = 0;
    for (std::size_t i = bits.size() - 8; i < bits.size(); ++i)
        found = static_cast<std::uint8_t>((found << 1) | (bits[i] & 1u));
    return expected == found;
}

} // namespace amp::dvbs2
