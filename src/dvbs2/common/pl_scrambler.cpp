#include "dvbs2/common/pl_scrambler.hpp"

#include <mutex>

namespace amp::dvbs2 {

namespace {

constexpr std::size_t kMaxSequence = 1 << 15; // enough for one PLFRAME payload

/// Generates the R_n sequence once; frames reuse the same prefix (the
/// standard restarts the sequence at every PLFRAME).
const std::vector<std::uint8_t>& cached_sequence()
{
    static std::vector<std::uint8_t> seq;
    static std::once_flag once;
    std::call_once(once, [] {
        // 18-bit m-sequence registers; x: 1 + x^7 + x^18, y: 1+y^5+y^7+y^10+y^18.
        std::uint32_t x = 0x00001; // standard init: x starts at 000...01
        std::uint32_t y = 0x3ffff; // y starts at all ones
        seq.resize(kMaxSequence);
        for (std::size_t n = 0; n < kMaxSequence; ++n) {
            const std::uint32_t zx = x & 1u;
            const std::uint32_t zy = y & 1u;
            // b = x(i+131072) realized via a second tap combination in real
            // hardware; here the Gold construction zx ^ zy plus zx gives the
            // 2-bit R_n as in the standard's integer-rotation form.
            seq[n] = static_cast<std::uint8_t>(((zx ^ zy) << 1) | zx);
            x = (x >> 1) | ((zx ^ (x >> 7 & 1u)) << 17);
            y = (y >> 1) | ((zy ^ (y >> 5 & 1u) ^ (y >> 7 & 1u) ^ (y >> 10 & 1u)) << 17);
        }
    });
    return seq;
}

[[nodiscard]] std::complex<float> rotate(std::complex<float> value, std::uint8_t quarter_turns)
{
    switch (quarter_turns & 3u) {
    case 0: return value;
    case 1: return {-value.imag(), value.real()};  // * i
    case 2: return {-value.real(), -value.imag()}; // * -1
    default: return {value.imag(), -value.real()}; // * -i
    }
}

} // namespace

std::vector<std::uint8_t> PlScrambler::sequence(std::size_t count)
{
    const auto& seq = cached_sequence();
    return {seq.begin(), seq.begin() + static_cast<std::ptrdiff_t>(std::min(count, seq.size()))};
}

void PlScrambler::scramble(std::vector<std::complex<float>>& symbols)
{
    const auto& seq = cached_sequence();
    for (std::size_t n = 0; n < symbols.size(); ++n)
        symbols[n] = rotate(symbols[n], seq[n % seq.size()]);
}

void PlScrambler::descramble(std::vector<std::complex<float>>& symbols)
{
    const auto& seq = cached_sequence();
    for (std::size_t n = 0; n < symbols.size(); ++n)
        symbols[n] = rotate(symbols[n], static_cast<std::uint8_t>(4u - (seq[n % seq.size()] & 3u)));
}

} // namespace amp::dvbs2
