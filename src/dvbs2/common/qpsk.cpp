#include "dvbs2/common/qpsk.hpp"

#include <cmath>
#include <stdexcept>

namespace amp::dvbs2 {

namespace {
constexpr float kInvSqrt2 = 0.70710678118654752F;
} // namespace

std::vector<std::complex<float>> QpskModem::modulate(const std::vector<std::uint8_t>& bits)
{
    if (bits.size() % 2 != 0)
        throw std::invalid_argument{"QpskModem::modulate: bit count must be even"};
    std::vector<std::complex<float>> symbols(bits.size() / 2);
    for (std::size_t s = 0; s < symbols.size(); ++s) {
        const float i = bits[2 * s] ? -kInvSqrt2 : kInvSqrt2;
        const float q = bits[2 * s + 1] ? -kInvSqrt2 : kInvSqrt2;
        symbols[s] = {i, q};
    }
    return symbols;
}

std::vector<float> QpskModem::demodulate(const std::vector<std::complex<float>>& symbols,
                                         float sigma2)
{
    if (sigma2 <= 0.0F)
        throw std::invalid_argument{"QpskModem::demodulate: sigma2 must be positive"};
    const float gain = 2.0F * std::sqrt(2.0F) / sigma2;
    std::vector<float> llr(symbols.size() * 2);
    for (std::size_t s = 0; s < symbols.size(); ++s) {
        llr[2 * s] = gain * symbols[s].real();
        llr[2 * s + 1] = gain * symbols[s].imag();
    }
    return llr;
}

std::vector<std::uint8_t> QpskModem::hard_decide(const std::vector<std::complex<float>>& symbols)
{
    std::vector<std::uint8_t> bits(symbols.size() * 2);
    for (std::size_t s = 0; s < symbols.size(); ++s) {
        bits[2 * s] = symbols[s].real() < 0.0F ? 1 : 0;
        bits[2 * s + 1] = symbols[s].imag() < 0.0F ? 1 : 0;
    }
    return bits;
}

} // namespace amp::dvbs2
