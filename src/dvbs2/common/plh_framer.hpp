#pragma once
// Physical-layer header framing (DVB-S2 §5.5.2): every PLFRAME starts with a
// 90-symbol PLHEADER = SOF (26 symbols, fixed pattern 0x18D2E82) + PLSC
// (64 symbols carrying the 7-bit PLS field through a (64,7) biorthogonal
// Reed-Muller construction). Header symbols are pi/2-BPSK.

#include <complex>
#include <cstdint>
#include <vector>

namespace amp::dvbs2 {

class PlhFramer {
public:
    static constexpr int kSofBits = 26;
    static constexpr int kPlscBits = 64;
    static constexpr int kHeaderSymbols = kSofBits + kPlscBits;
    static constexpr std::uint32_t kSofPattern = 0x18D2E82; // 26 bits, MSB first

    /// The 26 SOF symbols (pi/2-BPSK of the fixed pattern).
    [[nodiscard]] static const std::vector<std::complex<float>>& sof_symbols();

    /// Encodes the 7-bit PLS field (MODCOD << 2 | TYPE) into 64 bits.
    [[nodiscard]] static std::vector<std::uint8_t> encode_pls(std::uint8_t pls);

    /// Maximum-correlation decoding of a received 64-symbol PLSC field.
    [[nodiscard]] static std::uint8_t decode_pls(const std::vector<std::complex<float>>& symbols);

    /// Builds the 90-symbol header for the given PLS field.
    [[nodiscard]] static std::vector<std::complex<float>> build_header(std::uint8_t pls);

    /// Prepends the header to a payload (TX, "Framer PLH - insert").
    [[nodiscard]] static std::vector<std::complex<float>>
    insert(std::uint8_t pls, const std::vector<std::complex<float>>& payload);

    /// Strips the 90 header symbols (RX, "Framer PLH - remove").
    [[nodiscard]] static std::vector<std::complex<float>>
    remove(const std::vector<std::complex<float>>& plframe);

    /// pi/2-BPSK mapping used for all header bits: bit b of index j maps to
    /// exp(i pi/4) * (1 - 2b) * i^j (a spinning BPSK constellation).
    [[nodiscard]] static std::complex<float> pi2_bpsk(std::uint8_t bit, int index);
};

} // namespace amp::dvbs2
