#pragma once
// Wall-clock timing harness for the strategy execution-time experiments
// (paper Figs. 3-4).

#include <chrono>
#include <utility>

namespace amp::sim {

/// Runs `fn` once and returns the elapsed wall-clock time in microseconds.
template <typename Fn>
[[nodiscard]] double time_once_us(Fn&& fn)
{
    const auto start = std::chrono::steady_clock::now();
    std::forward<Fn>(fn)();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(stop - start).count();
}

} // namespace amp::sim
