#include "sim/stats.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace amp::sim {

double mean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0)
        / static_cast<double>(values.size());
}

double median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1)
        return values[mid];
    return (values[mid - 1] + values[mid]) / 2.0;
}

SlowdownSummary summarize_slowdowns(std::vector<double> ratios, double tolerance)
{
    SlowdownSummary summary;
    if (ratios.empty())
        return summary;
    const auto optimal = std::count_if(ratios.begin(), ratios.end(),
                                       [&](double r) { return r <= 1.0 + tolerance; });
    summary.pct_optimal = static_cast<double>(optimal) / static_cast<double>(ratios.size());
    summary.average = mean(ratios);
    summary.maximum = *std::max_element(ratios.begin(), ratios.end());
    summary.median = median(std::move(ratios));
    return summary;
}

std::vector<double> empirical_cdf(std::vector<double> samples,
                                  const std::vector<double>& thresholds)
{
    std::sort(samples.begin(), samples.end());
    std::vector<double> cdf;
    cdf.reserve(thresholds.size());
    for (const double x : thresholds) {
        const auto it = std::upper_bound(samples.begin(), samples.end(), x);
        cdf.push_back(samples.empty()
                          ? 0.0
                          : static_cast<double>(it - samples.begin())
                              / static_cast<double>(samples.size()));
    }
    return cdf;
}

std::vector<double> linspace(double lo, double hi, int count)
{
    if (count < 2)
        throw std::invalid_argument{"linspace: count must be >= 2"};
    std::vector<double> points(static_cast<std::size_t>(count));
    const double step = (hi - lo) / static_cast<double>(count - 1);
    for (int i = 0; i < count; ++i)
        points[static_cast<std::size_t>(i)] = lo + step * i;
    return points;
}

void UsageHeatmap::add(const core::Resources& usage_a, const core::Resources& usage_b)
{
    ++cells_[{usage_a.big - usage_b.big, usage_a.little - usage_b.little}];
    ++total_;
}

double UsageHeatmap::fraction(int delta_big, int delta_little) const
{
    if (total_ == 0)
        return 0.0;
    const auto it = cells_.find({delta_big, delta_little});
    return it == cells_.end() ? 0.0 : static_cast<double>(it->second) / total_;
}

double UsageHeatmap::fraction_at_most_total(int extra) const
{
    if (total_ == 0)
        return 0.0;
    int count = 0;
    for (const auto& [delta, occurrences] : cells_)
        if (delta.first + delta.second <= extra)
            count += occurrences;
    return static_cast<double>(count) / total_;
}

} // namespace amp::sim
