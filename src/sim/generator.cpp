#include "sim/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace amp::sim {

core::TaskChain generate_chain(const GeneratorConfig& config, Rng& rng)
{
    if (config.num_tasks < 1)
        throw std::invalid_argument{"generate_chain: num_tasks must be >= 1"};
    if (config.weight_min < 1 || config.weight_max < config.weight_min)
        throw std::invalid_argument{"generate_chain: invalid weight interval"};
    if (config.slowdown_min < 1.0 || config.slowdown_max < config.slowdown_min)
        throw std::invalid_argument{"generate_chain: invalid slowdown interval"};
    if (config.stateless_ratio < 0.0 || config.stateless_ratio > 1.0)
        throw std::invalid_argument{"generate_chain: stateless_ratio must be in [0, 1]"};

    const int n = config.num_tasks;
    std::vector<core::TaskDesc> tasks(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto& task = tasks[static_cast<std::size_t>(i)];
        task.name = "tau" + std::to_string(i + 1);
        switch (config.distribution) {
        case WeightDistribution::uniform:
            task.w_big =
                static_cast<double>(rng.uniform_int(config.weight_min, config.weight_max));
            break;
        case WeightDistribution::bimodal: {
            const double base =
                static_cast<double>(rng.uniform_int(config.weight_min, config.weight_max));
            task.w_big = rng.bernoulli(config.bimodal_heavy_fraction) ? base * 10.0 : base;
            break;
        }
        case WeightDistribution::lognormal: {
            // Median at the interval midpoint, sigma ~ one octave, clamped
            // below at weight_min (weights must stay positive).
            const double median = (config.weight_min + config.weight_max) / 2.0;
            task.w_big = std::max(static_cast<double>(config.weight_min),
                                  std::ceil(median * std::exp(0.7 * rng.normal())));
            break;
        }
        }
        const double slowdown = rng.uniform_real(config.slowdown_min, config.slowdown_max);
        task.w_little = std::ceil(task.w_big * slowdown);
    }

    // Pick exactly round(SR * n) replicable positions via a partial
    // Fisher-Yates shuffle for an unbiased subset.
    const int replicable = static_cast<int>(std::lround(config.stateless_ratio * n));
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    for (int i = 0; i < replicable; ++i) {
        const auto j = static_cast<std::size_t>(rng.uniform_int(i, n - 1));
        std::swap(order[static_cast<std::size_t>(i)], order[j]);
        tasks[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])].replicable = true;
    }

    return core::TaskChain{std::move(tasks)};
}

} // namespace amp::sim
