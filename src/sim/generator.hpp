#pragma once
// Synthetic task-chain generator reproducing the paper's simulation setup
// (§VI-A1): big-core weights uniform in the integer interval [1, 100], a
// little-core slowdown uniform in [1, 5] applied per task and rounded with
// the ceiling function, and a fixed fraction of replicable tasks (the
// stateless ratio, SR) at uniformly random positions.

#include "common/rng.hpp"
#include "core/chain.hpp"

namespace amp::sim {

/// Big-core weight distribution. `uniform` is the paper's; the others probe
/// robustness to workload shape (see the ext_workload_robustness bench):
/// `bimodal` mixes light tasks with a few 10x heavy ones (decoder-like
/// chains), `lognormal` produces a heavy right tail.
enum class WeightDistribution { uniform, bimodal, lognormal };

struct GeneratorConfig {
    int num_tasks = 20;
    int weight_min = 1;             ///< inclusive lower bound of w^B
    int weight_max = 100;           ///< inclusive upper bound of w^B
    double slowdown_min = 1.0;      ///< little-core slowdown lower bound
    double slowdown_max = 5.0;      ///< little-core slowdown upper bound
    double stateless_ratio = 0.5;   ///< fraction of replicable tasks (exact count)
    WeightDistribution distribution = WeightDistribution::uniform;
    double bimodal_heavy_fraction = 0.15; ///< share of 10x-heavy tasks (bimodal)
};

/// Generates one chain. Exactly round(SR * n) tasks are replicable, at
/// uniformly random positions (Fisher-Yates selection).
[[nodiscard]] core::TaskChain generate_chain(const GeneratorConfig& config, Rng& rng);

} // namespace amp::sim
