#pragma once
// Statistics used by the paper's simulation campaign: slowdown-ratio
// summaries (Table I), cumulative distributions (Fig. 1), and core-usage
// difference heatmaps (Fig. 2).

#include "core/chain.hpp"

#include <map>
#include <utility>
#include <vector>

namespace amp::sim {

/// The 4-tuple the paper reports per strategy and scenario:
/// (% optimal periods, average, median, maximum slowdown ratio).
struct SlowdownSummary {
    double pct_optimal = 0.0; ///< fraction in [0, 1]
    double average = 0.0;
    double median = 0.0;
    double maximum = 0.0;
};

/// Summarizes slowdown ratios (P_strategy / P_optimal, each >= 1).
/// A ratio counts as optimal when within `tolerance` of 1.
[[nodiscard]] SlowdownSummary summarize_slowdowns(std::vector<double> ratios,
                                                  double tolerance = 1e-6);

/// Average of a sample.
[[nodiscard]] double mean(const std::vector<double>& values);

/// Median of a sample (average of the two middle elements for even sizes).
[[nodiscard]] double median(std::vector<double> values);

/// Empirical CDF evaluated at the given thresholds: for each x, the
/// fraction of samples <= x. Used to print Fig. 1's cumulative curves.
[[nodiscard]] std::vector<double> empirical_cdf(std::vector<double> samples,
                                                const std::vector<double>& thresholds);

/// Evenly spaced thresholds in [lo, hi] (inclusive), count >= 2.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, int count);

/// Core-usage difference heatmap (Fig. 2): counts occurrences of
/// (extra_big, extra_little) = usage_a - usage_b per solved instance.
class UsageHeatmap {
public:
    void add(const core::Resources& usage_a, const core::Resources& usage_b);

    /// Fraction of instances with the exact (delta_big, delta_little) cell.
    [[nodiscard]] double fraction(int delta_big, int delta_little) const;

    /// Fraction of instances using at most `extra` cores in total more
    /// (i.e. delta_big + delta_little <= extra).
    [[nodiscard]] double fraction_at_most_total(int extra) const;

    [[nodiscard]] int total() const noexcept { return total_; }
    [[nodiscard]] const std::map<std::pair<int, int>, int>& cells() const noexcept
    {
        return cells_;
    }

private:
    std::map<std::pair<int, int>, int> cells_;
    int total_ = 0;
};

} // namespace amp::sim
