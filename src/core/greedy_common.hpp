#pragma once
// Machinery shared by the greedy strategies (paper Algos 1-3):
//   * support methods MaxPacking / RequiredCores (Algo 3),
//   * ComputeStage (Algo 2),
//   * the Schedule binary search on the target period (Algo 1).

#include "core/chain.hpp"
#include "core/solution.hpp"

#include <functional>

namespace amp::core {

/// MaxPacking (Algo 3): the largest e in [s, n] such that the stage [s, e]
/// with c cores of type v weighs at most P -- but at least s, so a stage
/// always receives one task even when that task alone exceeds the target.
[[nodiscard]] int max_packing(const TaskChain& chain, int s, int c, CoreType v, double P);

/// RequiredCores (Algo 3): ceil(w([s, e], 1, v) / P), with a small relative
/// tolerance so that exactly-divisible workloads do not round up spuriously.
[[nodiscard]] int required_cores(const TaskChain& chain, int s, int e, CoreType v, double P);

/// Result of ComputeStage: last task of the stage and cores used by it.
struct StageCut {
    int end = 0;
    int used = 0;
};

/// ComputeStage (Algo 2): greedily decides where the stage starting at s
/// ends and how many of the c available cores of type v it needs to respect
/// the target period P. Replicable stages are extended as far as possible,
/// then reduced if cores run short, and shrunk by one core when the spilled
/// tasks plus the next (sequential) task fit on a single core.
[[nodiscard]] StageCut compute_stage(const TaskChain& chain, int s, int c, CoreType v, double P);

/// Checks a freshly built stage against the remaining budget and target
/// period (the IsValid calls on single stages in Algos 4-5).
[[nodiscard]] bool stage_fits(const TaskChain& chain, const Stage& stage,
                              const Resources& available, double P);

/// A ComputeSolution implementation: builds a [partial] solution for tasks
/// [s, n] with the available resources and target period; empty on failure.
using ComputeSolutionFn =
    std::function<Solution(const TaskChain&, int s, Resources available, double P)>;

/// Optional telemetry from the binary search.
struct ScheduleStats {
    int iterations = 0;     ///< binary-search iterations executed
    double period_min = 0;  ///< final lower bound
    double period_max = 0;  ///< final upper bound
};

/// Schedule (Algo 1): binary search on the target period between the
/// theoretical lower bound and lower bound + max task weight, with
/// epsilon = 1 / (b + l). If the paper's upper bound turns out infeasible
/// for the given ComputeSolution (possible for adversarial weight profiles
/// where tasks run faster on little cores), a second search up to the
/// trivially feasible single-stage period is performed.
[[nodiscard]] Solution schedule_with_binary_search(const TaskChain& chain, Resources resources,
                                                   const ComputeSolutionFn& compute,
                                                   ScheduleStats* stats = nullptr);

/// Variant with explicit bounds; used by OTAC's homogeneous search.
[[nodiscard]] Solution binary_search_period(const TaskChain& chain, Resources resources,
                                            double period_min, double period_max, double epsilon,
                                            double fallback_period_cap,
                                            const ComputeSolutionFn& compute,
                                            ScheduleStats* stats = nullptr);

} // namespace amp::core
