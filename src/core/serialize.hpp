#pragma once
// Text serialization of task chains and solutions, so schedules can be
// computed from externally profiled applications (the workflow of the
// paper's Table II: profile once, schedule offline, deploy).
//
// Chain format: CSV with a header, one task per line:
//     name,w_big,w_little,replicable
//     Radio - receive,52.3,248.3,0
// Blank lines and lines starting with '#' are ignored.
//
// Solution format: the paper's decomposition notation, e.g.
//     (5,1B),(1,2B),(4,1L)

#include "core/chain.hpp"
#include "core/solution.hpp"

#include <iosfwd>
#include <string>

namespace amp::core {

/// Parses a chain from CSV text. Throws std::invalid_argument with a
/// line-numbered message on malformed input.
[[nodiscard]] TaskChain parse_chain_csv(std::istream& input);
[[nodiscard]] TaskChain parse_chain_csv(const std::string& text);

/// Writes a chain in the same CSV format (round-trips with the parser).
void write_chain_csv(std::ostream& output, const TaskChain& chain);
[[nodiscard]] std::string chain_to_csv(const TaskChain& chain);

/// Parses the decomposition notation back into a Solution (task indices are
/// reconstructed from the per-stage counts).
[[nodiscard]] Solution parse_decomposition(const std::string& text);

} // namespace amp::core
