#include "core/scheduler.hpp"

#include <array>
#include <bit>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace amp::core {

StrategyParseError::StrategyParseError(std::string name)
    : std::invalid_argument{"unknown strategy: " + name
                            + " (expected one of: herad, 2catac, fertac, otac-b, otac-l)"}
    , name_{std::move(name)}
{
}

std::optional<Strategy> try_parse_strategy(std::string_view name) noexcept
{
    // Normalize into a fixed buffer (lowercase, spaces dropped) so the
    // noexcept promise holds: every accepted spelling fits, anything longer
    // is unknown anyway.
    std::array<char, 16> buffer{};
    std::size_t length = 0;
    for (const char c : name) {
        if (c == ' ')
            continue;
        if (length == buffer.size())
            return std::nullopt;
        buffer[length++] = (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
    }
    const std::string_view key{buffer.data(), length};

    if (key == "herad")
        return Strategy::herad;
    if (key == "2catac" || key == "twocatac")
        return Strategy::twocatac;
    if (key == "fertac")
        return Strategy::fertac;
    if (key == "otac-b" || key == "otac_big" || key == "otac(b)")
        return Strategy::otac_big;
    if (key == "otac-l" || key == "otac_little" || key == "otac(l)")
        return Strategy::otac_little;
    return std::nullopt;
}

Strategy parse_strategy(const std::string& name)
{
    if (const auto strategy = try_parse_strategy(name))
        return *strategy;
    throw StrategyParseError{name};
}

std::uint64_t ScheduleOptions::energy_fingerprint() const noexcept
{
    if (objective == Objective::min_period)
        return 0;
    constexpr auto splitmix64 = [](std::uint64_t x) noexcept {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    };
    std::uint64_t hash = splitmix64(static_cast<std::uint64_t>(objective));
    hash = splitmix64(hash ^ std::bit_cast<std::uint64_t>(target_period));
    hash = splitmix64(hash ^ std::bit_cast<std::uint64_t>(power.big_watts));
    hash = splitmix64(hash ^ std::bit_cast<std::uint64_t>(power.little_watts));
    hash = splitmix64(hash ^ std::bit_cast<std::uint64_t>(power.idle_watts));
    return hash != 0 ? hash : 1; // 0 is reserved for "no energy identity"
}

namespace {

/// Rejects requests the strategy implementations would throw on (or could
/// only answer with a meaningless empty solution).
ScheduleError validate(const ScheduleRequest& request)
{
    if (request.options.objective == Objective::min_energy_under_period
        && !(request.options.target_period > 0.0))
        return ScheduleError::invalid_request;
    if (request.chain.empty())
        return ScheduleError::invalid_request;
    if (request.resources.big < 0 || request.resources.little < 0)
        return ScheduleError::invalid_request;
    if (request.strategy == Strategy::otac_big && request.resources.big < 1)
        return ScheduleError::invalid_request;
    if (request.strategy == Strategy::otac_little && request.resources.little < 1)
        return ScheduleError::invalid_request;
    if (request.resources.total() < 1)
        return ScheduleError::invalid_request;
    return ScheduleError::ok;
}

void dispatch(const ScheduleRequest& request, ScheduleResult& result)
{
    const TaskChain& chain = request.chain;
    const Resources resources = request.resources;
    if (request.options.objective == Objective::min_energy_under_period) {
        // Energy objective: dispatch to the energy-aware variants. Warm
        // hints are intentionally ignored -- the retained HeRAD frontier is
        // a period DP and cannot answer an energy query; callers fall back
        // to cold solves (and the solution cache) transparently.
        const double target = request.options.target_period;
        const PowerModel& power = request.options.power;
        switch (request.strategy) {
        case Strategy::herad:
            result.solution = detail::energy_herad(chain, resources, target, power,
                                                   request.options.merge_stages);
            return;
        case Strategy::twocatac:
            result.solution = detail::energy_twocatac(chain, resources, target, power);
            return;
        case Strategy::fertac:
            result.solution = detail::energy_fertac(chain, resources, target, power);
            return;
        case Strategy::otac_big:
            result.solution =
                detail::energy_otac(chain, resources.big, CoreType::big, target);
            return;
        case Strategy::otac_little:
            result.solution =
                detail::energy_otac(chain, resources.little, CoreType::little, target);
            return;
        }
        throw std::logic_error{"unreachable"};
    }
    switch (request.strategy) {
    case Strategy::herad: {
        const HeradOptions options = request.options.herad();
        if (request.warm.engaged()) {
            // Warm path: reuse the hinted frontier when it matches this
            // chain/options, otherwise run cold but retain a fresh frontier
            // for the next re-solve. Either way the solution is identical
            // to detail::herad's.
            const auto& base = request.warm.frontier;
            WarmSolveResult warm = (base != nullptr && base->matches(chain, options))
                                       ? detail::herad_warm(chain, resources, base, options)
                                       : detail::herad_with_frontier(chain, resources, options);
            result.solution = std::move(warm.solution);
            result.frontier = std::move(warm.frontier);
            result.warm_start = warm.incremental;
            return;
        }
        result.solution = detail::herad(chain, resources, options);
        return;
    }
    case Strategy::twocatac:
        result.solution = detail::twocatac(chain, resources, &result.stats);
        return;
    case Strategy::fertac:
        result.solution =
            detail::fertac(chain, resources, &result.stats, request.options.preference);
        return;
    case Strategy::otac_big:
        result.solution = detail::otac(chain, resources.big, CoreType::big, &result.stats);
        return;
    case Strategy::otac_little:
        result.solution = detail::otac(chain, resources.little, CoreType::little, &result.stats);
        return;
    }
    throw std::logic_error{"unreachable"};
}

} // namespace

ScheduleResult schedule(const ScheduleRequest& request)
{
    ScheduleResult result;
    result.error = validate(request);
    if (result.error != ScheduleError::ok)
        return result;

    const auto t0 = std::chrono::steady_clock::now();
    try {
        dispatch(request, result);
    } catch (const std::invalid_argument&) {
        result.error = ScheduleError::invalid_request;
    } catch (...) {
        result.error = ScheduleError::infeasible;
    }
    result.solve_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now()
                                                             - t0)
            .count());
    if (result.error != ScheduleError::ok) {
        result.frontier.reset();
        result.warm_start = false;
        return result;
    }

    // The old API signalled infeasibility with an empty solution; surface
    // that (and any budget overrun or malformed stage list) explicitly.
    if (result.solution.empty() || !result.solution.is_well_formed(request.chain)) {
        result.solution.clear();
        result.frontier.reset();
        result.warm_start = false;
        result.error = ScheduleError::infeasible;
        return result;
    }
    const Resources used = result.solution.used();
    if (used.big > request.resources.big || used.little > request.resources.little) {
        result.solution.clear();
        result.frontier.reset();
        result.warm_start = false;
        result.error = ScheduleError::infeasible;
    }
    return result;
}

Solution schedule(Strategy strategy, const TaskChain& chain, Resources resources)
{
    return schedule(ScheduleRequest{chain, resources, strategy}).solution;
}

} // namespace amp::core
