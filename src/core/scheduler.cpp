#include "core/scheduler.hpp"

#include <stdexcept>

namespace amp::core {

Strategy parse_strategy(const std::string& name)
{
    if (name == "herad" || name == "HeRAD")
        return Strategy::herad;
    if (name == "2catac" || name == "twocatac" || name == "2CATAC")
        return Strategy::twocatac;
    if (name == "fertac" || name == "FERTAC")
        return Strategy::fertac;
    if (name == "otac-b" || name == "otac_big" || name == "OTAC(B)")
        return Strategy::otac_big;
    if (name == "otac-l" || name == "otac_little" || name == "OTAC(L)")
        return Strategy::otac_little;
    throw std::invalid_argument{"unknown strategy: " + name};
}

Solution schedule(Strategy strategy, const TaskChain& chain, Resources resources)
{
    switch (strategy) {
    case Strategy::herad: return herad(chain, resources);
    case Strategy::twocatac: return twocatac(chain, resources);
    case Strategy::fertac: return fertac(chain, resources);
    case Strategy::otac_big: return otac(chain, resources.big, CoreType::big);
    case Strategy::otac_little: return otac(chain, resources.little, CoreType::little);
    }
    throw std::logic_error{"unreachable"};
}

} // namespace amp::core
