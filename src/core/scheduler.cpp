#include "core/scheduler.hpp"

#include <chrono>
#include <stdexcept>

namespace amp::core {

Strategy parse_strategy(const std::string& name)
{
    if (name == "herad" || name == "HeRAD")
        return Strategy::herad;
    if (name == "2catac" || name == "twocatac" || name == "2CATAC")
        return Strategy::twocatac;
    if (name == "fertac" || name == "FERTAC")
        return Strategy::fertac;
    if (name == "otac-b" || name == "otac_big" || name == "OTAC(B)")
        return Strategy::otac_big;
    if (name == "otac-l" || name == "otac_little" || name == "OTAC(L)")
        return Strategy::otac_little;
    throw std::invalid_argument{"unknown strategy: " + name};
}

namespace {

/// Rejects requests the strategy implementations would throw on (or could
/// only answer with a meaningless empty solution).
ScheduleError validate(const ScheduleRequest& request)
{
    if (request.chain.empty())
        return ScheduleError::invalid_request;
    if (request.resources.big < 0 || request.resources.little < 0)
        return ScheduleError::invalid_request;
    if (request.strategy == Strategy::otac_big && request.resources.big < 1)
        return ScheduleError::invalid_request;
    if (request.strategy == Strategy::otac_little && request.resources.little < 1)
        return ScheduleError::invalid_request;
    if (request.resources.total() < 1)
        return ScheduleError::invalid_request;
    return ScheduleError::ok;
}

Solution dispatch(const ScheduleRequest& request, ScheduleStats* stats)
{
    const TaskChain& chain = request.chain;
    const Resources resources = request.resources;
    switch (request.strategy) {
    case Strategy::herad: return detail::herad(chain, resources, request.options.herad());
    case Strategy::twocatac: return detail::twocatac(chain, resources, stats);
    case Strategy::fertac:
        return detail::fertac(chain, resources, stats, request.options.preference);
    case Strategy::otac_big:
        return detail::otac(chain, resources.big, CoreType::big, stats);
    case Strategy::otac_little:
        return detail::otac(chain, resources.little, CoreType::little, stats);
    }
    throw std::logic_error{"unreachable"};
}

} // namespace

ScheduleResult schedule(const ScheduleRequest& request)
{
    ScheduleResult result;
    result.error = validate(request);
    if (result.error != ScheduleError::ok)
        return result;

    const auto t0 = std::chrono::steady_clock::now();
    try {
        result.solution = dispatch(request, &result.stats);
    } catch (const std::invalid_argument&) {
        result.error = ScheduleError::invalid_request;
    } catch (...) {
        result.error = ScheduleError::infeasible;
    }
    result.solve_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now()
                                                             - t0)
            .count());
    if (result.error != ScheduleError::ok)
        return result;

    // The old API signalled infeasibility with an empty solution; surface
    // that (and any budget overrun or malformed stage list) explicitly.
    if (result.solution.empty() || !result.solution.is_well_formed(request.chain)) {
        result.solution.clear();
        result.error = ScheduleError::infeasible;
        return result;
    }
    const Resources used = result.solution.used();
    if (used.big > request.resources.big || used.little > request.resources.little) {
        result.solution.clear();
        result.error = ScheduleError::infeasible;
    }
    return result;
}

Solution schedule(Strategy strategy, const TaskChain& chain, Resources resources)
{
    return schedule(ScheduleRequest{chain, resources, strategy}).solution;
}

} // namespace amp::core
