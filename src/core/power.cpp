#include "core/power.hpp"

namespace amp::core {

double solution_power(const Solution& solution, const PowerModel& model)
{
    return solution.used(CoreType::big) * model.big_watts
        + solution.used(CoreType::little) * model.little_watts;
}

double platform_power(const Solution& solution, const Resources& machine,
                      const PowerModel& model)
{
    const int idle = machine.total() - solution.used().total();
    return solution_power(solution, model) + (idle > 0 ? idle * model.idle_watts : 0.0);
}

double energy_per_item(const TaskChain& chain, const Solution& solution,
                       const PowerModel& model)
{
    return solution_power(solution, model) * solution.period(chain);
}

double pipeline_latency(const TaskChain& chain, const Solution& solution)
{
    double latency = 0.0;
    for (const Stage& stage : solution.stages())
        latency += chain.interval_sum(stage.first, stage.last, stage.type);
    return latency;
}

} // namespace amp::core
