#include "core/power.hpp"

#include <algorithm>
#include <stdexcept>

namespace amp::core {

namespace {

void check_fits(const Solution& solution, const Resources& machine, const char* who)
{
    const Resources used = solution.used();
    if (used.big > machine.big || used.little > machine.little)
        throw std::invalid_argument{std::string{who}
                                    + ": solution uses more cores than the machine has"};
}

} // namespace

double solution_power(const Solution& solution, const PowerModel& model)
{
    return solution.used(CoreType::big) * model.big_watts
        + solution.used(CoreType::little) * model.little_watts;
}

double platform_power(const Solution& solution, const Resources& machine,
                      const PowerModel& model)
{
    check_fits(solution, machine, "platform_power");
    const int idle = machine.total() - solution.used().total();
    return solution_power(solution, model) + idle * model.idle_watts;
}

double energy_per_item(const TaskChain& chain, const Solution& solution,
                       const PowerModel& model)
{
    double energy = 0.0;
    for (const Stage& stage : solution.stages())
        energy += model.watts(stage.type) * chain.energy_sum(stage.first, stage.last, stage.type);
    return energy;
}

double platform_energy_per_item(const TaskChain& chain, const Solution& solution,
                                const Resources& machine, const PowerModel& model)
{
    check_fits(solution, machine, "platform_energy_per_item");
    if (solution.empty())
        return 0.0;
    const double period = solution.period(chain);
    double busy = 0.0;
    for (const Stage& stage : solution.stages())
        busy += chain.interval_sum(stage.first, stage.last, stage.type);
    // Every stage weight is <= period, so busy <= used.total() * period <=
    // machine.total() * period up to rounding noise; clamp the noise.
    const double idle_time = std::max(0.0, machine.total() * period - busy);
    return energy_per_item(chain, solution, model) + model.idle_watts * idle_time;
}

double pipeline_latency(const TaskChain& chain, const Solution& solution)
{
    double latency = 0.0;
    for (const Stage& stage : solution.stages())
        latency += chain.interval_sum(stage.first, stage.last, stage.type);
    return latency;
}

} // namespace amp::core
