#pragma once
// HeRAD -- Heterogeneous Resource Allocation using Dynamic programming
// (paper §V, Eq. 4, Algos 7-11).
//
// Computes the optimal period P*(j, b, l) for every prefix of the chain and
// every resource budget, with the paper's secondary objective (use as many
// little cores as necessary) enforced through CompareCells tie-breaking.
// O(n^2 b l (b + l)) time and O(n b l) space, with two refinements:
//   * the paper's optimization: a stage containing a sequential task only
//     considers a single core (extra cores cannot reduce its weight), and
//   * a sound lower-bound break on the stage-start loop: once the lightest
//     possible stage weight already exceeds the cell's current best period,
//     extending the stage further cannot help.
//
// Warm starts: every DP cell (j, rb, rl) depends only on cells with
// coordinate-wise smaller budgets (and on per-cell seeds that are pure
// functions of the chain), so a matrix computed for budget (B, L) answers
// ANY sub-budget by a pure backwalk and a larger budget by computing only
// the new budget cells. HeradFrontier retains that matrix between solves;
// the autoscaling control loop re-solves ±k-core steps through it at a
// small fraction of the cold cost (docs/AUTOSCALING.md).

#include "core/chain.hpp"
#include "core/solution.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>

namespace amp::core {

struct HeradOptions {
    /// Merge consecutive replicable stages of the same core type after
    /// extraction (period-neutral, fewer stages). Paper §V.
    bool merge_stages = true;
    /// Enable the lower-bound break described above (sound; on by default).
    bool prune = true;
    /// Binary-search the core-count loop of Eq. (4): the predecessor period
    /// is non-decreasing and the stage weight non-increasing in u, so the
    /// minimum of their max lies at the crossing. Exact for the period;
    /// may pick a different (period-equal) tie than the exhaustive loop,
    /// so it is off by default and used by the large timing benches.
    bool fast_u_search = false;
};

/// Retained DP frontier of a previous HeRAD solve: the full matrix
/// P*(j, rb, rl) for every chain prefix and every budget up to the bounds
/// it was computed for. Immutable and shareable across threads; a grow
/// produces a NEW frontier with wider bounds, never mutates this one.
class HeradFrontier {
public:
    ~HeradFrontier();
    HeradFrontier(const HeradFrontier&) = delete;
    HeradFrontier& operator=(const HeradFrontier&) = delete;

    /// Chain length the frontier was computed for.
    [[nodiscard]] int tasks() const noexcept;
    /// Budget bounds the retained matrix covers.
    [[nodiscard]] Resources computed() const noexcept;
    /// True when the frontier can answer solves of `chain` under `options`
    /// bit-identically to a cold solve: same chain content (both
    /// fingerprints and the task count) and the same recurrence-affecting
    /// options. fast_u_search changes period-equal tie picks and prune is
    /// matched conservatively; merge_stages is a post-extraction pass and
    /// may differ freely.
    [[nodiscard]] bool matches(const TaskChain& chain, const HeradOptions& options) const noexcept;
    /// Approximate heap footprint of the retained matrix; callers caching
    /// results should strip frontiers (svc::SolverService does).
    [[nodiscard]] std::size_t bytes() const noexcept;

private:
    friend struct HeradFrontierAccess;
    HeradFrontier();
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// A solution plus the frontier that can warm-start the next re-solve.
struct WarmSolveResult {
    Solution solution;
    std::shared_ptr<const HeradFrontier> frontier;
    /// True when a previous frontier was actually reused (backwalk or
    /// extension) instead of running the full recurrence.
    bool incremental = false;
};

namespace detail {

/// Full HeRAD schedule; optimal in period and little-core usage. Callers
/// outside the scheduling library itself should go through the unified
/// core::schedule(ScheduleRequest) API (core/scheduler.hpp).
[[nodiscard]] Solution herad(const TaskChain& chain, Resources resources,
                             const HeradOptions& options = {});

/// Cold HeRAD solve that additionally retains the DP frontier for reuse.
[[nodiscard]] WarmSolveResult herad_with_frontier(const TaskChain& chain, Resources resources,
                                                  const HeradOptions& options = {});

/// Warm re-solve against the frontier of a previous solve of the SAME
/// chain under the SAME recurrence options (base->matches(chain, options)
/// must hold; throws std::invalid_argument otherwise -- callers check
/// applicability and fall back to herad_with_frontier). A budget within
/// the frontier's bounds is answered by a pure backwalk; a larger budget
/// extends a widened copy with only the new budget cells. Either way the
/// solution is bit-identical to a cold solve at `resources`.
[[nodiscard]] WarmSolveResult herad_warm(const TaskChain& chain, Resources resources,
                                         std::shared_ptr<const HeradFrontier> base,
                                         const HeradOptions& options = {});

} // namespace detail

/// The optimal period P*(n, b, l) alone (runs the same DP).
[[nodiscard]] double herad_optimal_period(const TaskChain& chain, Resources resources);

} // namespace amp::core
