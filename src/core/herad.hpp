#pragma once
// HeRAD -- Heterogeneous Resource Allocation using Dynamic programming
// (paper §V, Eq. 4, Algos 7-11).
//
// Computes the optimal period P*(j, b, l) for every prefix of the chain and
// every resource budget, with the paper's secondary objective (use as many
// little cores as necessary) enforced through CompareCells tie-breaking.
// O(n^2 b l (b + l)) time and O(n b l) space, with two refinements:
//   * the paper's optimization: a stage containing a sequential task only
//     considers a single core (extra cores cannot reduce its weight), and
//   * a sound lower-bound break on the stage-start loop: once the lightest
//     possible stage weight already exceeds the cell's current best period,
//     extending the stage further cannot help.

#include "core/chain.hpp"
#include "core/solution.hpp"

namespace amp::core {

struct HeradOptions {
    /// Merge consecutive replicable stages of the same core type after
    /// extraction (period-neutral, fewer stages). Paper §V.
    bool merge_stages = true;
    /// Enable the lower-bound break described above (sound; on by default).
    bool prune = true;
    /// Binary-search the core-count loop of Eq. (4): the predecessor period
    /// is non-decreasing and the stage weight non-increasing in u, so the
    /// minimum of their max lies at the crossing. Exact for the period;
    /// may pick a different (period-equal) tie than the exhaustive loop,
    /// so it is off by default and used by the large timing benches.
    bool fast_u_search = false;
};

namespace detail {

/// Full HeRAD schedule; optimal in period and little-core usage. Callers
/// outside the scheduling library itself should go through the unified
/// core::schedule(ScheduleRequest) API (core/scheduler.hpp).
[[nodiscard]] Solution herad(const TaskChain& chain, Resources resources,
                             const HeradOptions& options = {});

} // namespace detail

/// The optimal period P*(n, b, l) alone (runs the same DP).
[[nodiscard]] double herad_optimal_period(const TaskChain& chain, Resources resources);

} // namespace amp::core
