#pragma once
// Exhaustive reference solver, used only by tests and ablations to validate
// HeRAD's optimality claims (Theorem 1) on small instances.
//
// Enumerates every interval partition of the chain, every per-stage core
// type, and every per-stage core count, subject to Eq. (3). Returns the
// optimal period and the Pareto-minimal core usages among optimal-period
// solutions (the precise meaning of "as many little cores as necessary").

#include "core/chain.hpp"
#include "core/power.hpp"
#include "core/solution.hpp"

#include <vector>

namespace amp::core {

struct BruteForceResult {
    double optimal_period = kInfiniteWeight;
    /// Core usages (b_used, l_used) of optimal-period solutions that are
    /// Pareto-minimal: no other optimal-period solution uses <= big AND
    /// <= little cores with at least one strict inequality.
    std::vector<Resources> pareto_usages;
    /// One representative optimal solution per Pareto usage (same order).
    std::vector<Solution> pareto_solutions;
};

/// Exhaustive search; exponential, intended for n <= ~10 and small budgets.
[[nodiscard]] BruteForceResult brute_force(const TaskChain& chain, Resources resources);

/// Convenience: the optimal period only.
[[nodiscard]] double brute_force_optimal_period(const TaskChain& chain, Resources resources);

/// Exhaustive reference for the min_energy_under_period objective
/// (docs/ENERGY.md): minimum active energy_per_item among ALL schedules
/// with period <= target_period within the budget.
struct EnergyBruteForceResult {
    /// +inf when no feasible schedule meets the target.
    double best_energy = kInfiniteWeight;
    /// One representative minimum-energy solution (empty when infeasible).
    Solution best_solution;
};

/// Exhaustive search; exponential, intended for n <= ~10 and small budgets.
/// Validates EnergyHeRAD's optimality (tests/core/energy_schedule_test.cpp).
[[nodiscard]] EnergyBruteForceResult brute_force_min_energy(const TaskChain& chain,
                                                            Resources resources,
                                                            double target_period,
                                                            const PowerModel& model);

} // namespace amp::core
