#include "core/energy.hpp"

#include "core/greedy_common.hpp"
#include "core/otac.hpp"

#include <cstdint>
#include <limits>
#include <vector>

namespace amp::core::detail {

namespace energy_impl {

constexpr double kInfiniteEnergy = std::numeric_limits<double>::infinity();

/// Minimum feasible core count of stage [s, e] on type v at target P, or 0
/// when no count within `available` makes the stage feasible. Mirrors the
/// greedy machinery: RequiredCores (with its relative tolerance) for
/// replicable intervals, a single core for intervals containing a
/// sequential task (extra cores cannot reduce their weight, Eq. 1).
inline int min_feasible_cores(const TaskChain& chain, int s, int e, CoreType v, double P,
                              int available)
{
    if (available < 1)
        return 0;
    if (chain.interval_replicable(s, e)) {
        const int u = required_cores(chain, s, e, v, P);
        return u <= available ? u : 0;
    }
    return chain.interval_sum(s, e, v) <= P ? 1 : 0;
}

/// Flat DP cube over (prefix length, big budget, little budget) plus the
/// choice tables the backwalk extracts the solution from.
struct Matrix {
    int n = 0;
    int b = 0;
    int l = 0;
    std::vector<double> energy;      ///< E(j, rb, rl); +inf = infeasible
    std::vector<std::int32_t> start; ///< chosen stage start s (0 = none)
    std::vector<std::uint8_t> type;  ///< chosen stage core type
    std::vector<std::int32_t> cores; ///< chosen stage core count

    Matrix(int tasks, Resources budget)
        : n(tasks)
        , b(budget.big)
        , l(budget.little)
    {
        const auto cells = static_cast<std::size_t>(n + 1)
            * static_cast<std::size_t>(b + 1) * static_cast<std::size_t>(l + 1);
        energy.assign(cells, kInfiniteEnergy);
        start.assign(cells, 0);
        type.assign(cells, 0);
        cores.assign(cells, 0);
    }

    [[nodiscard]] std::size_t idx(int j, int rb, int rl) const noexcept
    {
        return (static_cast<std::size_t>(j) * static_cast<std::size_t>(b + 1)
                + static_cast<std::size_t>(rb))
            * static_cast<std::size_t>(l + 1)
            + static_cast<std::size_t>(rl);
    }
};

} // namespace energy_impl

Solution energy_herad(const TaskChain& chain, Resources resources, double target_period,
                      const PowerModel& model, bool merge_stages)
{
    using namespace energy_impl;
    if (chain.empty() || resources.total() < 1 || !(target_period > 0.0))
        return Solution{};

    const int n = chain.size();
    Matrix m{n, resources};
    for (int rb = 0; rb <= m.b; ++rb)
        for (int rl = 0; rl <= m.l; ++rl)
            m.energy[m.idx(0, rb, rl)] = 0.0;

    for (int j = 1; j <= n; ++j) {
        for (int rb = 0; rb <= m.b; ++rb) {
            for (int rl = 0; rl <= m.l; ++rl) {
                const std::size_t here = m.idx(j, rb, rl);
                double best = kInfiniteEnergy;
                // Last stage [s, j]: shortest first. The interval weight
                // grows (and replicability can only be lost) as s decreases,
                // so once the stage is infeasible on BOTH types it stays
                // infeasible for every earlier start -- break.
                for (int s = j; s >= 1; --s) {
                    bool any_feasible = false;
                    for (const CoreType v : {CoreType::big, CoreType::little}) {
                        const int budget = v == CoreType::big ? rb : rl;
                        const int u = min_feasible_cores(chain, s, j, v, target_period, budget);
                        if (u < 1)
                            continue;
                        any_feasible = true;
                        const double prev = v == CoreType::big
                                                ? m.energy[m.idx(s - 1, rb - u, rl)]
                                                : m.energy[m.idx(s - 1, rb, rl - u)];
                        if (prev == kInfiniteEnergy)
                            continue;
                        const double cand =
                            prev + model.watts(v) * chain.energy_sum(s, j, v);
                        // Strict improvement only: the first-seen choice in
                        // the fixed (s desc, big-then-little) order wins
                        // energy ties, keeping extraction deterministic.
                        if (cand < best) {
                            best = cand;
                            m.start[here] = s;
                            m.type[here] = static_cast<std::uint8_t>(v);
                            m.cores[here] = u;
                        }
                    }
                    if (!any_feasible)
                        break;
                }
                m.energy[here] = best;
            }
        }
    }

    if (m.energy[m.idx(n, m.b, m.l)] == kInfiniteEnergy)
        return Solution{};

    Solution solution;
    int j = n;
    int rb = m.b;
    int rl = m.l;
    while (j > 0) {
        const std::size_t here = m.idx(j, rb, rl);
        const int s = m.start[here];
        const auto v = static_cast<CoreType>(m.type[here]);
        const int u = m.cores[here];
        solution.prepend(Stage{s, j, u, v});
        (v == CoreType::big ? rb : rl) -= u;
        j = s - 1;
    }
    if (merge_stages)
        solution.merge_replicable_stages(chain);
    return solution;
}

Solution energy_fertac(const TaskChain& chain, Resources resources, double target_period,
                       const PowerModel& model)
{
    if (chain.empty() || resources.total() < 1 || !(target_period > 0.0))
        return Solution{};

    const int n = chain.size();
    // Iterative FERTAC loop at the fixed target; the per-stage preference is
    // the core type with the cheaper energy rate for the stage's leading
    // task (ties go little: never more expensive under any sane model).
    Solution solution;
    Resources available = resources;
    int s = 1;
    while (s <= n) {
        const double big_rate = model.watts(CoreType::big) * chain.energy_sum(s, s, CoreType::big);
        const double little_rate =
            model.watts(CoreType::little) * chain.energy_sum(s, s, CoreType::little);
        const CoreType first = big_rate < little_rate ? CoreType::big : CoreType::little;
        const CoreType second = other(first);

        auto cut = compute_stage(chain, s, available.count(first), first, target_period);
        Stage stage{s, cut.end, cut.used, first};
        if (!stage_fits(chain, stage, available, target_period)) {
            cut = compute_stage(chain, s, available.count(second), second, target_period);
            stage = Stage{s, cut.end, cut.used, second};
            if (!stage_fits(chain, stage, available, target_period))
                return Solution{}; // no valid stage with either core type
        }
        available.count(stage.type) -= stage.cores;
        solution.append(stage);
        s = stage.last + 1;
    }
    return solution;
}

Solution energy_twocatac(const TaskChain& chain, Resources resources, double target_period,
                         const PowerModel& model)
{
    if (chain.empty() || resources.total() < 1 || !(target_period > 0.0))
        return Solution{};

    // 2CATAC's two-candidate recursion with the core-exchange objective
    // replaced by total active energy.
    struct Builder {
        const TaskChain& chain;
        const PowerModel& model;
        double target;

        Solution build(int s, Resources available) const
        {
            const int n = chain.size();
            Solution candidate[2];
            for (const CoreType v : {CoreType::big, CoreType::little}) {
                Solution& out = candidate[v == CoreType::big ? 0 : 1];
                const auto cut = compute_stage(chain, s, available.count(v), v, target);
                const Stage stage{s, cut.end, cut.used, v};
                if (!stage_fits(chain, stage, available, target)) {
                    out = Solution{};
                } else if (stage.last == n) {
                    out = Solution{{stage}};
                } else {
                    Resources remaining = available;
                    remaining.count(v) -= stage.cores;
                    Solution rest = build(stage.last + 1, remaining);
                    if (rest.is_valid(chain, remaining, target)) {
                        rest.prepend(stage);
                        out = std::move(rest);
                    } else {
                        out = Solution{};
                    }
                }
            }
            const bool big_valid = candidate[0].is_valid(chain, available, target);
            const bool little_valid = candidate[1].is_valid(chain, available, target);
            if (big_valid && little_valid) {
                const double big_energy = energy_per_item(chain, candidate[0], model);
                const double little_energy = energy_per_item(chain, candidate[1], model);
                return little_energy <= big_energy ? std::move(candidate[1])
                                                  : std::move(candidate[0]);
            }
            if (big_valid)
                return std::move(candidate[0]);
            if (little_valid)
                return std::move(candidate[1]);
            return Solution{};
        }
    };

    return Builder{chain, model, target_period}.build(1, resources);
}

Solution energy_otac(const TaskChain& chain, int cores, CoreType v, double target_period)
{
    if (chain.empty() || cores < 1 || !(target_period > 0.0))
        return Solution{};
    Solution solution = otac_compute_solution(chain, 1, cores, v, target_period);
    Resources budget;
    budget.count(v) = cores;
    if (!solution.is_valid(chain, budget, target_period))
        return Solution{};
    return solution;
}

} // namespace amp::core::detail
