#pragma once
// Pipelined-and-replicated solution S = (s, r, v): an ordered list of stages,
// each an interval of tasks with a number of cores of a single type.

#include "core/chain.hpp"

#include <string>
#include <vector>

namespace amp::core {

/// One pipeline stage: tasks [first, last] executed by `cores` cores of
/// type `type`. A stage with more than one core replicates all its tasks.
struct Stage {
    int first = 0;
    int last = 0;
    int cores = 0;
    CoreType type = CoreType::big;

    [[nodiscard]] constexpr int task_count() const noexcept { return last - first + 1; }
    [[nodiscard]] constexpr bool operator==(const Stage&) const noexcept = default;
};

/// A (possibly empty == invalid) solution.
class Solution {
public:
    Solution() = default;
    explicit Solution(std::vector<Stage> stages)
        : stages_(std::move(stages))
    {
    }

    [[nodiscard]] bool empty() const noexcept { return stages_.empty(); }
    [[nodiscard]] std::size_t stage_count() const noexcept { return stages_.size(); }
    [[nodiscard]] const std::vector<Stage>& stages() const noexcept { return stages_; }
    [[nodiscard]] const Stage& stage(std::size_t i) const { return stages_.at(i); }

    void prepend(const Stage& stage) { stages_.insert(stages_.begin(), stage); }
    void append(const Stage& stage) { stages_.push_back(stage); }
    void clear() noexcept { stages_.clear(); }

    /// Period P(s, r, v) = max stage weight (Eq. 2). Infinity when empty.
    [[nodiscard]] double period(const TaskChain& chain) const;

    /// Total cores of the given type used across stages (Eq. 3 left sides).
    [[nodiscard]] int used(CoreType v) const noexcept;
    [[nodiscard]] Resources used() const noexcept
    {
        return {used(CoreType::big), used(CoreType::little)};
    }

    /// The paper's IsValid (Algo 3): non-empty, period within target, and
    /// resource budgets respected.
    [[nodiscard]] bool is_valid(const TaskChain& chain, const Resources& budget,
                                double target_period) const;

    /// Structural soundness against a chain: stages contiguous from task 1
    /// to n, cores >= 1, and no replicated stage containing a sequential
    /// task. (Stricter than IsValid; used by tests and the runtime.)
    [[nodiscard]] bool is_well_formed(const TaskChain& chain) const;

    /// Merges consecutive replicable stages that use the same core type
    /// (HeRAD post-pass; period-neutral, reduces stage count).
    void merge_replicable_stages(const TaskChain& chain);

    /// Pipeline decomposition in the paper's Table II notation, e.g.
    /// "(5,1B),(1,1B),(9,1B),(1,2B),(2,1L),(1,3B),(4,1L)".
    [[nodiscard]] std::string decomposition() const;

    [[nodiscard]] bool operator==(const Solution&) const noexcept = default;

private:
    std::vector<Stage> stages_;
};

} // namespace amp::core
