#include "core/herad.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace amp::core {

namespace {

/// One DP cell: the optimal partial solution for (tasks 1..j, b big, l
/// little). `prev_*` index the predecessor cell (state before the last
/// stage), `acc_*` accumulate the cores actually used, `v`/`start` describe
/// the last stage.
struct Cell {
    double pbest = kInfiniteWeight;
    std::uint16_t prev_b = 0;
    std::uint16_t prev_l = 0;
    std::uint16_t acc_b = 0;
    std::uint16_t acc_l = 0;
    CoreType v = CoreType::little;
    std::int32_t start = 0;
};

/// CompareCells (Algo 10): returns the better of the current cell C and the
/// new candidate N. Ties on the period are broken in favour of the solution
/// that exchanges big cores for little ones, then the one using fewer cores.
[[nodiscard]] const Cell& compare_cells(const Cell& current, const Cell& candidate) noexcept
{
    if (candidate.pbest == kInfiniteWeight)
        return current;
    if (current.pbest > candidate.pbest)
        return candidate;
    if (current.pbest == candidate.pbest) {
        const auto cb = current.acc_b;
        const auto cl = current.acc_l;
        const auto nb = candidate.acc_b;
        const auto nl = candidate.acc_l;
        if (cl < nl && cb > nb)
            return candidate; // candidate trades big cores for little ones
        if (cl >= nl && cb >= nb)
            return candidate; // candidate uses no more cores of either type
    }
    return current;
}

/// The DP matrix S[j][rb][rl], j in [0, n], rb in [0, b], rl in [0, l].
class Matrix {
public:
    Matrix(int n, int b, int l)
        : stride_b_(static_cast<std::size_t>(l) + 1)
        , stride_j_(static_cast<std::size_t>(b + 1) * stride_b_)
        , cells_(static_cast<std::size_t>(n + 1) * stride_j_)
    {
        // Base case P*(0, ., .) = 0: scheduling zero tasks costs nothing.
        for (std::size_t idx = 0; idx < stride_j_; ++idx)
            cells_[idx].pbest = 0.0;
    }

    [[nodiscard]] Cell& at(int j, int rb, int rl) noexcept
    {
        return cells_[static_cast<std::size_t>(j) * stride_j_
                      + static_cast<std::size_t>(rb) * stride_b_ + static_cast<std::size_t>(rl)];
    }
    [[nodiscard]] const Cell& at(int j, int rb, int rl) const noexcept
    {
        return cells_[static_cast<std::size_t>(j) * stride_j_
                      + static_cast<std::size_t>(rb) * stride_b_ + static_cast<std::size_t>(rl)];
    }

private:
    std::size_t stride_b_;
    std::size_t stride_j_;
    std::vector<Cell> cells_;
};

/// SingleStageSolution (Algo 8): seeds row t with the best single-stage
/// schedules [1, t] for every (rb, rl) budget.
void single_stage_solution(int t, Matrix& S, const TaskChain& chain, int b, int l)
{
    const bool replicable = chain.interval_replicable(1, t);

    // Little-core single stage for every little budget (big budget 0).
    for (int rl = 1; rl <= l; ++rl) {
        Cell& cell = S.at(t, 0, rl);
        cell.pbest = chain.stage_weight(1, t, rl, CoreType::little);
        cell.acc_b = 0;
        cell.acc_l = static_cast<std::uint16_t>(replicable ? rl : 1);
        cell.prev_b = 0;
        cell.prev_l = 0;
        cell.v = CoreType::little;
        cell.start = 1;
    }

    // Big-core single stage, compared against the little-core one.
    for (int rb = 1; rb <= b; ++rb) {
        const double w_big = chain.stage_weight(1, t, rb, CoreType::big);
        const auto used_big = static_cast<std::uint16_t>(replicable ? rb : 1);
        for (int rl = 0; rl <= l; ++rl) {
            Cell& cell = S.at(t, rb, rl);
            const Cell& little_cell = S.at(t, 0, rl);
            if (w_big < little_cell.pbest) {
                cell.pbest = w_big;
                cell.acc_b = used_big;
                cell.acc_l = 0;
                cell.prev_b = 0;
                cell.prev_l = 0;
                cell.v = CoreType::big;
                cell.start = 1;
            } else {
                cell = little_cell;
            }
        }
    }
}

/// RecomputeCell (Algo 9): computes P*(j, b, l) from all stage starts i and
/// core allocations u of either type, against the single-stage seed and the
/// one-fewer-core neighbor cells.
void recompute_cell(int j, Matrix& S, const TaskChain& chain, int b, int l,
                    const HeradOptions& options)
{
    const bool prune = options.prune;
    Cell best = S.at(j, b, l); // seed from SingleStageSolution
    if (l > 0)
        best = compare_cells(best, S.at(j, b, l - 1));
    if (b > 0)
        best = compare_cells(best, S.at(j, b - 1, l));

    for (int i = j; i >= 1; --i) {
        const bool replicable = chain.interval_replicable(i, j);

        if (prune) {
            // Lightest this stage can possibly be; grows monotonically as i
            // decreases, so once it exceeds the best period we can stop.
            double lower_bound = kInfiniteWeight;
            if (b > 0)
                lower_bound = std::min(
                    lower_bound, chain.stage_weight(i, j, replicable ? b : 1, CoreType::big));
            if (l > 0)
                lower_bound = std::min(
                    lower_bound, chain.stage_weight(i, j, replicable ? l : 1, CoreType::little));
            if (lower_bound > best.pbest)
                break;
        }

        // A stage containing a sequential task cannot exploit extra cores
        // (paper's RecomputeCell optimization): limit u to one core.
        const auto consider = [&](CoreType type, int u) {
            const Cell& prev =
                type == CoreType::big ? S.at(i - 1, b - u, l) : S.at(i - 1, b, l - u);
            if (prev.pbest == kInfiniteWeight)
                return;
            Cell cand;
            cand.pbest = std::max(prev.pbest, chain.stage_weight(i, j, u, type));
            if (type == CoreType::big) {
                cand.acc_b = static_cast<std::uint16_t>(prev.acc_b + (replicable ? u : 1));
                cand.acc_l = prev.acc_l;
                cand.prev_b = static_cast<std::uint16_t>(b - u);
                cand.prev_l = static_cast<std::uint16_t>(l);
            } else {
                cand.acc_b = prev.acc_b;
                cand.acc_l = static_cast<std::uint16_t>(prev.acc_l + (replicable ? u : 1));
                cand.prev_b = static_cast<std::uint16_t>(b);
                cand.prev_l = static_cast<std::uint16_t>(l - u);
            }
            cand.v = type;
            cand.start = i;
            best = compare_cells(best, cand);
        };

        const auto sweep = [&](CoreType type, int max_u) {
            if (max_u < 1)
                return;
            if (!options.fast_u_search || !replicable || max_u <= 4) {
                for (int u = 1; u <= max_u; ++u)
                    consider(type, u);
                return;
            }
            // The predecessor period g(u) is non-decreasing in u (fewer
            // cores remain) and the stage weight h(u) is decreasing, so
            // min_u max(g, h) sits at the crossing: binary search for the
            // smallest u with g(u) >= h(u) and examine its two neighbors.
            const auto g = [&](int u) {
                return type == CoreType::big ? S.at(i - 1, b - u, l).pbest
                                             : S.at(i - 1, b, l - u).pbest;
            };
            const auto h = [&](int u) { return chain.stage_weight(i, j, u, type); };
            int lo = 1;
            int hi = max_u + 1; // first u satisfying g >= h, or max_u + 1
            while (lo < hi) {
                const int mid = lo + (hi - lo) / 2;
                if (g(mid) >= h(mid))
                    hi = mid;
                else
                    lo = mid + 1;
            }
            consider(type, std::min(lo, max_u));
            if (lo - 1 >= 1)
                consider(type, lo - 1);
        };

        sweep(CoreType::big, replicable ? b : std::min(b, 1));
        sweep(CoreType::little, replicable ? l : std::min(l, 1));
    }

    S.at(j, b, l) = best;
}

/// ExtractSolution (Algo 11): walks the matrix backwards from (n, b, l).
[[nodiscard]] Solution extract_solution(const Matrix& S, const TaskChain& chain, int b, int l)
{
    std::vector<Stage> stages;
    int e = chain.size();
    int rb = b;
    int rl = l;
    while (e >= 1) {
        const Cell& cell = S.at(e, rb, rl);
        if (cell.pbest == kInfiniteWeight)
            return Solution{}; // unreachable with >= 1 core, kept for safety
        const int s = cell.start;
        int used_b = cell.acc_b;
        int used_l = cell.acc_l;
        if (s > 1) {
            const Cell& prev = S.at(s - 1, cell.prev_b, cell.prev_l);
            used_b -= prev.acc_b;
            used_l -= prev.acc_l;
        }
        const int cores = cell.v == CoreType::big ? used_b : used_l;
        stages.push_back(Stage{s, e, cores, cell.v});
        e = s - 1;
        rb = cell.prev_b;
        rl = cell.prev_l;
    }
    std::reverse(stages.begin(), stages.end());
    return Solution{std::move(stages)};
}

[[nodiscard]] Matrix run_dp(const TaskChain& chain, Resources resources,
                            const HeradOptions& options)
{
    const int n = chain.size();
    const int b = resources.big;
    const int l = resources.little;
    Matrix S(n, b, l);

    single_stage_solution(1, S, chain, b, l);
    for (int e = 2; e <= n; ++e) {
        single_stage_solution(e, S, chain, b, l);
        for (int ub = 0; ub <= b; ++ub)
            for (int ul = 0; ul <= l; ++ul)
                if (ub != 0 || ul != 0)
                    recompute_cell(e, S, chain, ub, ul, options);
    }
    return S;
}

} // namespace {anonymous}

Solution detail::herad(const TaskChain& chain, Resources resources, const HeradOptions& options)
{
    if (chain.empty())
        return Solution{};
    if (resources.total() < 1)
        throw std::invalid_argument{"herad: at least one core is required"};
    if (resources.big > 0xffff || resources.little > 0xffff)
        throw std::invalid_argument{"herad: resource counts exceed the DP cell capacity"};

    const Matrix S = run_dp(chain, resources, options);
    Solution solution = extract_solution(S, chain, resources.big, resources.little);
    if (options.merge_stages)
        solution.merge_replicable_stages(chain);
    return solution;
}

double herad_optimal_period(const TaskChain& chain, Resources resources)
{
    return detail::herad(chain, resources).period(chain);
}

} // namespace amp::core
