#include "core/herad.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace amp::core {

// Not anonymous: HeradFrontier::Impl (external linkage) embeds Matrix, and
// an anonymous-namespace member type would trip GCC's -Wsubobject-linkage.
namespace herad_impl {

/// One DP cell: the optimal partial solution for (tasks 1..j, b big, l
/// little). `prev_*` index the predecessor cell (state before the last
/// stage), `acc_*` accumulate the cores actually used, `v`/`start` describe
/// the last stage.
struct Cell {
    double pbest = kInfiniteWeight;
    std::uint16_t prev_b = 0;
    std::uint16_t prev_l = 0;
    std::uint16_t acc_b = 0;
    std::uint16_t acc_l = 0;
    CoreType v = CoreType::little;
    std::int32_t start = 0;
};

/// CompareCells (Algo 10): returns the better of the current cell C and the
/// new candidate N. Ties on the period are broken in favour of the solution
/// that exchanges big cores for little ones, then the one using fewer cores.
[[nodiscard]] const Cell& compare_cells(const Cell& current, const Cell& candidate) noexcept
{
    if (candidate.pbest == kInfiniteWeight)
        return current;
    if (current.pbest > candidate.pbest)
        return candidate;
    if (current.pbest == candidate.pbest) {
        const auto cb = current.acc_b;
        const auto cl = current.acc_l;
        const auto nb = candidate.acc_b;
        const auto nl = candidate.acc_l;
        if (cl < nl && cb > nb)
            return candidate; // candidate trades big cores for little ones
        if (cl >= nl && cb >= nb)
            return candidate; // candidate uses no more cores of either type
    }
    return current;
}

/// The DP matrix S[j][rb][rl], j in [0, n], rb in [0, b], rl in [0, l].
class Matrix {
public:
    Matrix(int n, int b, int l)
        : tasks_(n)
        , big_(b)
        , little_(l)
        , stride_b_(static_cast<std::size_t>(l) + 1)
        , stride_j_(static_cast<std::size_t>(b + 1) * stride_b_)
        , cells_(static_cast<std::size_t>(n + 1) * stride_j_)
    {
        // Base case P*(0, ., .) = 0: scheduling zero tasks costs nothing.
        for (std::size_t idx = 0; idx < stride_j_; ++idx)
            cells_[idx].pbest = 0.0;
    }

    [[nodiscard]] Cell& at(int j, int rb, int rl) noexcept
    {
        return cells_[static_cast<std::size_t>(j) * stride_j_
                      + static_cast<std::size_t>(rb) * stride_b_ + static_cast<std::size_t>(rl)];
    }
    [[nodiscard]] const Cell& at(int j, int rb, int rl) const noexcept
    {
        return cells_[static_cast<std::size_t>(j) * stride_j_
                      + static_cast<std::size_t>(rb) * stride_b_ + static_cast<std::size_t>(rl)];
    }

    [[nodiscard]] int tasks() const noexcept { return tasks_; }
    [[nodiscard]] int big() const noexcept { return big_; }
    [[nodiscard]] int little() const noexcept { return little_; }
    [[nodiscard]] std::size_t bytes() const noexcept { return cells_.size() * sizeof(Cell); }

    /// A copy of this matrix embedded into a larger (b, l) budget box; the
    /// new cells stay default-initialized (the extension pass fills them).
    [[nodiscard]] Matrix widened(int b, int l) const
    {
        Matrix out(tasks_, b, l);
        for (int j = 0; j <= tasks_; ++j)
            for (int rb = 0; rb <= big_; ++rb)
                for (int rl = 0; rl <= little_; ++rl)
                    out.at(j, rb, rl) = at(j, rb, rl);
        return out;
    }

private:
    int tasks_;
    int big_;
    int little_;
    std::size_t stride_b_;
    std::size_t stride_j_;
    std::vector<Cell> cells_;
};

/// The single-stage schedule [1, t] on budget (rb, rl) as a pure function
/// of the chain -- the per-cell seed of SingleStageSolution (Algo 8). The
/// extension pass must seed from here rather than from the old matrix: the
/// little column it would otherwise compare against has already been
/// overwritten by RecomputeCell, and reading it would shift period-equal
/// tie-breaks away from the cold solve.
[[nodiscard]] Cell single_stage_seed(int t, int rb, int rl, const TaskChain& chain)
{
    const bool replicable = chain.interval_replicable(1, t);

    Cell little; // pbest stays infinite when rl == 0
    if (rl >= 1) {
        little.pbest = chain.stage_weight(1, t, rl, CoreType::little);
        little.acc_b = 0;
        little.acc_l = static_cast<std::uint16_t>(replicable ? rl : 1);
        little.prev_b = 0;
        little.prev_l = 0;
        little.v = CoreType::little;
        little.start = 1;
    }
    if (rb < 1)
        return little;

    const double w_big = chain.stage_weight(1, t, rb, CoreType::big);
    if (w_big < little.pbest) {
        Cell big;
        big.pbest = w_big;
        big.acc_b = static_cast<std::uint16_t>(replicable ? rb : 1);
        big.acc_l = 0;
        big.prev_b = 0;
        big.prev_l = 0;
        big.v = CoreType::big;
        big.start = 1;
        return big;
    }
    return little;
}

/// SingleStageSolution (Algo 8): seeds row t with the best single-stage
/// schedules [1, t] for every (rb, rl) budget. Budgets inside the
/// (skip_b, skip_l) box already hold final values from a previous solve
/// and are left untouched (cold solves pass -1, -1).
void seed_row(int t, Matrix& S, const TaskChain& chain, int skip_b, int skip_l)
{
    for (int rb = 0; rb <= S.big(); ++rb)
        for (int rl = 0; rl <= S.little(); ++rl) {
            if (rb <= skip_b && rl <= skip_l)
                continue;
            if (rb == 0 && rl == 0)
                continue; // stays infeasible
            S.at(t, rb, rl) = single_stage_seed(t, rb, rl, chain);
        }
}

/// RecomputeCell (Algo 9): computes P*(j, b, l) from all stage starts i and
/// core allocations u of either type, against the single-stage seed and the
/// one-fewer-core neighbor cells.
void recompute_cell(int j, Matrix& S, const TaskChain& chain, int b, int l,
                    const HeradOptions& options)
{
    const bool prune = options.prune;
    Cell best = S.at(j, b, l); // seed from SingleStageSolution
    if (l > 0)
        best = compare_cells(best, S.at(j, b, l - 1));
    if (b > 0)
        best = compare_cells(best, S.at(j, b - 1, l));

    for (int i = j; i >= 1; --i) {
        const bool replicable = chain.interval_replicable(i, j);

        if (prune) {
            // Lightest this stage can possibly be; grows monotonically as i
            // decreases, so once it exceeds the best period we can stop.
            double lower_bound = kInfiniteWeight;
            if (b > 0)
                lower_bound = std::min(
                    lower_bound, chain.stage_weight(i, j, replicable ? b : 1, CoreType::big));
            if (l > 0)
                lower_bound = std::min(
                    lower_bound, chain.stage_weight(i, j, replicable ? l : 1, CoreType::little));
            if (lower_bound > best.pbest)
                break;
        }

        // A stage containing a sequential task cannot exploit extra cores
        // (paper's RecomputeCell optimization): limit u to one core.
        const auto consider = [&](CoreType type, int u) {
            const Cell& prev =
                type == CoreType::big ? S.at(i - 1, b - u, l) : S.at(i - 1, b, l - u);
            if (prev.pbest == kInfiniteWeight)
                return;
            Cell cand;
            cand.pbest = std::max(prev.pbest, chain.stage_weight(i, j, u, type));
            if (type == CoreType::big) {
                cand.acc_b = static_cast<std::uint16_t>(prev.acc_b + (replicable ? u : 1));
                cand.acc_l = prev.acc_l;
                cand.prev_b = static_cast<std::uint16_t>(b - u);
                cand.prev_l = static_cast<std::uint16_t>(l);
            } else {
                cand.acc_b = prev.acc_b;
                cand.acc_l = static_cast<std::uint16_t>(prev.acc_l + (replicable ? u : 1));
                cand.prev_b = static_cast<std::uint16_t>(b);
                cand.prev_l = static_cast<std::uint16_t>(l - u);
            }
            cand.v = type;
            cand.start = i;
            best = compare_cells(best, cand);
        };

        const auto sweep = [&](CoreType type, int max_u) {
            if (max_u < 1)
                return;
            if (!options.fast_u_search || !replicable || max_u <= 4) {
                for (int u = 1; u <= max_u; ++u)
                    consider(type, u);
                return;
            }
            // The predecessor period g(u) is non-decreasing in u (fewer
            // cores remain) and the stage weight h(u) is decreasing, so
            // min_u max(g, h) sits at the crossing: binary search for the
            // smallest u with g(u) >= h(u) and examine its two neighbors.
            const auto g = [&](int u) {
                return type == CoreType::big ? S.at(i - 1, b - u, l).pbest
                                             : S.at(i - 1, b, l - u).pbest;
            };
            const auto h = [&](int u) { return chain.stage_weight(i, j, u, type); };
            int lo = 1;
            int hi = max_u + 1; // first u satisfying g >= h, or max_u + 1
            while (lo < hi) {
                const int mid = lo + (hi - lo) / 2;
                if (g(mid) >= h(mid))
                    hi = mid;
                else
                    lo = mid + 1;
            }
            consider(type, std::min(lo, max_u));
            if (lo - 1 >= 1)
                consider(type, lo - 1);
        };

        sweep(CoreType::big, replicable ? b : std::min(b, 1));
        sweep(CoreType::little, replicable ? l : std::min(l, 1));
    }

    S.at(j, b, l) = best;
}

/// ExtractSolution (Algo 11): walks the matrix backwards from (n, b, l).
[[nodiscard]] Solution extract_solution(const Matrix& S, const TaskChain& chain, int b, int l)
{
    std::vector<Stage> stages;
    int e = chain.size();
    int rb = b;
    int rl = l;
    while (e >= 1) {
        const Cell& cell = S.at(e, rb, rl);
        if (cell.pbest == kInfiniteWeight)
            return Solution{}; // unreachable with >= 1 core, kept for safety
        const int s = cell.start;
        int used_b = cell.acc_b;
        int used_l = cell.acc_l;
        if (s > 1) {
            const Cell& prev = S.at(s - 1, cell.prev_b, cell.prev_l);
            used_b -= prev.acc_b;
            used_l -= prev.acc_l;
        }
        const int cores = cell.v == CoreType::big ? used_b : used_l;
        stages.push_back(Stage{s, e, cores, cell.v});
        e = s - 1;
        rb = cell.prev_b;
        rl = cell.prev_l;
    }
    std::reverse(stages.begin(), stages.end());
    return Solution{std::move(stages)};
}

/// Runs the recurrence over every budget outside the (skip_b, skip_l) box.
/// The visit order (rows ascending, then (ub, ul) lexicographic) matches
/// the cold solve's exactly, and every skipped cell already holds the value
/// the cold solve would have computed, so the new cells see bit-identical
/// inputs whether the box is empty (cold) or a previous solve's bounds
/// (extension).
void run_dp(Matrix& S, const TaskChain& chain, const HeradOptions& options, int skip_b = -1,
            int skip_l = -1)
{
    seed_row(1, S, chain, skip_b, skip_l);
    for (int e = 2; e <= S.tasks(); ++e) {
        seed_row(e, S, chain, skip_b, skip_l);
        for (int ub = 0; ub <= S.big(); ++ub)
            for (int ul = 0; ul <= S.little(); ++ul) {
                if (ub <= skip_b && ul <= skip_l)
                    continue;
                if (ub != 0 || ul != 0)
                    recompute_cell(e, S, chain, ub, ul, options);
            }
    }
}

void validate_budget(Resources resources)
{
    if (resources.total() < 1)
        throw std::invalid_argument{"herad: at least one core is required"};
    if (resources.big > 0xffff || resources.little > 0xffff)
        throw std::invalid_argument{"herad: resource counts exceed the DP cell capacity"};
}

} // namespace herad_impl

using herad_impl::extract_solution;
using herad_impl::Matrix;
using herad_impl::run_dp;
using herad_impl::validate_budget;

struct HeradFrontier::Impl {
    Matrix matrix;
    std::uint64_t fingerprint = 0;
    std::uint64_t fingerprint2 = 0;
    bool prune = true;
    bool fast_u_search = false;
};

HeradFrontier::HeradFrontier() = default;
HeradFrontier::~HeradFrontier() = default;

int HeradFrontier::tasks() const noexcept { return impl_->matrix.tasks(); }

Resources HeradFrontier::computed() const noexcept
{
    return Resources{impl_->matrix.big(), impl_->matrix.little()};
}

bool HeradFrontier::matches(const TaskChain& chain, const HeradOptions& options) const noexcept
{
    return impl_->matrix.tasks() == chain.size() && impl_->fingerprint == chain.fingerprint()
           && impl_->fingerprint2 == chain.fingerprint2() && impl_->prune == options.prune
           && impl_->fast_u_search == options.fast_u_search;
}

std::size_t HeradFrontier::bytes() const noexcept { return impl_->matrix.bytes(); }

/// Internal factory/accessor: keeps Matrix out of the public header while
/// letting the solve paths below build and read frontiers.
struct HeradFrontierAccess {
    [[nodiscard]] static std::shared_ptr<const HeradFrontier>
    make(Matrix matrix, const TaskChain& chain, const HeradOptions& options)
    {
        auto frontier = std::shared_ptr<HeradFrontier>(new HeradFrontier());
        frontier->impl_ = std::make_unique<HeradFrontier::Impl>(HeradFrontier::Impl{
            std::move(matrix), chain.fingerprint(), chain.fingerprint2(), options.prune,
            options.fast_u_search});
        return frontier;
    }

    [[nodiscard]] static const Matrix& matrix(const HeradFrontier& frontier) noexcept
    {
        return frontier.impl_->matrix;
    }
};

namespace {

[[nodiscard]] Solution finish(Solution solution, const TaskChain& chain,
                              const HeradOptions& options)
{
    if (options.merge_stages)
        solution.merge_replicable_stages(chain);
    return solution;
}

} // namespace {anonymous}

Solution detail::herad(const TaskChain& chain, Resources resources, const HeradOptions& options)
{
    if (chain.empty())
        return Solution{};
    validate_budget(resources);

    Matrix S(chain.size(), resources.big, resources.little);
    run_dp(S, chain, options);
    return finish(extract_solution(S, chain, resources.big, resources.little), chain, options);
}

WarmSolveResult detail::herad_with_frontier(const TaskChain& chain, Resources resources,
                                            const HeradOptions& options)
{
    WarmSolveResult out;
    if (chain.empty())
        return out;
    validate_budget(resources);

    Matrix S(chain.size(), resources.big, resources.little);
    run_dp(S, chain, options);
    out.solution =
        finish(extract_solution(S, chain, resources.big, resources.little), chain, options);
    out.frontier = HeradFrontierAccess::make(std::move(S), chain, options);
    return out;
}

WarmSolveResult detail::herad_warm(const TaskChain& chain, Resources resources,
                                   std::shared_ptr<const HeradFrontier> base,
                                   const HeradOptions& options)
{
    if (base == nullptr || !base->matches(chain, options))
        throw std::invalid_argument{
            "herad_warm: the frontier belongs to a different chain or recurrence options"};
    if (chain.empty())
        return WarmSolveResult{};
    validate_budget(resources);

    const Matrix& computed = HeradFrontierAccess::matrix(*base);
    WarmSolveResult out;
    out.incremental = true;
    if (resources.big <= computed.big() && resources.little <= computed.little()) {
        // Shrink (or repeat): the matrix already holds the optimum for every
        // sub-budget -- a pure backwalk, no recurrence at all.
        out.solution =
            finish(extract_solution(computed, chain, resources.big, resources.little), chain,
                   options);
        out.frontier = std::move(base);
        return out;
    }

    // Grow: widen the budget box and run the recurrence over the new cells
    // only. Bounds take the max per axis so a mixed grow/shrink step still
    // extends one axis and extracts at the other.
    Matrix S = computed.widened(std::max(resources.big, computed.big()),
                                std::max(resources.little, computed.little()));
    run_dp(S, chain, options, computed.big(), computed.little());
    out.solution =
        finish(extract_solution(S, chain, resources.big, resources.little), chain, options);
    out.frontier = HeradFrontierAccess::make(std::move(S), chain, options);
    return out;
}

double herad_optimal_period(const TaskChain& chain, Resources resources)
{
    return detail::herad(chain, resources).period(chain);
}

} // namespace amp::core
