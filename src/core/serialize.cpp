#include "core/serialize.hpp"

#include <charconv>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace amp::core {

namespace {

[[noreturn]] void fail(int line, const std::string& message)
{
    throw std::invalid_argument{"chain CSV, line " + std::to_string(line) + ": " + message};
}

std::vector<std::string> split(const std::string& line, char separator)
{
    std::vector<std::string> fields;
    std::string field;
    std::istringstream stream{line};
    while (std::getline(stream, field, separator))
        fields.push_back(field);
    return fields;
}

std::string trim(const std::string& text)
{
    const auto begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return {};
    const auto end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

bool parse_bool(const std::string& text, int line)
{
    const std::string value = trim(text);
    if (value == "1" || value == "true" || value == "yes")
        return true;
    if (value == "0" || value == "false" || value == "no")
        return false;
    fail(line, "expected a boolean replicable flag, got '" + value + "'");
}

double parse_weight(const std::string& text, int line)
{
    const std::string value = trim(text);
    char* end = nullptr;
    const double weight = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        fail(line, "expected a numeric weight, got '" + value + "'");
    if (!(weight > 0.0))
        fail(line, "weights must be strictly positive, got '" + value + "'");
    return weight;
}

} // namespace

TaskChain parse_chain_csv(std::istream& input)
{
    std::vector<TaskDesc> tasks;
    std::string line;
    int line_number = 0;
    bool header_skipped = false;
    while (std::getline(input, line)) {
        ++line_number;
        const std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed.front() == '#')
            continue;
        const auto fields = split(trimmed, ',');
        if (!header_skipped) {
            header_skipped = true;
            // Tolerate a header row: detect by a non-numeric second field.
            if (fields.size() >= 2) {
                char* end = nullptr;
                (void)std::strtod(fields[1].c_str(), &end);
                if (end == fields[1].c_str())
                    continue;
            }
        }
        if (fields.size() != 4)
            fail(line_number, "expected 4 fields (name,w_big,w_little,replicable), got "
                     + std::to_string(fields.size()));
        TaskDesc task;
        task.name = trim(fields[0]);
        task.w_big = parse_weight(fields[1], line_number);
        task.w_little = parse_weight(fields[2], line_number);
        task.replicable = parse_bool(fields[3], line_number);
        tasks.push_back(std::move(task));
    }
    if (tasks.empty())
        throw std::invalid_argument{"chain CSV: no tasks found"};
    return TaskChain{std::move(tasks)};
}

TaskChain parse_chain_csv(const std::string& text)
{
    std::istringstream stream{text};
    return parse_chain_csv(stream);
}

void write_chain_csv(std::ostream& output, const TaskChain& chain)
{
    output << "name,w_big,w_little,replicable\n";
    for (int i = 1; i <= chain.size(); ++i) {
        const TaskDesc& task = chain.task(i);
        output << task.name << ',' << task.w_big << ',' << task.w_little << ','
               << (task.replicable ? 1 : 0) << '\n';
    }
}

std::string chain_to_csv(const TaskChain& chain)
{
    std::ostringstream stream;
    write_chain_csv(stream, chain);
    return stream.str();
}

Solution parse_decomposition(const std::string& text)
{
    std::vector<Stage> stages;
    int next_first = 1;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const auto open = text.find('(', pos);
        if (open == std::string::npos)
            break;
        const auto comma = text.find(',', open);
        const auto close = text.find(')', open);
        if (comma == std::string::npos || close == std::string::npos || comma > close)
            throw std::invalid_argument{"decomposition: malformed stage near '"
                                        + text.substr(open, 8) + "'"};
        const int count = std::atoi(text.substr(open + 1, comma - open - 1).c_str());
        const std::string cores_type = text.substr(comma + 1, close - comma - 1);
        if (count < 1 || cores_type.size() < 2)
            throw std::invalid_argument{"decomposition: bad stage '"
                                        + text.substr(open, close - open + 1) + "'"};
        const char type_char = cores_type.back();
        if (type_char != 'B' && type_char != 'L')
            throw std::invalid_argument{"decomposition: core type must be B or L"};
        const int cores = std::atoi(cores_type.substr(0, cores_type.size() - 1).c_str());
        if (cores < 1)
            throw std::invalid_argument{"decomposition: core count must be >= 1"};
        stages.push_back(Stage{next_first, next_first + count - 1, cores,
                               type_char == 'B' ? CoreType::big : CoreType::little});
        next_first += count;
        pos = close + 1;
    }
    if (stages.empty())
        throw std::invalid_argument{"decomposition: no stages found"};
    return Solution{std::move(stages)};
}

} // namespace amp::core
