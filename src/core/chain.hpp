#pragma once
// Task-chain model of the paper's §III problem formulation.
//
// A linear chain of n tasks, each either replicable (stateless) or sequential
// (stateful), with one computation weight (latency) per core type. Tasks are
// 1-based, matching the paper's pseudocode, so that interval [s, e] means
// tasks tau_s..tau_e inclusive.

#include <cassert>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace amp::core {

/// The two kinds of cores of the asymmetric multicore (paper's B and L).
enum class CoreType : std::uint8_t { big = 0, little = 1 };

[[nodiscard]] constexpr CoreType other(CoreType v) noexcept
{
    return v == CoreType::big ? CoreType::little : CoreType::big;
}

[[nodiscard]] constexpr const char* to_string(CoreType v) noexcept
{
    return v == CoreType::big ? "B" : "L";
}

/// Available resources R = (b, l).
struct Resources {
    int big = 0;
    int little = 0;

    [[nodiscard]] constexpr int total() const noexcept { return big + little; }
    [[nodiscard]] constexpr int count(CoreType v) const noexcept
    {
        return v == CoreType::big ? big : little;
    }
    constexpr int& count(CoreType v) noexcept
    {
        return v == CoreType::big ? big : little;
    }
    [[nodiscard]] constexpr bool operator==(const Resources&) const noexcept = default;
};

/// One task of the chain: weights per core type and the replicability flag.
struct TaskDesc {
    std::string name;
    double w_big = 0.0;
    double w_little = 0.0;
    bool replicable = false;
    /// Per-task energy weight: a dimensionless multiplier on the task's
    /// active energy (energy of running task i on core type v is
    /// energy * w(i, v) * watts(v), see core/power.hpp). 1.0 models a task
    /// whose energy is proportional to its runtime; memory-bound or
    /// accelerator-offloaded tasks can scale it. Must be strictly positive.
    double energy = 1.0;
};

constexpr double kInfiniteWeight = std::numeric_limits<double>::infinity();

/// Immutable task chain with O(1) interval-weight and interval-replicability
/// queries (two prefix sums plus a next-sequential-task index, instead of the
/// paper's O(n^2) precomputed table).
class TaskChain {
public:
    TaskChain() = default;
    explicit TaskChain(std::vector<TaskDesc> tasks);

    [[nodiscard]] int size() const noexcept { return static_cast<int>(tasks_.size()); }
    [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }

    /// Task descriptor, i in [1, n].
    [[nodiscard]] const TaskDesc& task(int i) const
    {
        assert(i >= 1 && i <= size());
        return tasks_[static_cast<std::size_t>(i - 1)];
    }

    [[nodiscard]] double weight(int i, CoreType v) const
    {
        const auto& t = task(i);
        return v == CoreType::big ? t.w_big : t.w_little;
    }

    [[nodiscard]] bool replicable(int i) const { return task(i).replicable; }

    /// Sum of weights of tasks s..e (inclusive) on core type v; 0 if s > e.
    [[nodiscard]] double interval_sum(int s, int e, CoreType v) const
    {
        assert(s >= 1 && e <= size());
        if (s > e)
            return 0.0;
        const auto& prefix = v == CoreType::big ? prefix_big_ : prefix_little_;
        return prefix[static_cast<std::size_t>(e)] - prefix[static_cast<std::size_t>(s - 1)];
    }

    /// Energy-weighted work of tasks s..e on core type v:
    /// sum of energy_i * w(i, v). This is the active energy of the interval
    /// per stream item up to the core type's watts factor (core/power.hpp);
    /// replication-invariant, so energy objectives decompose over stages.
    [[nodiscard]] double energy_sum(int s, int e, CoreType v) const
    {
        assert(s >= 1 && e <= size());
        if (s > e)
            return 0.0;
        const auto& prefix = v == CoreType::big ? eprefix_big_ : eprefix_little_;
        return prefix[static_cast<std::size_t>(e)] - prefix[static_cast<std::size_t>(s - 1)];
    }

    /// IsRep (Algo 3): true iff no sequential task lies in [s, e].
    [[nodiscard]] bool interval_replicable(int s, int e) const
    {
        assert(s >= 1);
        if (s > e)
            return true;
        return next_sequential_[static_cast<std::size_t>(s)] > e;
    }

    /// FinalRepTask (Algo 3): the largest i >= e such that [s, i] is still
    /// replicable (assumes [s, e] is replicable).
    [[nodiscard]] int final_replicable_task(int s, [[maybe_unused]] int e) const
    {
        assert(interval_replicable(s, e));
        return next_sequential_[static_cast<std::size_t>(s)] - 1;
    }

    /// Stage weight w(s, r, v) per the paper's Eq. (1).
    [[nodiscard]] double stage_weight(int s, int e, int r, CoreType v) const
    {
        if (r < 1)
            return kInfiniteWeight;
        const double sum = interval_sum(s, e, v);
        if (interval_replicable(s, e))
            return sum / static_cast<double>(r);
        return sum;
    }

    /// Largest single-task weight on core type v (0 for an empty chain).
    [[nodiscard]] double max_weight(CoreType v) const noexcept
    {
        return v == CoreType::big ? max_w_big_ : max_w_little_;
    }

    /// Largest sequential-task weight on core type v (0 if all replicable).
    [[nodiscard]] double max_sequential_weight(CoreType v) const noexcept
    {
        return v == CoreType::big ? max_seq_w_big_ : max_seq_w_little_;
    }

    /// Number of replicable tasks.
    [[nodiscard]] int replicable_count() const noexcept { return replicable_count_; }

    /// 64-bit FNV-1a digest of the chain's scheduling-relevant content
    /// (task count, per-task weights, replicability flags and energy
    /// weights; names are ignored). Computed once at construction; used as
    /// the chain identity in svc::SolverService's solution cache. Energy
    /// weights are part of the digest because they change what an
    /// energy-objective solve returns -- two chains differing only in
    /// energy must not share cache identity.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fingerprint_; }

    /// Second digest of the same content, built with an independent hash
    /// construction (splitmix64 chaining instead of FNV-1a). The solution
    /// cache keys on both digests plus the task count, so a silent cache
    /// collision needs two unrelated 64-bit hashes to collide at once on
    /// chains of equal length.
    [[nodiscard]] std::uint64_t fingerprint2() const noexcept { return fingerprint2_; }

    /// Fraction of replicable tasks (the paper's stateless ratio, SR).
    [[nodiscard]] double stateless_ratio() const noexcept
    {
        return empty() ? 0.0 : static_cast<double>(replicable_count_) / size();
    }

private:
    std::vector<TaskDesc> tasks_;
    std::vector<double> prefix_big_;    // prefix_big_[i] = sum of w^B of tasks 1..i
    std::vector<double> prefix_little_; // prefix_little_[i] = sum of w^L of tasks 1..i
    std::vector<double> eprefix_big_;    // eprefix_big_[i] = sum of e * w^B of tasks 1..i
    std::vector<double> eprefix_little_; // eprefix_little_[i] = sum of e * w^L of tasks 1..i
    std::vector<int> next_sequential_;  // next_sequential_[i] = min j >= i with tau_j
                                        // sequential, or n+1 if none (index 0 unused)
    double max_w_big_ = 0.0;
    double max_w_little_ = 0.0;
    double max_seq_w_big_ = 0.0;
    double max_seq_w_little_ = 0.0;
    int replicable_count_ = 0;
    std::uint64_t fingerprint_ = 0;
    std::uint64_t fingerprint2_ = 0;
};

} // namespace amp::core
