#pragma once
// Power model for schedules (paper §III and future work: "use direct power
// measurements instead of assumptions about the architectures").
//
// The paper's secondary objective treats little-core usage as a power proxy;
// this extension makes the proxy explicit: each core type has an active
// power draw, and a solution's power is the draw of the cores it uses. An
// energy-per-bit metric combines it with the achieved period.

#include "core/chain.hpp"
#include "core/solution.hpp"

namespace amp::core {

struct PowerModel {
    double big_watts = 4.0;    ///< active power of one big core
    double little_watts = 1.0; ///< active power of one little core
    double idle_watts = 0.1;   ///< per unused-but-powered core (optional)
};

/// Active power draw of a solution: cores used x per-type power.
[[nodiscard]] double solution_power(const Solution& solution, const PowerModel& model);

/// Total platform power including idle cores that remain powered.
[[nodiscard]] double platform_power(const Solution& solution, const Resources& machine,
                                    const PowerModel& model);

/// Energy per processed stream item: power x period (J if period in s;
/// returns watt-microseconds for microsecond periods).
[[nodiscard]] double energy_per_item(const TaskChain& chain, const Solution& solution,
                                     const PowerModel& model);

/// Pipeline latency of a solution: the time one item spends traversing all
/// stages (sum of stage latencies; a replicated stage's latency is its full
/// interval time, not the divided weight). The paper's future work calls out
/// shorter pipelines; this is the metric that captures them.
[[nodiscard]] double pipeline_latency(const TaskChain& chain, const Solution& solution);

} // namespace amp::core
