#pragma once
// Power and energy model for schedules (paper §III and future work: "use
// direct power measurements instead of assumptions about the architectures";
// the follow-up paper makes per-core-type power explicit).
//
// The paper's secondary objective treats little-core usage as a power proxy;
// this extension makes the proxy explicit: each core type has an active
// power draw, and idle-but-powered cores a (smaller) idle draw.
//
// Two energy metrics, with deliberately different scopes:
//
//   * energy_per_item -- ACTIVE energy only: the energy spent computing one
//     stream item, sum over stages of watts(type) * energy-weighted work of
//     the stage's interval (TaskChain::energy_sum). Replication-invariant
//     (each item is processed exactly once regardless of the replica count)
//     and period-invariant (idle slack burns no active energy), so it is
//     additive over stages -- the property the EnergyHeRAD DP
//     (core/energy.hpp) relies on for exact optimality.
//   * platform_energy_per_item -- active energy PLUS idle draw: every
//     core-microsecond of the machine over one period is either active
//     (covered above) or idle (machine.total() * period minus the busy
//     core-time), charged at idle_watts. Use this one for brownout and
//     Pareto comparisons where keeping cores powered has a real cost;
//     energy_per_item alone would rank a 10-core and a 2-core schedule of
//     equal active work as equally cheap.

#include "core/chain.hpp"
#include "core/solution.hpp"

namespace amp::core {

struct PowerModel {
    double big_watts = 4.0;    ///< active power of one big core
    double little_watts = 1.0; ///< active power of one little core
    double idle_watts = 0.1;   ///< per unused-but-powered core (optional)

    [[nodiscard]] constexpr double watts(CoreType v) const noexcept
    {
        return v == CoreType::big ? big_watts : little_watts;
    }

    [[nodiscard]] constexpr bool operator==(const PowerModel&) const noexcept = default;
};

/// Active power draw of a solution: cores used x per-type power.
[[nodiscard]] double solution_power(const Solution& solution, const PowerModel& model);

/// Total platform power including idle cores that remain powered. Throws
/// std::invalid_argument when the solution uses more cores of either type
/// than the machine has -- such a "negative idle" budget overrun used to be
/// silently clamped to zero idle draw, under-reporting platform power for
/// exactly the solutions that are already invalid for the machine.
[[nodiscard]] double platform_power(const Solution& solution, const Resources& machine,
                                    const PowerModel& model);

/// ACTIVE energy per processed stream item (see the header comment): sum
/// over stages of watts(stage type) x chain.energy_sum(stage interval).
/// Watt-microseconds for microsecond weights. Ignores idle cores entirely;
/// use platform_energy_per_item when idle draw matters.
[[nodiscard]] double energy_per_item(const TaskChain& chain, const Solution& solution,
                                     const PowerModel& model);

/// Active energy plus idle draw per item: energy_per_item +
/// idle_watts x (machine.total() x period - busy core-time per item), where
/// the busy core-time is the sum of the stages' interval times (each item
/// crosses every task once). Throws std::invalid_argument on a per-type
/// budget overrun, like platform_power.
[[nodiscard]] double platform_energy_per_item(const TaskChain& chain, const Solution& solution,
                                              const Resources& machine, const PowerModel& model);

/// Pipeline latency of a solution: the time one item spends traversing all
/// stages (sum of stage latencies; a replicated stage's latency is its full
/// interval time, not the divided weight). The paper's future work calls out
/// shorter pipelines; this is the metric that captures them.
[[nodiscard]] double pipeline_latency(const TaskChain& chain, const Solution& solution);

} // namespace amp::core
