#include "core/brute_force.hpp"

#include <algorithm>
#include <cmath>

namespace amp::core {

namespace {

constexpr double kTieTol = 1e-12;

struct Enumerator {
    const TaskChain& chain;
    Resources budget;
    double best_period = kInfiniteWeight;
    // All optimal-period (usage, solution) pairs found so far.
    std::vector<std::pair<Resources, Solution>> optimal;
    std::vector<Stage> current;

    void record(double period)
    {
        Solution solution{current};
        if (period < best_period - kTieTol) {
            best_period = period;
            optimal.clear();
        }
        optimal.emplace_back(solution.used(), std::move(solution));
    }

    void recurse(int s, Resources available, double period_so_far)
    {
        // Prune: this branch can no longer beat or tie the best period.
        if (period_so_far > best_period + kTieTol)
            return;
        const int n = chain.size();
        for (int e = s; e <= n; ++e) {
            const bool replicable = chain.interval_replicable(s, e);
            for (const CoreType v : {CoreType::big, CoreType::little}) {
                // Extra cores on a stage with a sequential task change
                // nothing (Eq. 1), so one core suffices for those stages.
                const int max_r = replicable ? available.count(v) : std::min(available.count(v), 1);
                for (int r = 1; r <= max_r; ++r) {
                    const double weight = chain.stage_weight(s, e, r, v);
                    const double period = std::max(period_so_far, weight);
                    if (period > best_period + kTieTol)
                        continue;
                    current.push_back(Stage{s, e, r, v});
                    if (e == n) {
                        record(period);
                    } else {
                        Resources remaining = available;
                        remaining.count(v) -= r;
                        recurse(e + 1, remaining, period);
                    }
                    current.pop_back();
                }
            }
        }
    }
};

} // namespace

BruteForceResult brute_force(const TaskChain& chain, Resources resources)
{
    BruteForceResult result;
    if (chain.empty() || resources.total() < 1)
        return result;

    Enumerator enumerator{.chain = chain, .budget = resources, .best_period = kInfiniteWeight,
                          .optimal = {}, .current = {}};
    enumerator.recurse(1, resources, 0.0);
    result.optimal_period = enumerator.best_period;

    // Keep only solutions whose period actually ties the best (the running
    // prune lets slightly-worse-than-best-at-the-time entries linger).
    std::vector<std::pair<Resources, Solution>> tied;
    for (auto& [usage, solution] : enumerator.optimal)
        if (solution.period(chain) <= enumerator.best_period + kTieTol)
            tied.emplace_back(usage, std::move(solution));

    // Pareto-filter the usages.
    for (std::size_t i = 0; i < tied.size(); ++i) {
        const Resources& u = tied[i].first;
        bool dominated = false;
        for (std::size_t k = 0; k < tied.size() && !dominated; ++k) {
            if (k == i)
                continue;
            const Resources& w = tied[k].first;
            if (w.big <= u.big && w.little <= u.little && (w.big < u.big || w.little < u.little))
                dominated = true;
        }
        if (dominated)
            continue;
        const bool duplicate =
            std::any_of(result.pareto_usages.begin(), result.pareto_usages.end(),
                        [&](const Resources& seen) { return seen == u; });
        if (!duplicate) {
            result.pareto_usages.push_back(u);
            result.pareto_solutions.push_back(std::move(tied[i].second));
        }
    }
    return result;
}

double brute_force_optimal_period(const TaskChain& chain, Resources resources)
{
    return brute_force(chain, resources).optimal_period;
}

namespace {

/// Enumerates every schedule with period <= target, tracking the cheapest
/// by active energy. Same stage enumeration as Enumerator, but the prune is
/// the fixed target instead of the best period found so far.
struct EnergyEnumerator {
    const TaskChain& chain;
    const PowerModel& model;
    double target;
    double best_energy = kInfiniteWeight;
    Solution best;
    std::vector<Stage> current;

    void recurse(int s, Resources available, double energy_so_far)
    {
        if (energy_so_far >= best_energy)
            return; // energy is additive and positive: cannot improve
        const int n = chain.size();
        for (int e = s; e <= n; ++e) {
            const bool replicable = chain.interval_replicable(s, e);
            for (const CoreType v : {CoreType::big, CoreType::little}) {
                const int max_r = replicable ? available.count(v) : std::min(available.count(v), 1);
                const double stage_energy = model.watts(v) * chain.energy_sum(s, e, v);
                const double energy = energy_so_far + stage_energy;
                if (energy >= best_energy)
                    continue;
                for (int r = 1; r <= max_r; ++r) {
                    if (chain.stage_weight(s, e, r, v) > target * (1.0 + kTieTol))
                        continue;
                    current.push_back(Stage{s, e, r, v});
                    if (e == n) {
                        if (energy < best_energy) { // first minimal-energy find wins
                            best_energy = energy;
                            best = Solution{current};
                        }
                    } else {
                        Resources remaining = available;
                        remaining.count(v) -= r;
                        recurse(e + 1, remaining, energy);
                    }
                    current.pop_back();
                }
            }
        }
    }
};

} // namespace

EnergyBruteForceResult brute_force_min_energy(const TaskChain& chain, Resources resources,
                                              double target_period, const PowerModel& model)
{
    EnergyBruteForceResult result;
    if (chain.empty() || resources.total() < 1 || !(target_period > 0.0))
        return result;
    EnergyEnumerator enumerator{.chain = chain, .model = model, .target = target_period,
                                .best_energy = kInfiniteWeight, .best = {}, .current = {}};
    enumerator.recurse(1, resources, 0.0);
    result.best_energy = enumerator.best_energy;
    result.best_solution = std::move(enumerator.best);
    return result;
}

} // namespace amp::core
