#include "core/chain.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace amp::core {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

constexpr std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) noexcept
{
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (byte * 8)) & 0xffull;
        hash *= kFnvPrime;
    }
    return hash;
}

constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

TaskChain::TaskChain(std::vector<TaskDesc> tasks)
    : tasks_(std::move(tasks))
{
    const auto n = static_cast<int>(tasks_.size());
    for (const auto& t : tasks_) {
        if (!(t.w_big > 0.0) || !(t.w_little > 0.0))
            throw std::invalid_argument{
                "TaskChain: task weights must be strictly positive (task '" + t.name + "')"};
        if (!(t.energy > 0.0))
            throw std::invalid_argument{
                "TaskChain: task energy weights must be strictly positive (task '" + t.name
                + "')"};
    }

    prefix_big_.assign(static_cast<std::size_t>(n) + 1, 0.0);
    prefix_little_.assign(static_cast<std::size_t>(n) + 1, 0.0);
    eprefix_big_.assign(static_cast<std::size_t>(n) + 1, 0.0);
    eprefix_little_.assign(static_cast<std::size_t>(n) + 1, 0.0);
    for (int i = 1; i <= n; ++i) {
        const auto& t = tasks_[static_cast<std::size_t>(i - 1)];
        prefix_big_[static_cast<std::size_t>(i)] =
            prefix_big_[static_cast<std::size_t>(i - 1)] + t.w_big;
        prefix_little_[static_cast<std::size_t>(i)] =
            prefix_little_[static_cast<std::size_t>(i - 1)] + t.w_little;
        eprefix_big_[static_cast<std::size_t>(i)] =
            eprefix_big_[static_cast<std::size_t>(i - 1)] + t.energy * t.w_big;
        eprefix_little_[static_cast<std::size_t>(i)] =
            eprefix_little_[static_cast<std::size_t>(i - 1)] + t.energy * t.w_little;
    }

    next_sequential_.assign(static_cast<std::size_t>(n) + 2, n + 1);
    for (int i = n; i >= 1; --i) {
        const auto& t = tasks_[static_cast<std::size_t>(i - 1)];
        next_sequential_[static_cast<std::size_t>(i)] =
            t.replicable ? next_sequential_[static_cast<std::size_t>(i + 1)] : i;
    }

    for (const auto& t : tasks_) {
        max_w_big_ = std::max(max_w_big_, t.w_big);
        max_w_little_ = std::max(max_w_little_, t.w_little);
        if (t.replicable) {
            ++replicable_count_;
        } else {
            max_seq_w_big_ = std::max(max_seq_w_big_, t.w_big);
            max_seq_w_little_ = std::max(max_seq_w_little_, t.w_little);
        }
    }

    std::uint64_t hash = fnv1a(kFnvOffset, static_cast<std::uint64_t>(n));
    std::uint64_t hash2 = splitmix64(static_cast<std::uint64_t>(n));
    for (const auto& t : tasks_) {
        hash = fnv1a(hash, std::bit_cast<std::uint64_t>(t.w_big));
        hash = fnv1a(hash, std::bit_cast<std::uint64_t>(t.w_little));
        hash = fnv1a(hash, t.replicable ? 1u : 0u);
        hash = fnv1a(hash, std::bit_cast<std::uint64_t>(t.energy));
        hash2 = splitmix64(hash2 ^ std::bit_cast<std::uint64_t>(t.w_big));
        hash2 = splitmix64(hash2 ^ std::bit_cast<std::uint64_t>(t.w_little));
        hash2 = splitmix64(hash2 ^ (t.replicable ? 1u : 0u));
        hash2 = splitmix64(hash2 ^ std::bit_cast<std::uint64_t>(t.energy));
    }
    fingerprint_ = hash;
    fingerprint2_ = hash2;
}

} // namespace amp::core
