#include "core/chain.hpp"

#include <algorithm>
#include <stdexcept>

namespace amp::core {

TaskChain::TaskChain(std::vector<TaskDesc> tasks)
    : tasks_(std::move(tasks))
{
    const auto n = static_cast<int>(tasks_.size());
    for (const auto& t : tasks_) {
        if (!(t.w_big > 0.0) || !(t.w_little > 0.0))
            throw std::invalid_argument{
                "TaskChain: task weights must be strictly positive (task '" + t.name + "')"};
    }

    prefix_big_.assign(static_cast<std::size_t>(n) + 1, 0.0);
    prefix_little_.assign(static_cast<std::size_t>(n) + 1, 0.0);
    for (int i = 1; i <= n; ++i) {
        prefix_big_[static_cast<std::size_t>(i)] =
            prefix_big_[static_cast<std::size_t>(i - 1)] + tasks_[static_cast<std::size_t>(i - 1)].w_big;
        prefix_little_[static_cast<std::size_t>(i)] =
            prefix_little_[static_cast<std::size_t>(i - 1)] + tasks_[static_cast<std::size_t>(i - 1)].w_little;
    }

    next_sequential_.assign(static_cast<std::size_t>(n) + 2, n + 1);
    for (int i = n; i >= 1; --i) {
        const auto& t = tasks_[static_cast<std::size_t>(i - 1)];
        next_sequential_[static_cast<std::size_t>(i)] =
            t.replicable ? next_sequential_[static_cast<std::size_t>(i + 1)] : i;
    }

    for (const auto& t : tasks_) {
        max_w_big_ = std::max(max_w_big_, t.w_big);
        max_w_little_ = std::max(max_w_little_, t.w_little);
        if (t.replicable) {
            ++replicable_count_;
        } else {
            max_seq_w_big_ = std::max(max_seq_w_big_, t.w_big);
            max_seq_w_little_ = std::max(max_seq_w_little_, t.w_little);
        }
    }
}

} // namespace amp::core
