#pragma once
// Energy-minimizing strategy variants: min active energy per item subject to
// period <= target (the Objective::min_energy_under_period objective of
// core::schedule; docs/ENERGY.md).
//
// The objective relies on the active-energy metric being additive over
// stages (core/power.hpp): a stage's energy is watts(type) x energy-weighted
// interval work, independent of its replica count and of the achieved
// period. Under that model:
//
//   * EnergyHeRAD -- exact DP. E(j, rb, rl) = minimum energy of scheduling
//     tasks 1..j with at most rb big and rl little cores, every stage
//     weight <= T. A stage's energy does not depend on its core count, so
//     each candidate stage [s, j] on type v needs only its MINIMUM feasible
//     core count (RequiredCores for replicable intervals, one core -- and
//     weight <= T -- for intervals containing a sequential task), and the
//     recurrence over stage starts is exact: O(n^2 b l) time, O(n b l)
//     space. Deterministic tie-breaking (strict improvement, fixed
//     iteration order), so equal requests return bit-identical solutions --
//     the property the solution cache relies on.
//   * Energy-greedy FERTAC/2CATAC -- the paper's greedy stage builders run
//     at the fixed target period (no binary search), choosing the
//     energy-cheaper core type instead of the little-first/core-exchange
//     secondary objective.
//   * Energy OTAC (B)/(L) -- the homogeneous greedy packing at the fixed
//     target; on a single core type the active energy of every feasible
//     schedule is identical, so feasibility at T is the whole problem.
//
// All functions return an empty Solution when no schedule meets the target
// within the budget. Callers go through core::schedule(ScheduleRequest)
// with Objective::min_energy_under_period; these entry points live in
// core::detail like the period-objective strategies.

#include "core/chain.hpp"
#include "core/power.hpp"
#include "core/solution.hpp"

namespace amp::core::detail {

/// Exact minimum-energy schedule with period <= target_period. Optimal
/// among ALL feasible schedules (pinned against brute force in
/// tests_energy). merge_stages runs the same period- and energy-neutral
/// replicable-stage merge post-pass as HeRAD.
[[nodiscard]] Solution energy_herad(const TaskChain& chain, Resources resources,
                                    double target_period, const PowerModel& model,
                                    bool merge_stages = true);

/// Greedy heuristic: FERTAC's stage builder at the fixed target, each stage
/// offered the core type whose energy rate for the stage's leading task is
/// cheaper first.
[[nodiscard]] Solution energy_fertac(const TaskChain& chain, Resources resources,
                                     double target_period, const PowerModel& model);

/// Greedy heuristic: 2CATAC's two-candidate recursion at the fixed target,
/// keeping the candidate with the lower total active energy.
[[nodiscard]] Solution energy_twocatac(const TaskChain& chain, Resources resources,
                                       double target_period, const PowerModel& model);

/// Homogeneous baseline: OTAC's greedy packing on `cores` cores of type v
/// at the fixed target (energy on one core type is schedule-invariant).
[[nodiscard]] Solution energy_otac(const TaskChain& chain, int cores, CoreType v,
                                   double target_period);

} // namespace amp::core::detail
