#include "core/otac.hpp"

#include <algorithm>
#include <stdexcept>

namespace amp::core {

Solution otac_compute_solution(const TaskChain& chain, int s, int cores, CoreType v,
                               double target_period)
{
    const int n = chain.size();
    const auto cut = compute_stage(chain, s, cores, v, target_period);
    const Stage stage{s, cut.end, cut.used, v};
    Resources available{};
    available.count(v) = cores;
    if (!stage_fits(chain, stage, available, target_period))
        return Solution{};
    if (stage.last == n)
        return Solution{{stage}};

    const int remaining = cores - stage.cores;
    Solution rest = otac_compute_solution(chain, stage.last + 1, remaining, v, target_period);
    Resources remaining_res{};
    remaining_res.count(v) = remaining;
    if (!rest.is_valid(chain, remaining_res, target_period))
        return Solution{};
    rest.prepend(stage);
    return rest;
}

Solution detail::otac(const TaskChain& chain, int cores, CoreType v, ScheduleStats* stats)
{
    if (chain.empty())
        return Solution{};
    if (cores < 1)
        throw std::invalid_argument{"otac: at least one core is required"};

    const int n = chain.size();
    const double sum = chain.interval_sum(1, n, v);
    const double period_min =
        std::max(sum / static_cast<double>(cores), chain.max_sequential_weight(v));
    const double period_max = period_min + chain.max_weight(v);
    const double epsilon = 1.0 / static_cast<double>(cores);

    Resources resources{};
    resources.count(v) = cores;
    return binary_search_period(
        chain, resources, period_min, period_max, epsilon, sum + 1.0,
        [cores, v](const TaskChain& c, int s, Resources, double period) {
            return otac_compute_solution(c, s, cores, v, period);
        },
        stats);
}

} // namespace amp::core
