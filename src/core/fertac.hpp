#pragma once
// FERTAC -- First Efficient Resources for TAsk Chains (paper §IV-A, Algo 4).
//
// Greedy heuristic that builds each stage with little cores first and falls
// back to big cores only when the little-core stage cannot respect the
// target period. Complexity O(n log(w_max (b + l)) + n) with the O(1)
// interval queries of TaskChain.

#include "core/chain.hpp"
#include "core/greedy_common.hpp"
#include "core/solution.hpp"

namespace amp::core {

/// Which core type FERTAC offers to each stage first. The paper's FERTAC is
/// little-first; big-first is the extension suggested by its §VI-E
/// observation that replicating the slowest stage on big cores sometimes
/// beats the expected-optimal schedule in practice.
enum class FertacPreference { little_first, big_first };

/// ComputeSolution for FERTAC (Algo 4): schedules tasks [s, n] given the
/// remaining resources and a target period; empty solution on failure.
[[nodiscard]] Solution
fertac_compute_solution(const TaskChain& chain, int s, Resources available,
                        double target_period,
                        FertacPreference preference = FertacPreference::little_first);

namespace detail {

/// Full FERTAC schedule (binary search of Algo 1 over Algo 4). Callers
/// outside the scheduling library itself should go through the unified
/// core::schedule(ScheduleRequest) API (core/scheduler.hpp).
[[nodiscard]] Solution fertac(const TaskChain& chain, Resources resources,
                              ScheduleStats* stats = nullptr,
                              FertacPreference preference = FertacPreference::little_first);

} // namespace detail

} // namespace amp::core
