#pragma once
// OTAC -- Optimal scheduling for pipelined and replicated TAsk Chains on
// HOMOGENEOUS resources (Orhan et al. 2023), the baseline the paper compares
// against. It is the binary search of Algo 1 over the greedy packing of
// Algo 2 restricted to a single core type: OTAC(B) uses only big cores,
// OTAC(L) only little cores.

#include "core/chain.hpp"
#include "core/greedy_common.hpp"
#include "core/solution.hpp"

namespace amp::core {

/// ComputeSolution for OTAC on `cores` cores of type v.
[[nodiscard]] Solution otac_compute_solution(const TaskChain& chain, int s, int cores,
                                             CoreType v, double target_period);

namespace detail {

/// Full OTAC schedule on a homogeneous pool of `cores` cores of type v.
/// Callers outside the scheduling library itself should go through the
/// unified core::schedule(ScheduleRequest) API (core/scheduler.hpp).
[[nodiscard]] Solution otac(const TaskChain& chain, int cores, CoreType v,
                            ScheduleStats* stats = nullptr);

} // namespace detail

} // namespace amp::core
