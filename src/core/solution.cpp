#include "core/solution.hpp"

#include <algorithm>
#include <sstream>

namespace amp::core {

double Solution::period(const TaskChain& chain) const
{
    if (stages_.empty())
        return kInfiniteWeight;
    double period = 0.0;
    for (const auto& st : stages_)
        period = std::max(period, chain.stage_weight(st.first, st.last, st.cores, st.type));
    return period;
}

int Solution::used(CoreType v) const noexcept
{
    int total = 0;
    for (const auto& st : stages_)
        if (st.type == v)
            total += st.cores;
    return total;
}

bool Solution::is_valid(const TaskChain& chain, const Resources& budget,
                        double target_period) const
{
    return !stages_.empty() && period(chain) <= target_period
        && used(CoreType::big) <= budget.big && used(CoreType::little) <= budget.little;
}

bool Solution::is_well_formed(const TaskChain& chain) const
{
    if (stages_.empty())
        return chain.empty();
    int expected_first = 1;
    for (const auto& st : stages_) {
        if (st.first != expected_first || st.last < st.first || st.cores < 1)
            return false;
        if (st.cores > 1 && !chain.interval_replicable(st.first, st.last))
            return false;
        expected_first = st.last + 1;
    }
    return expected_first == chain.size() + 1;
}

void Solution::merge_replicable_stages(const TaskChain& chain)
{
    if (stages_.size() < 2)
        return;
    std::vector<Stage> merged;
    merged.reserve(stages_.size());
    merged.push_back(stages_.front());
    for (std::size_t i = 1; i < stages_.size(); ++i) {
        Stage& prev = merged.back();
        const Stage& cur = stages_[i];
        const bool both_replicable = chain.interval_replicable(prev.first, prev.last)
            && chain.interval_replicable(cur.first, cur.last);
        if (both_replicable && prev.type == cur.type) {
            prev.last = cur.last;
            prev.cores += cur.cores;
        } else {
            merged.push_back(cur);
        }
    }
    stages_ = std::move(merged);
}

std::string Solution::decomposition() const
{
    std::ostringstream out;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        if (i != 0)
            out << ',';
        out << '(' << stages_[i].task_count() << ',' << stages_[i].cores
            << to_string(stages_[i].type) << ')';
    }
    return out.str();
}

} // namespace amp::core
