#include "core/twocatac.hpp"

namespace amp::core {

Solution choose_best_solution(const TaskChain& chain, Solution big_rooted,
                              Solution little_rooted, const Resources& budget,
                              double target_period)
{
    const bool big_valid = big_rooted.is_valid(chain, budget, target_period);
    const bool little_valid = little_rooted.is_valid(chain, budget, target_period);
    if (big_valid && little_valid) {
        const Resources use_b = big_rooted.used();
        const Resources use_l = little_rooted.used();
        if (use_b.little > use_l.little && use_b.big < use_l.big)
            return big_rooted; // big-rooted candidate exchanges big for little
        if (use_b.little < use_l.little && use_b.big > use_l.big)
            return little_rooted; // little-rooted candidate exchanges better
        if (use_b.total() < use_l.total())
            return big_rooted; // fewer cores in total
        return little_rooted;
    }
    if (big_valid)
        return big_rooted;
    if (little_valid)
        return little_rooted;
    return Solution{};
}

Solution twocatac_compute_solution(const TaskChain& chain, int s, Resources available,
                                   double target_period)
{
    const int n = chain.size();
    Solution candidate[2];

    for (const CoreType v : {CoreType::big, CoreType::little}) {
        Solution& out = candidate[v == CoreType::big ? 0 : 1];
        const auto cut = compute_stage(chain, s, available.count(v), v, target_period);
        const Stage stage{s, cut.end, cut.used, v};
        if (!stage_fits(chain, stage, available, target_period)) {
            out = Solution{}; // no valid stage with this core type
        } else if (stage.last == n) {
            out = Solution{{stage}}; // valid final stage
        } else {
            Resources remaining = available;
            remaining.count(v) -= stage.cores;
            Solution rest =
                twocatac_compute_solution(chain, stage.last + 1, remaining, target_period);
            if (rest.is_valid(chain, remaining, target_period)) {
                rest.prepend(stage);
                out = std::move(rest);
            } else {
                out = Solution{};
            }
        }
    }

    return choose_best_solution(chain, std::move(candidate[0]), std::move(candidate[1]),
                                available, target_period);
}

Solution detail::twocatac(const TaskChain& chain, Resources resources, ScheduleStats* stats)
{
    return schedule_with_binary_search(
        chain, resources,
        [](const TaskChain& c, int s, Resources avail, double period) {
            return twocatac_compute_solution(c, s, avail, period);
        },
        stats);
}

} // namespace amp::core
