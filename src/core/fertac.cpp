#include "core/fertac.hpp"

namespace amp::core {

Solution fertac_compute_solution(const TaskChain& chain, int s, Resources available,
                                 double target_period, FertacPreference preference)
{
    const int n = chain.size();

    // Preferred core type first; the other only if no valid stage exists.
    const CoreType first =
        preference == FertacPreference::little_first ? CoreType::little : CoreType::big;
    const CoreType second = other(first);

    auto cut = compute_stage(chain, s, available.count(first), first, target_period);
    Stage stage{s, cut.end, cut.used, first};
    if (!stage_fits(chain, stage, available, target_period)) {
        cut = compute_stage(chain, s, available.count(second), second, target_period);
        stage = Stage{s, cut.end, cut.used, second};
        if (!stage_fits(chain, stage, available, target_period))
            return Solution{}; // no valid stage with either core type
    }

    if (stage.last == n)
        return Solution{{stage}};

    available.count(stage.type) -= stage.cores;
    Solution rest =
        fertac_compute_solution(chain, stage.last + 1, available, target_period, preference);
    if (!rest.is_valid(chain, available, target_period))
        return Solution{};
    rest.prepend(stage);
    return rest;
}

Solution detail::fertac(const TaskChain& chain, Resources resources, ScheduleStats* stats,
                        FertacPreference preference)
{
    return schedule_with_binary_search(
        chain, resources,
        [preference](const TaskChain& c, int s, Resources avail, double period) {
            return fertac_compute_solution(c, s, avail, period, preference);
        },
        stats);
}

} // namespace amp::core
