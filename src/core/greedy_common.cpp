#include "core/greedy_common.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amp::core {

namespace {

// Relative tolerance for period comparisons: profiles are fractional
// microseconds, and replicated stage weights divide sums by core counts.
constexpr double kRelTol = 1e-9;

} // namespace

int max_packing(const TaskChain& chain, int s, int c, CoreType v, double P)
{
    const int n = chain.size();
    if (c < 1)
        return s; // no cores: forced single task; caller will reject the stage
    // Stage weight is non-decreasing in the end index (weights are positive
    // and replicability can only be lost), so binary search applies.
    int lo = s;      // always packable per the paper's max(s, ...)
    int hi = n;
    while (lo < hi) {
        const int mid = lo + (hi - lo + 1) / 2;
        if (chain.stage_weight(s, mid, c, v) <= P)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

int required_cores(const TaskChain& chain, int s, int e, CoreType v, double P)
{
    const double weight = chain.interval_sum(s, e, v);
    const double exact = weight / P;
    return std::max(1, static_cast<int>(std::ceil(exact * (1.0 - kRelTol))));
}

StageCut compute_stage(const TaskChain& chain, int s, int c, CoreType v, double P)
{
    const int n = chain.size();
    int e = max_packing(chain, s, 1, v, P);
    int u = required_cores(chain, s, e, v, P);
    if (e != n && chain.interval_replicable(s, e)) {
        e = chain.final_replicable_task(s, e);
        u = required_cores(chain, s, e, v, P);
        if (u > c) {
            // Not enough cores for the full replicable run: keep what fits.
            e = max_packing(chain, s, c, v, P);
            u = c;
        } else if (e != n && u > 1) {
            // A sequential task follows. Check whether shrinking this stage
            // by one core lets the leftover tasks ride along with the next
            // stage on a single core (Algo 2, lines 8-12).
            const int f = max_packing(chain, s, u - 1, v, P);
            if (chain.stage_weight(s, f, u - 1, v) <= P
                && required_cores(chain, f + 1, e + 1, v, P) == 1) {
                e = f;
                u = u - 1;
            }
        }
    }
    return {e, u};
}

bool stage_fits(const TaskChain& chain, const Stage& stage, const Resources& available, double P)
{
    return stage.cores >= 1 && stage.cores <= available.count(stage.type)
        && chain.stage_weight(stage.first, stage.last, stage.cores, stage.type) <= P;
}

Solution binary_search_period(const TaskChain& chain, Resources resources, double period_min,
                              double period_max, double epsilon, double fallback_period_cap,
                              const ComputeSolutionFn& compute, ScheduleStats* stats)
{
    Solution best;
    int iterations = 0;

    auto search = [&](double lo, double hi) {
        while (hi - lo >= epsilon) {
            ++iterations;
            const double mid = (hi + lo) / 2.0;
            Solution candidate = compute(chain, 1, resources, mid);
            if (candidate.is_valid(chain, resources, mid)) {
                best = std::move(candidate);
                hi = best.period(chain);
            } else {
                lo = mid;
            }
        }
        return std::pair{lo, hi};
    };

    auto [lo, hi] = search(period_min, period_max);

    if (best.empty() && fallback_period_cap > period_max) {
        // The paper's upper bound assumes tasks run fastest on big cores; for
        // other weight profiles it can be infeasible. Retry up to the period
        // of the trivial one-stage schedule, which every greedy satisfies.
        std::tie(lo, hi) = search(period_max, fallback_period_cap);
        if (best.empty()) {
            // The cap itself is feasible by construction; take it verbatim.
            Solution candidate = compute(chain, 1, resources, fallback_period_cap);
            if (candidate.is_valid(chain, resources, fallback_period_cap))
                best = std::move(candidate);
        }
    }

    if (stats != nullptr)
        *stats = {iterations, lo, hi};
    return best;
}

Solution schedule_with_binary_search(const TaskChain& chain, Resources resources,
                                     const ComputeSolutionFn& compute, ScheduleStats* stats)
{
    if (chain.empty())
        return Solution{};
    if (resources.total() < 1)
        throw std::invalid_argument{"schedule: at least one core is required"};

    const int n = chain.size();
    const double sum_big = chain.interval_sum(1, n, CoreType::big);
    const double sum_little = chain.interval_sum(1, n, CoreType::little);
    const double period_min = std::max(sum_big / static_cast<double>(resources.total()),
                                       chain.max_sequential_weight(CoreType::big));
    const double period_max = period_min + chain.max_weight(CoreType::little);
    const double epsilon = 1.0 / static_cast<double>(resources.total());
    const double cap = std::max(sum_big, sum_little) + 1.0;
    return binary_search_period(chain, resources, period_min, period_max, epsilon, cap, compute,
                                stats);
}

} // namespace amp::core
