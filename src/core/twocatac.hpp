#pragma once
// 2CATAC -- Two-Choice Allocation for TAsk Chains (paper §IV-B, Algos 5-6).
//
// Greedy heuristic that builds each stage with BOTH core types and keeps the
// candidate that better serves the secondary objective (exchange big cores
// for little ones; otherwise use fewer cores). Worst-case exponential in the
// number of stages, but fast in practice for replicable-heavy chains.

#include "core/chain.hpp"
#include "core/greedy_common.hpp"
#include "core/solution.hpp"

namespace amp::core {

/// ChooseBestSolution (Algo 6): picks between the big-rooted and the
/// little-rooted candidate solutions. Exposed for unit testing.
[[nodiscard]] Solution choose_best_solution(const TaskChain& chain, Solution big_rooted,
                                            Solution little_rooted, const Resources& budget,
                                            double target_period);

/// ComputeSolution for 2CATAC (Algo 5).
[[nodiscard]] Solution twocatac_compute_solution(const TaskChain& chain, int s,
                                                 Resources available, double target_period);

namespace detail {

/// Full 2CATAC schedule (binary search of Algo 1 over Algo 5). Callers
/// outside the scheduling library itself should go through the unified
/// core::schedule(ScheduleRequest) API (core/scheduler.hpp).
[[nodiscard]] Solution twocatac(const TaskChain& chain, Resources resources,
                                ScheduleStats* stats = nullptr);

} // namespace detail

} // namespace amp::core
