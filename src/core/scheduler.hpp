#pragma once
// Umbrella header and unified scheduling API.
//
// The single entry point is `schedule(const ScheduleRequest&)`: it validates
// the request, dispatches to the strategy implementation, and returns a
// `ScheduleResult` carrying the solution, the binary-search stats, an
// explicit error status, and the solve latency. The old per-strategy free
// functions (`herad`, `fertac`, `otac`, `twocatac`) are gone -- the
// strategy implementations live in `core::detail` and are reachable only
// through this API; see docs/SOLVER_SERVICE.md for the batched, caching
// solver service built on top of it.

#include "core/brute_force.hpp"
#include "core/chain.hpp"
#include "core/energy.hpp"
#include "core/fertac.hpp"
#include "core/greedy_common.hpp"
#include "core/herad.hpp"
#include "core/otac.hpp"
#include "core/power.hpp"
#include "core/solution.hpp"
#include "core/twocatac.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace amp::core {

/// Every strategy evaluated in the paper.
enum class Strategy { herad, twocatac, fertac, otac_big, otac_little };

inline constexpr Strategy kAllStrategies[] = {Strategy::herad, Strategy::twocatac,
                                              Strategy::fertac, Strategy::otac_big,
                                              Strategy::otac_little};

/// Display name in the paper's notation ("HeRAD", "OTAC (B)", ...).
[[nodiscard]] constexpr const char* to_string(Strategy strategy) noexcept
{
    switch (strategy) {
    case Strategy::herad: return "HeRAD";
    case Strategy::twocatac: return "2CATAC";
    case Strategy::fertac: return "FERTAC";
    case Strategy::otac_big: return "OTAC (B)";
    case Strategy::otac_little: return "OTAC (L)";
    }
    return "?";
}

/// Canonical machine key; unlike to_string, round-trips through
/// parse_strategy. Used by the bench JSON reports and the solver-service
/// metric labels.
[[nodiscard]] constexpr const char* to_key(Strategy strategy) noexcept
{
    switch (strategy) {
    case Strategy::herad: return "herad";
    case Strategy::twocatac: return "2catac";
    case Strategy::fertac: return "fertac";
    case Strategy::otac_big: return "otac-b";
    case Strategy::otac_little: return "otac-l";
    }
    return "?";
}

/// parse_strategy failure: the name matched no strategy. Derives from
/// std::invalid_argument so pre-existing handlers keep working; `name()`
/// carries the offending spelling.
class StrategyParseError : public std::invalid_argument {
public:
    explicit StrategyParseError(std::string name);
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    std::string name_;
};

/// Parses a strategy name, case-insensitively and ignoring spaces: every
/// to_key spelling ("herad", "2catac", "fertac", "otac-b", "otac-l"), the
/// paper display names ("HeRAD", "OTAC (B)", ...) and the legacy aliases
/// ("twocatac", "otac_big", "otac_little"). Returns nullopt on anything
/// else.
[[nodiscard]] std::optional<Strategy> try_parse_strategy(std::string_view name) noexcept;

/// Throwing form of try_parse_strategy: raises StrategyParseError (never a
/// silent default) when the name matches no strategy.
[[nodiscard]] Strategy parse_strategy(const std::string& name);

/// What a solve optimizes (docs/ENERGY.md). min_period is the paper's
/// objective: the smallest achievable period (with each strategy's own
/// secondary objective). min_energy_under_period minimizes the active
/// energy_per_item (core/power.hpp) subject to period <= target_period;
/// every strategy has an energy-aware variant behind the same entry point
/// (EnergyHeRAD is exact, the greedy variants are heuristics, the OTAC
/// variants reduce to feasibility at the target).
enum class Objective : std::uint8_t { min_period = 0, min_energy_under_period = 1 };

[[nodiscard]] constexpr const char* to_string(Objective objective) noexcept
{
    switch (objective) {
    case Objective::min_period: return "min_period";
    case Objective::min_energy_under_period: return "min_energy_under_period";
    }
    return "?";
}

/// Strategy knobs, unified across all five strategies. Strategies ignore
/// the fields that do not apply to them (FERTAC reads only `preference`,
/// HeRAD only the other three, OTAC/2CATAC none), so one options value can
/// drive a whole request grid. The objective block at the bottom applies to
/// every strategy: with min_energy_under_period, `target_period` must be
/// strictly positive (invalid_request otherwise) and `power` parameterizes
/// the energy being minimized.
struct ScheduleOptions {
    /// HeRAD: merge consecutive replicable same-type stages (period-neutral).
    bool merge_stages = true;
    /// HeRAD: sound lower-bound break on the stage-start loop.
    bool prune = true;
    /// HeRAD: binary-search the core-count loop of Eq. (4); period-exact but
    /// may pick a different period-equal tie than the exhaustive loop.
    bool fast_u_search = false;
    /// FERTAC: which core type each stage is offered first.
    FertacPreference preference = FertacPreference::little_first;

    // -- objective (docs/ENERGY.md) ---------------------------------------
    /// What to optimize; min_period ignores the two fields below.
    Objective objective = Objective::min_period;
    /// Period bound for min_energy_under_period (same unit as the task
    /// weights); must be > 0 for that objective.
    double target_period = 0.0;
    /// Power model the energy objective minimizes against.
    PowerModel power{};

    [[nodiscard]] constexpr bool operator==(const ScheduleOptions&) const noexcept = default;

    /// The HeRAD view of these options.
    [[nodiscard]] constexpr HeradOptions herad() const noexcept
    {
        return {.merge_stages = merge_stages, .prune = prune, .fast_u_search = fast_u_search};
    }

    /// Dense encoding of the boolean/enum options for cache keys
    /// (svc::SolverService). Widened to 16 bits: the original 8-bit
    /// encoding had 4 of 8 bits in use, and packing the objective (and any
    /// future flags) into the remaining nibble would have silently aliased
    /// cache entries once it overflowed. The continuous objective
    /// parameters (target_period, power) do NOT fit in bit flags -- they
    /// are carried by energy_fingerprint() in a separate key field.
    [[nodiscard]] constexpr std::uint16_t key_bits() const noexcept
    {
        return static_cast<std::uint16_t>(
            (merge_stages ? 1u : 0u) | (prune ? 2u : 0u) | (fast_u_search ? 4u : 0u)
            | (preference == FertacPreference::big_first ? 8u : 0u)
            | (objective == Objective::min_energy_under_period ? 16u : 0u));
    }

    /// Digest of the continuous objective parameters for cache identity:
    /// 0 for min_period requests (which ignore them), otherwise a
    /// splitmix64 chain over target_period and the power model, so two
    /// energy solves differing only in target or watts never share a cache
    /// entry (svc::CacheKey::energy).
    [[nodiscard]] std::uint64_t energy_fingerprint() const noexcept;
};

/// Warm-start hint for resize re-solves (the autoscaling control loop,
/// docs/AUTOSCALING.md): carry the DP frontier retained by a previous HeRAD
/// solve of the SAME chain and the solver answers a changed resource vector
/// incrementally -- a shrink by a pure backwalk, a grow by computing only
/// the new budget cells -- with a solution bit-identical to the cold solve.
/// Like deadline/priority, the hint is NOT part of the cache identity
/// (svc::key_of): it changes how fast the answer is computed, never what it
/// is. Non-HeRAD strategies and mismatched frontiers fall back to the cold
/// solve transparently.
struct WarmStart {
    /// Frontier from a previous solve (ScheduleResult::frontier); null on
    /// the first solve of a control loop.
    std::shared_ptr<const HeradFrontier> frontier;
    /// Retain a frontier on the result even when `frontier` is null (or no
    /// longer matches), so the NEXT re-solve can warm-start. Implied by a
    /// non-null `frontier`.
    bool keep_frontier = false;

    /// True when the hint asks for warm-start handling at all.
    [[nodiscard]] bool engaged() const noexcept { return frontier != nullptr || keep_frontier; }
};

/// One scheduling query: solve `chain` on resources R = (b, l) with
/// `strategy`. OTAC (B) / OTAC (L) ignore the cores of the other type, as
/// in the paper.
struct ScheduleRequest {
    TaskChain chain;
    Resources resources;
    Strategy strategy = Strategy::herad;
    ScheduleOptions options{};

    /// Warm-start hint; like the admission metadata below, never part of
    /// the cache identity.
    WarmStart warm{};

    // -- admission metadata (svc::SolverService, docs/SOLVER_SERVICE.md) --
    // Neither field is part of the cache identity (svc::key_of): two
    // requests that differ only in deadline/priority share one solution.

    /// Absolute deadline as steady-clock nanoseconds since epoch (0 = no
    /// deadline). A request whose deadline has passed by the time it is
    /// picked up is answered with ScheduleError::deadline_exceeded instead
    /// of being solved. The dsim admission model interprets the same field
    /// in virtual time.
    std::int64_t deadline_ns = 0;

    /// Admission priority: higher wins under the priority_aware shedding
    /// policy. Recovery re-solves (rt::Rescheduler) submit at
    /// svc::kRecoveryPriority so overload never sheds them first.
    std::int8_t priority = 0;

    /// Cache-identity namespace -- unlike the admission metadata above this
    /// IS part of svc::key_of. Solves whose answers may legitimately differ
    /// for byte-identical chains must not share cache entries: a graph
    /// branch sub-chain (svc::kGraphBranchDomain) is solved and *planned*
    /// in its branch context, and its compiled plan must never be returned
    /// for an identical standalone chain (or vice versa). 0 is the default
    /// whole-chain domain.
    std::uint8_t cache_domain = 0;
};

/// Explicit failure signal. The old API signalled failure with an empty
/// Solution (or an exception), which conflated "the request makes no sense"
/// with "no valid schedule exists within the budget".
enum class ScheduleError : std::uint8_t {
    ok = 0,
    /// The solver ran but produced no valid schedule within the budget.
    infeasible,
    /// The request itself is malformed: empty chain, negative or all-zero
    /// resource vector, or an OTAC variant with zero cores of its type.
    invalid_request,
    /// Shed by admission control (queue full, circuit breaker open, or the
    /// service is stopping) before the solver ran. Unlike infeasible this
    /// says nothing about the chain: retrying later may succeed.
    rejected,
    /// The request's deadline passed before a worker could start solving it.
    deadline_exceeded,
};

[[nodiscard]] constexpr const char* to_string(ScheduleError error) noexcept
{
    switch (error) {
    case ScheduleError::ok: return "ok";
    case ScheduleError::infeasible: return "infeasible";
    case ScheduleError::invalid_request: return "invalid_request";
    case ScheduleError::rejected: return "rejected";
    case ScheduleError::deadline_exceeded: return "deadline_exceeded";
    }
    return "?";
}

/// Outcome of one request. `solution` is empty unless `error == ok`.
struct ScheduleResult {
    Solution solution;
    ScheduleStats stats; ///< binary-search telemetry (zero for HeRAD)
    ScheduleError error = ScheduleError::ok;
    bool cache_hit = false;  ///< set by svc::SolverService on cache hits
    /// Brownout serving (svc::SolverService): the solution is a *stale*
    /// cached schedule for the same chain (possibly solved for a smaller
    /// resource vector or different options), served under pressure while a
    /// background refinement re-solves the exact request.
    bool degraded = false;
    std::uint64_t solve_ns = 0; ///< wall time of the solve (or cache lookup)

    /// DP frontier for warm-starting the next re-solve. Set only for HeRAD
    /// requests with an engaged WarmStart hint; a frontier is O(n * b * l)
    /// cells, so svc::SolverService strips it from cached copies (a cache
    /// hit returns none -- keep the one you already hold, it still matches).
    std::shared_ptr<const HeradFrontier> frontier;
    /// True when the solve reused the hint's frontier (backwalk or
    /// extension) instead of running the full recurrence.
    bool warm_start = false;

    [[nodiscard]] bool ok() const noexcept { return error == ScheduleError::ok; }
};

/// Unified entry point: validates, dispatches, never throws. Infeasibility
/// and malformed requests are reported through `ScheduleResult::error`.
[[nodiscard]] ScheduleResult schedule(const ScheduleRequest& request);

/// Thin convenience wrapper for one-off solves: returns just the solution,
/// empty on any error (use the request form to distinguish infeasible from
/// invalid).
[[nodiscard]] Solution schedule(Strategy strategy, const TaskChain& chain, Resources resources);

} // namespace amp::core
