#pragma once
// Umbrella header and strategy dispatcher for the scheduling library.

#include "core/brute_force.hpp"
#include "core/chain.hpp"
#include "core/fertac.hpp"
#include "core/greedy_common.hpp"
#include "core/herad.hpp"
#include "core/otac.hpp"
#include "core/solution.hpp"
#include "core/twocatac.hpp"

#include <string>

namespace amp::core {

/// Every strategy evaluated in the paper.
enum class Strategy { herad, twocatac, fertac, otac_big, otac_little };

inline constexpr Strategy kAllStrategies[] = {Strategy::herad, Strategy::twocatac,
                                              Strategy::fertac, Strategy::otac_big,
                                              Strategy::otac_little};

[[nodiscard]] constexpr const char* to_string(Strategy strategy) noexcept
{
    switch (strategy) {
    case Strategy::herad: return "HeRAD";
    case Strategy::twocatac: return "2CATAC";
    case Strategy::fertac: return "FERTAC";
    case Strategy::otac_big: return "OTAC (B)";
    case Strategy::otac_little: return "OTAC (L)";
    }
    return "?";
}

/// Parses a strategy name ("herad", "2catac", "fertac", "otac-b", "otac-l").
[[nodiscard]] Strategy parse_strategy(const std::string& name);

/// Runs the given strategy on the chain with resources R = (b, l).
/// OTAC (B) / OTAC (L) ignore the cores of the other type, as in the paper.
[[nodiscard]] Solution schedule(Strategy strategy, const TaskChain& chain, Resources resources);

} // namespace amp::core
