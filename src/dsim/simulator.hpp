#pragma once
// Discrete-event simulation of a pipelined-and-replicated schedule.
//
// Models the StreamPU execution of a solution: stage i is a service station
// with r_i identical servers and per-frame service time equal to the sum of
// its tasks' latencies on the stage's core type. Frames are consumed in
// stream order (the adaptors restore ordering), so the exact dynamics reduce
// to a departure-time recurrence:
//
//   start(i, f) = max(depart(i-1, f) + adaptor_overhead, depart(i, f - r_i))
//   depart(i, f) = start(i, f) + service(i, f)
//
// Service times carry an overhead model (per-crossing cost, multiplicative
// jitter, replication penalties) calibrated so that the gap between
// predicted and "real" throughput matches the shape the paper observes on
// real hardware (§VI-E): a few percent in general, larger for stages that
// replicate the slowest tasks on little cores. This is the documented
// substitute for the hybrid-core machines (DESIGN.md, substitution 1).

#include "common/rng.hpp"
#include "core/chain.hpp"
#include "core/solution.hpp"

#include <cstdint>
#include <vector>

namespace amp::dsim {

/// Overhead model applied on top of the profiled task latencies.
struct OverheadModel {
    double adaptor_crossing_us = 2.0;   ///< per frame, per stage boundary
    /// Uniform service inflation: runtime bookkeeping, cache interference
    /// and OS noise on a loaded machine (the paper observes ~+7% even on
    /// single-core unreplicated stages).
    double service_inflation = 0.05;
    double jitter_cv = 0.02;            ///< lognormal coefficient of variation
    /// Relative service inflation of a replicated stage (r > 1): contention
    /// on the shared adaptor plus cache pressure from the clones.
    double replication_penalty = 0.02;
    /// Additional inflation when the replicated stage runs on little cores
    /// (the paper's ">10% gap" observation for little-core replication of
    /// slow tasks).
    double little_replication_penalty = 0.08;
    std::uint64_t seed = 0x5eed;
};

struct SimulationConfig {
    std::uint64_t frames = 20000;      ///< frames to push through the pipeline
    std::uint64_t warmup_frames = 2000; ///< excluded from the throughput window
    OverheadModel overhead{};
};

struct StageStats {
    double utilization = 0.0;   ///< busy fraction of the stage's servers
    double mean_service_us = 0.0;
};

struct SimulationResult {
    double fps = 0.0;            ///< pipeline frames per second (steady state)
    double period_us = 0.0;      ///< observed inter-departure time
    std::vector<StageStats> stages;
};

/// Simulates the execution of `solution` over `chain` task latencies (in
/// microseconds, as in the paper's profiles).
[[nodiscard]] SimulationResult simulate(const core::TaskChain& chain,
                                        const core::Solution& solution,
                                        const SimulationConfig& config = {});

/// Expected (model) period of a solution in microseconds: max stage weight,
/// i.e. what the scheduler itself predicts (no overheads).
[[nodiscard]] double expected_period_us(const core::TaskChain& chain,
                                        const core::Solution& solution);

} // namespace amp::dsim
