#pragma once
// Discrete-event simulation of a pipelined-and-replicated schedule.
//
// Models the StreamPU execution of a solution: stage i is a service station
// with r_i identical servers and per-frame service time equal to the sum of
// its tasks' latencies on the stage's core type. Frames are consumed in
// stream order (the adaptors restore ordering), so the exact dynamics reduce
// to a departure-time recurrence:
//
//   start(i, f) = max(depart(i-1, f) + adaptor_overhead, depart(i, f - r_i))
//   depart(i, f) = start(i, f) + service(i, f)
//
// Service times carry an overhead model (per-crossing cost, multiplicative
// jitter, replication penalties) calibrated so that the gap between
// predicted and "real" throughput matches the shape the paper observes on
// real hardware (§VI-E): a few percent in general, larger for stages that
// replicate the slowest tasks on little cores. This is the documented
// substitute for the hybrid-core machines (DESIGN.md, substitution 1).

#include "arb/arbiter.hpp"
#include "common/rng.hpp"
#include "core/chain.hpp"
#include "core/power.hpp"
#include "core/solution.hpp"
#include "obs/sink.hpp"
#include "plan/execution_plan.hpp"
#include "rt/autoscaler.hpp"
#include "rt/rescheduler.hpp"
#include "svc/admission.hpp"
#include "svc/circuit_breaker.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace amp::dsim {

/// Overhead model applied on top of the profiled task latencies.
struct OverheadModel {
    double adaptor_crossing_us = 2.0;   ///< per frame, per stage boundary
    /// Uniform service inflation: runtime bookkeeping, cache interference
    /// and OS noise on a loaded machine (the paper observes ~+7% even on
    /// single-core unreplicated stages).
    double service_inflation = 0.05;
    double jitter_cv = 0.02;            ///< lognormal coefficient of variation
    /// Relative service inflation of a replicated stage (r > 1): contention
    /// on the shared adaptor plus cache pressure from the clones.
    double replication_penalty = 0.02;
    /// Additional inflation when the replicated stage runs on little cores
    /// (the paper's ">10% gap" observation for little-core replication of
    /// slow tasks).
    double little_replication_penalty = 0.08;
    std::uint64_t seed = 0x5eed;
};

struct SimulationConfig {
    std::uint64_t frames = 20000;      ///< frames to push through the pipeline
    std::uint64_t warmup_frames = 2000; ///< excluded from the throughput window
    OverheadModel overhead{};
    /// Rates for the simulated active-energy accounting (energy_per_frame).
    core::PowerModel power{};
    /// Optional telemetry sink. The simulator emits the same event and
    /// metric schema as rt::Pipeline (obs/schema.hpp) at virtual time:
    /// one track per simulated server, stage spans per frame, queue-wait
    /// and latency histograms, fence/tombstone instants on failures -- so
    /// a simulated trace diffs event-by-event against a real one.
    obs::Sink* sink = nullptr;
};

struct StageStats {
    double utilization = 0.0;   ///< busy fraction of the stage's servers
    double mean_service_us = 0.0;
};

struct SimulationResult {
    double fps = 0.0;            ///< pipeline frames per second (steady state)
    double period_us = 0.0;      ///< observed inter-departure time
    /// Simulated ACTIVE energy per frame (watt-us): busy core-time per stage
    /// x the stage type's active watts, averaged over all frames. The
    /// measured analog of core::energy_per_item, except it charges the
    /// *simulated* service times (inflation, jitter, replication penalties
    /// included) and assumes unit per-task energy weights -- the compiled
    /// plan profile carries service times, not energy weights. Populated by
    /// simulate(); 0 in the failure replay's `overall` (no per-stage
    /// accounting across reschedules).
    double energy_per_frame = 0.0;
    std::vector<StageStats> stages;
};

/// Simulates a compiled execution plan -- the same object rt::Pipeline
/// executes, so a simulated and a real run of one plan are diffable
/// event-by-event. The plan must carry a task-weight profile
/// (plan::ExecutionPlan::has_profile()); throws std::invalid_argument
/// otherwise.
[[nodiscard]] SimulationResult simulate(const plan::ExecutionPlan& plan,
                                        const SimulationConfig& config = {});

/// Simulates the execution of `solution` over `chain` task latencies (in
/// microseconds, as in the paper's profiles). Convenience wrapper: compiles
/// the pair into a plan::ExecutionPlan and simulates that.
[[nodiscard]] SimulationResult simulate(const core::TaskChain& chain,
                                        const core::Solution& solution,
                                        const SimulationConfig& config = {});

/// Expected (model) period of a solution in microseconds: max stage weight,
/// i.e. what the scheduler itself predicts (no overheads).
[[nodiscard]] double expected_period_us(const core::TaskChain& chain,
                                        const core::Solution& solution);

// -- failure events -------------------------------------------------------
//
// Thread-free mirror of the runtime's fault model (docs/FAULT_MODEL.md):
// at chosen stream positions a stage loses one core for good. The simulator
// applies the same recovery decision the runtime would make -- it reduces
// the resource vector, re-runs the schedulers through rt::Rescheduler, and
// resumes the departure recurrence on the new stage structure after a
// detection + reschedule latency -- so recovery behaviour is testable
// deterministically, without threads or timing jitter.

/// One permanent core loss: at stream frame `frame`, the stage at index
/// `stage` (into the *current* solution; clamped if rescheduling shrank the
/// stage list) loses one core.
struct SimFailure {
    std::uint64_t frame = 0;
    std::size_t stage = 0;
};

struct FailureModel {
    std::vector<SimFailure> failures;
    double detection_us = 200.0;  ///< watchdog heartbeat-timeout equivalent
    double reschedule_us = 50.0;  ///< solver + full pipeline rebuild cost
    /// Swap cost when the post-loss schedule is plan-delta-compatible with
    /// the running one (same stage cut: rt::Pipeline hot-swaps in place
    /// instead of rebuilding). Unset = every recovery is charged
    /// `reschedule_us`, i.e. the pre-delta behaviour.
    std::optional<double> delta_swap_us{};
    /// Swap cost when the delta is additionally *resize-only* (every stage
    /// kept or resized, nothing rebound): the runtime applies it mid-segment
    /// without draining (Pipeline::try_apply_delta_in_flight), so the stall
    /// is the in-flight spawn cost, not a drain. Takes precedence over
    /// `delta_swap_us` when both are set and the delta qualifies. Unset =
    /// resize-only deltas are charged like any compatible delta.
    std::optional<double> frame_swap_us{};
    rt::ReschedulePolicy policy{};
};

/// What the simulator decided at one failure event.
struct RecoveryRecord {
    std::uint64_t frame = 0;           ///< stream position of the loss
    std::size_t stage = 0;             ///< failed stage (pre-reschedule index)
    core::CoreType lost_type = core::CoreType::big;
    core::Resources resources_after{}; ///< degraded resource vector
    core::Solution new_solution;       ///< schedule the pipeline resumed with
    double downtime_us = 0.0;          ///< detection + reschedule/swap stall
    std::uint64_t frames_dropped = 0;  ///< in-flight frames lost to the event
    /// True when the new schedule keeps the old stage cut (plan::diff
    /// compatible), i.e. the runtime would hot-swap in place.
    bool delta_applied = false;
    /// True when the delta is resize-only *and* FailureModel::frame_swap_us
    /// is set: the runtime would swap mid-segment without draining.
    bool frame_swap_applied = false;
};

struct FailureSimulationResult {
    SimulationResult overall;              ///< throughput across the whole run
    std::vector<RecoveryRecord> recoveries;
    core::Solution final_solution;
    std::uint64_t frames_dropped = 0;
    bool schedulable = true; ///< false when a loss left no feasible schedule
};

/// Simulates `solution` over `chain` under permanent core losses. `budget`
/// is the resource vector the solution was computed for; each loss removes
/// one core of the failing stage's type before rescheduling.
[[nodiscard]] FailureSimulationResult
simulate_with_failures(const core::TaskChain& chain, const core::Solution& solution,
                       core::Resources budget, const SimulationConfig& config,
                       const FailureModel& faults);

/// Deterministic random failure plan: `count` losses at frames drawn from
/// [warmup, frames) and stages drawn from [0, stage_count). Same seed, same
/// plan, on every platform.
[[nodiscard]] std::vector<SimFailure> random_failures(std::uint64_t seed, int count,
                                                      std::uint64_t warmup,
                                                      std::uint64_t frames,
                                                      std::size_t stage_count);

// -- admission / overload events ------------------------------------------
//
// Thread-free mirror of the solver service's overload protection
// (docs/FAULT_MODEL.md, "Overload model"). The simulation does not
// re-implement the decision logic: it drives the *same* svc::AdmissionQueue
// and svc::CircuitBreaker classes the runtime uses, in virtual time (both
// are deterministic given a serial call sequence -- the queue is time-free,
// the breaker takes explicit timestamps). A runtime admission trace and a
// simulated one therefore cannot drift apart in semantics, which the
// trace-equality test pins.

/// One solve request arriving at the simulated service.
struct AdmissionArrival {
    std::int64_t at_us = 0;       ///< arrival (virtual) time
    std::int64_t service_us = 1;  ///< solve duration when it runs
    std::int64_t deadline_us = 0; ///< absolute virtual deadline; 0 = none
    std::int8_t priority = 0;     ///< admission priority (higher wins)
    bool fails = false;           ///< counts as a breaker failure when run
};

/// Terminal fate of one arrival.
enum class AdmissionOutcome : std::uint8_t {
    served,            ///< ran to completion (breaker success)
    failed,            ///< ran and failed (breaker failure)
    rejected_queue,    ///< shed at the admission door
    displaced,         ///< admitted, then shed by a later arrival
    rejected_breaker,  ///< reached a server while the breaker was open
    deadline_exceeded, ///< reached a server after its deadline
};

[[nodiscard]] constexpr const char* to_string(AdmissionOutcome outcome) noexcept
{
    switch (outcome) {
    case AdmissionOutcome::served: return "served";
    case AdmissionOutcome::failed: return "failed";
    case AdmissionOutcome::rejected_queue: return "rejected_queue";
    case AdmissionOutcome::displaced: return "displaced";
    case AdmissionOutcome::rejected_breaker: return "rejected_breaker";
    case AdmissionOutcome::deadline_exceeded: return "deadline_exceeded";
    }
    return "?";
}

/// One decision, in decision order (the deterministic trace).
struct AdmissionDecision {
    std::size_t request = 0; ///< index into the arrivals vector
    AdmissionOutcome outcome = AdmissionOutcome::served;
    std::int64_t at_us = 0; ///< virtual time of the decision

    [[nodiscard]] constexpr bool operator==(const AdmissionDecision&) const noexcept = default;
};

struct AdmissionSimConfig {
    svc::AdmissionConfig admission{}; ///< same struct the runtime uses
    svc::BreakerConfig breaker{};     ///< ditto (open_ns is virtual ns)
    int servers = 1;                  ///< parallel solver workers
};

struct AdmissionSimResult {
    /// Exactly one decision per arrival, in decision order.
    std::vector<AdmissionDecision> decisions;
    std::vector<svc::BreakerTransition> breaker_transitions; ///< virtual ns
    std::uint64_t breaker_trips = 0;
    svc::AdmissionStats admission_stats{};
    // Outcome tallies (redundant with `decisions`; convenient for asserts).
    std::uint64_t served = 0;
    std::uint64_t failed = 0;
    std::uint64_t rejected_queue = 0;
    std::uint64_t displaced = 0;
    std::uint64_t rejected_breaker = 0;
    std::uint64_t deadline_exceeded = 0;
};

/// Simulates the service's admission control, shedding and circuit breaker
/// over a stream of arrivals. Arrivals are processed in (at_us, index)
/// order; a dispatch that would start exactly when an arrival lands is
/// processed after that arrival (so a displacing newcomer at time t beats a
/// server grabbing the victim at t -- one rule, applied consistently).
/// Purely deterministic: equal inputs produce identical decision traces
/// and breaker transition logs on every platform.
[[nodiscard]] AdmissionSimResult
simulate_admission(const std::vector<AdmissionArrival>& arrivals,
                   const AdmissionSimConfig& config = {});

// -- multi-tenant arbitration ---------------------------------------------
//
// Virtual-time replay of the arbiter's global allocation loop
// (docs/ARBITER.md). As with the admission simulation, the decision logic
// is not re-implemented: the scenario drives a real arb::Arbiter -- the
// same registry, water-filling loop and solver probes the runtime uses --
// through a scripted sequence of join/leave/weight/pool events, and
// integrates each tenant's delivered frames over the intervals between
// rearbitrations. The arbiter is wall-clock-free and the solvers are
// bit-deterministic, so two replays of one scenario produce identical
// rearbitration traces; the trace-equality test pins this.

/// One tenant of a simulated multi-tenant machine.
struct SimTenant {
    arb::TenantSpec spec;
    /// Offered load in frames per second: the tenant's goodput contribution
    /// is min(achieved rate, demand). <= 0 means unbounded demand (every
    /// delivered frame is useful).
    double demand_fps = 0.0;
};

enum class TenantEventKind : std::uint8_t {
    join,       ///< tenant appears and starts competing for cores
    leave,      ///< tenant departs; its cores return to the pool
    set_weight, ///< fair-share weight change (e.g. plan upgrade)
    set_pool,   ///< machine reconfiguration: the shared pool itself changes
};

/// One scripted control-plane event. Events at equal times are applied
/// together (in index order) and followed by a single rearbitration.
struct TenantEvent {
    std::int64_t at_us = 0;
    TenantEventKind kind = TenantEventKind::join;
    std::size_t tenant = 0;  ///< index into MultiTenantScenario::tenants
    double weight = 1.0;     ///< set_weight only
    core::Resources pool{};  ///< set_pool only
};

struct MultiTenantScenario {
    core::Resources pool{};
    arb::AllocPolicy policy = arb::AllocPolicy::weighted_max_min;
    std::vector<SimTenant> tenants; ///< catalog; events reference by index
    std::vector<TenantEvent> events;
    std::int64_t horizon_us = 1'000'000; ///< end of the simulated window
    /// Solver service backing the arbiter's probes; null = shared_service().
    svc::SolverService* service = nullptr;
};

/// One rearbitration of the replay -- the deterministic trace. `tenants`
/// maps the arbiter's id-ordered rows back to scenario indices; exact
/// (bitwise) double equality in operator== is intentional, as with
/// arb::AllocStep.
struct ArbEventRecord {
    std::int64_t at_us = 0;
    std::uint64_t generation = 0;
    std::vector<std::size_t> tenants;       ///< scenario indices, id order
    std::vector<core::Resources> budgets;   ///< aligned with `tenants`
    std::vector<double> periods_us;         ///< aligned with `tenants`
    std::vector<arb::AllocStep> steps;      ///< water-filling grant log

    [[nodiscard]] bool operator==(const ArbEventRecord&) const noexcept = default;
};

/// Integrated outcome of one tenant over the scenario window.
struct TenantSimStats {
    double present_us = 0.0;   ///< total virtual time joined
    double frames = 0.0;       ///< delivered frames (sum interval/period)
    double goodput_fps = 0.0;  ///< min(rate, demand), averaged over presence
    /// Time-averaged (1/period)/weight while present -- the fairness share.
    double mean_weighted_rate = 0.0;
};

struct MultiTenantResult {
    std::vector<ArbEventRecord> trace;   ///< one record per rearbitration
    std::vector<TenantSimStats> tenants; ///< aligned with scenario.tenants
    /// Sum of per-tenant goodputs weighted by presence time, over the
    /// horizon: useful frames per second the whole machine produced.
    double aggregate_goodput_fps = 0.0;
    /// Jain index of the tenants' mean weighted rates (tenants that were
    /// ever present); 1 = throughput exactly proportional to weight.
    double jain_weighted = 0.0;
    std::uint64_t rearbitrations = 0;
    std::uint64_t probes = 0; ///< period queries the allocation loops issued
};

/// Replays `scenario` through a real arb::Arbiter in virtual time. Events
/// must be sorted by at_us (stable within a timestamp) and lie in
/// [0, horizon_us); a join of an already-present tenant, or any other event
/// on an absent one, throws std::invalid_argument. Purely deterministic:
/// equal scenarios produce identical traces on every platform.
[[nodiscard]] MultiTenantResult simulate_multi_tenant(const MultiTenantScenario& scenario);

// ---------------------------------------------------------------------------
// Autoscaling replay (docs/AUTOSCALING.md)
//
// Virtual-time replay of the rt::Autoscaler control loop against a scripted
// offered-load profile. As with the admission and multi-tenant replays the
// decision logic is not re-implemented: the replay drives the real
// rt::AutoscaleController (hysteresis, patience, cooldown, clamps) and the
// real warm-start solver, so a live autoscaler fed the same utilization
// series takes the same actions. Utilization is offered load over delivered
// capacity (offered_fps * period_us / 1e6); both sides of the loop are
// deterministic, so equal scenarios produce identical event traces.

/// One step of the offered-load profile: from `at_us` on, the stream offers
/// `offered_fps` frames per second (step-hold until the next point).
struct LoadPoint {
    std::int64_t at_us = 0;
    double offered_fps = 0.0;
};

struct AutoscaleScenario {
    core::TaskChain chain;
    core::Resources initial{};
    rt::AutoscalePolicy policy{};
    core::ScheduleOptions options{};
    /// Rates for the per-event energy_per_item accounting (and, through
    /// policy.shrink_cheapest_first, the shrink candidate ordering).
    core::PowerModel power{};
    /// Offered-load profile, sorted by at_us; the first point's rate also
    /// holds before its timestamp. Must be non-empty.
    std::vector<LoadPoint> load;
    std::int64_t horizon_us = 1'000'000;
    /// Controller observation window (one utilization sample per period).
    std::int64_t sample_period_us = 5'000;
    /// Solver service for the re-solves; null = direct core::schedule calls
    /// (no cache). With a service, a replayed re-solve may be answered from
    /// cache -- the event's `warm` flag covers both, keeping traces equal.
    svc::SolverService* service = nullptr;
};

/// One non-hold controller action of the replay (landed or clamped).
struct AutoscaleEventRecord {
    std::int64_t at_us = 0;
    rt::ScaleDecision decision = rt::ScaleDecision::hold;
    core::Resources before{};
    core::Resources after{};       ///< == before when clamped/infeasible
    double utilization = 0.0;      ///< the sample that tripped the action
    double period_us = 0.0;        ///< achieved period after the action
    /// Active energy per item (scenario.power) of the schedule in force
    /// after the action -- unchanged when the action was absorbed.
    double energy_per_item = 0.0;
    /// Re-solve avoided the cold DP: incremental warm path or a service
    /// cache hit (the two are equivalent for trace determinism).
    bool warm = false;

    [[nodiscard]] bool operator==(const AutoscaleEventRecord&) const noexcept = default;
};

struct AutoscaleSimResult {
    std::vector<AutoscaleEventRecord> events;
    std::uint64_t samples = 0;
    std::uint64_t grows = 0;
    std::uint64_t shrinks = 0;
    std::uint64_t clamped = 0;    ///< decisions absorbed by min/max clamps
    std::uint64_t infeasible = 0; ///< targets admitting no schedule
    double warm_fraction = 0.0;   ///< warm re-solves / total re-solves
    /// Mean |utilization - policy.target_utilization| over all samples:
    /// the controller tracking error the bench gates on.
    double mean_tracking_error = 0.0;
    double max_utilization = 0.0;
    core::Resources final_pool{};
    double final_period_us = 0.0;
    /// Smallest virtual-time gap between two landed actions (horizon_us
    /// when fewer than two landed): >= policy.cooldown_ns / 1000 proves
    /// the controller never flapped within the cooldown.
    std::int64_t min_action_gap_us = 0;
};

/// Replays `scenario` through the real controller + warm solver in virtual
/// time. Throws std::invalid_argument on an empty chain/load profile, an
/// unsorted profile, or a non-positive sample period. Deterministic: equal
/// scenarios produce identical traces on every platform.
[[nodiscard]] AutoscaleSimResult simulate_autoscale(const AutoscaleScenario& scenario);

} // namespace amp::dsim
