#include "dsim/simulator.hpp"

#include "obs/schema.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

namespace amp::dsim {

namespace {

/// Telemetry wiring for one stage structure ("epoch"). Tracks are keyed on
/// the plan's stable worker ids exactly like the runtime's, so the simulated
/// trace and a real rt::Pipeline trace of the same plan are diffable
/// (obs/schema.hpp). A rescheduled run opens a fresh epoch from a freshly
/// compiled plan, which appends a new track group -- mirroring
/// run_with_recovery's hot-swap.
struct ObsEpoch {
    obs::TraceRecorder* trace = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
    std::size_t track_base = 0;
    std::size_t watchdog_track = 0;
    std::vector<std::size_t> stage_offset; ///< first server track per stage
    std::vector<std::uint32_t> span_names;
    std::vector<obs::Histogram*> stage_latency;
    std::vector<obs::Histogram*> queue_wait;
    std::uint32_t fence_name = 0;
    std::uint32_t tombstone_name = 0;

    ObsEpoch() = default;

    ObsEpoch(obs::Sink* sink, const plan::ExecutionPlan& plan)
    {
        if (sink == nullptr || !sink->enabled())
            return;
        const auto& stages = plan.stages();
        if (sink->trace_enabled()) {
            trace = &sink->trace();
            track_base = trace->track_count();
            std::size_t offset = 0;
            for (const plan::PlanStage& st : stages) {
                stage_offset.push_back(offset);
                span_names.push_back(
                    trace->intern(obs::schema::stage_span(st.index, st.first, st.last)));
                for (const int worker : st.worker_ids)
                    trace->add_track(obs::schema::worker_track(worker, st.index));
                offset += st.worker_ids.size();
            }
            watchdog_track = trace->add_track(obs::schema::kWatchdogTrack);
            fence_name = trace->intern(obs::schema::kFence);
            tombstone_name = trace->intern(obs::schema::kTombstone);
        }
        if (sink->metrics_enabled()) {
            metrics = &sink->metrics();
            for (const plan::PlanStage& st : stages) {
                stage_latency.push_back(&metrics->histogram(obs::schema::stage_latency(st.index)));
                queue_wait.push_back(&metrics->histogram(obs::schema::queue_wait(st.index)));
            }
        }
    }

    [[nodiscard]] bool active() const noexcept { return trace != nullptr || metrics != nullptr; }

    /// One frame crossing one stage on one server, at virtual time.
    void record_span(std::size_t stage, std::size_t server, std::uint64_t frame,
                     double start_us, double service_us, double wait_us)
    {
        if (!stage_latency.empty())
            stage_latency[stage]->record_us(service_us);
        // Stage 0 sources frames (no input queue), same as the runtime.
        if (stage > 0 && !queue_wait.empty())
            queue_wait[stage]->record_us(wait_us);
        if (trace != nullptr)
            trace->emit_complete(track_base + stage_offset[stage] + server, span_names[stage],
                                 start_us, service_us, frame, static_cast<std::int32_t>(stage));
    }

    /// Watchdog-equivalent fence + tombstone at the failure's virtual time.
    void record_loss(std::size_t stage, std::uint64_t frame, double ts_us)
    {
        if (metrics != nullptr)
            metrics->counter(obs::schema::kWorkersFenced).inc(0);
        if (trace != nullptr) {
            trace->emit_instant(watchdog_track, fence_name, ts_us, frame,
                                static_cast<std::int32_t>(stage));
            trace->emit_instant(watchdog_track, tombstone_name, ts_us, frame,
                                static_cast<std::int32_t>(stage));
        }
    }

    /// End-of-run totals, mirroring rt::Pipeline::run's final block.
    void record_run(std::uint64_t delivered, std::uint64_t dropped, double elapsed_us,
                    double fps) const
    {
        if (metrics == nullptr)
            return;
        metrics->counter(obs::schema::kFramesDelivered).add(0, delivered);
        metrics->counter(obs::schema::kFramesDropped).add(0, dropped);
        metrics->gauge(obs::schema::kRunElapsedSeconds).set(elapsed_us / 1e6);
        metrics->gauge(obs::schema::kRunFps).set(fps);
    }
};

/// Per-stage service model + server availability for one plan epoch. The
/// base service weights come straight from the plan's IR (PlanStage::
/// service_us), so simulator and runtime agree by construction on what each
/// stage costs.
struct StageModel {
    std::vector<double> base_service;
    std::vector<double> penalty;
    std::vector<std::vector<double>> last_departures; ///< ring per stage

    StageModel(const plan::ExecutionPlan& plan, const OverheadModel& overhead, double ready_at)
    {
        const auto& stages = plan.stages();
        const std::size_t k = stages.size();
        base_service.resize(k);
        penalty.resize(k);
        last_departures.resize(k);
        for (std::size_t i = 0; i < k; ++i) {
            const plan::PlanStage& st = stages[i];
            base_service[i] = st.service_us;
            penalty[i] = 1.0 + overhead.service_inflation;
            if (st.replicas > 1) {
                penalty[i] += overhead.replication_penalty;
                if (st.type == core::CoreType::little)
                    penalty[i] += overhead.little_replication_penalty;
            }
            last_departures[i].assign(static_cast<std::size_t>(st.replicas), ready_at);
        }
    }
};

} // namespace

double expected_period_us(const core::TaskChain& chain, const core::Solution& solution)
{
    return solution.period(chain);
}

SimulationResult simulate(const plan::ExecutionPlan& plan, const SimulationConfig& config)
{
    if (!plan.has_profile())
        throw std::invalid_argument{
            "simulate: plan has no task-weight profile (compile it from a TaskChain)"};
    if (config.frames <= config.warmup_frames)
        throw std::invalid_argument{"simulate: frames must exceed warmup_frames"};

    const auto& stages = plan.stages();
    const std::size_t k = stages.size();

    StageModel model{plan, config.overhead, 0.0};

    Rng rng{config.overhead.seed};
    const double sigma =
        config.overhead.jitter_cv > 0.0
            ? std::sqrt(std::log(1.0 + config.overhead.jitter_cv * config.overhead.jitter_cv))
            : 0.0;
    const double mu = -0.5 * sigma * sigma; // unit-mean lognormal

    ObsEpoch obs{config.sink, plan};

    std::vector<double> busy(k, 0.0);
    std::vector<double> service_sum(k, 0.0);

    double window_start = 0.0; // departure time of the last warmup frame
    double final_departure = 0.0;

    // Per-frame departure times, indexed by stage. Stages are branch-major
    // and plan edges point forward, so every predecessor's departure is
    // already computed when a stage is visited; a fan-in stage starts once
    // the *latest* predecessor copy of the frame has crossed its adaptor
    // (the runtime's merge gate pops one envelope per input). Linear plans
    // reduce to the classic single-chain recurrence, value for value.
    std::vector<double> depart(k, 0.0);
    for (std::uint64_t f = 0; f < config.frames; ++f) {
        for (std::size_t i = 0; i < k; ++i) {
            double arrival = 0.0; // source stages produce frames continuously
            for (const int p : stages[i].preds)
                arrival = std::max(arrival, depart[static_cast<std::size_t>(p)]
                                                + config.overhead.adaptor_crossing_us);
            const auto r = model.last_departures[i].size();
            double& server_free = model.last_departures[i][f % r];
            const double start = std::max(arrival, server_free);
            const double jitter = sigma > 0.0 ? std::exp(mu + sigma * rng.normal()) : 1.0;
            const double service = model.base_service[i] * model.penalty[i] * jitter;
            depart[i] = start + service;
            server_free = depart[i];
            busy[i] += service;
            service_sum[i] += service;
            if (obs.active())
                obs.record_span(i, f % r, f, start, service, start - arrival);
        }
        const double depart_last = depart[static_cast<std::size_t>(plan.sink_stage())];
        if (f == config.warmup_frames - 1)
            window_start = depart_last;
        final_departure = depart_last;
    }

    SimulationResult result;
    const auto measured = static_cast<double>(config.frames - config.warmup_frames);
    const double window = final_departure - window_start;
    result.period_us = window > 0.0 ? window / measured : 0.0;
    result.fps = result.period_us > 0.0 ? 1e6 / result.period_us : 0.0;
    obs.record_run(config.frames, 0, final_departure, result.fps);

    result.stages.resize(k);
    double active_energy = 0.0; // watt-us over the whole run
    for (std::size_t i = 0; i < k; ++i) {
        const double capacity = final_departure * static_cast<double>(stages[i].replicas);
        result.stages[i].utilization = capacity > 0.0 ? std::min(1.0, busy[i] / capacity) : 0.0;
        result.stages[i].mean_service_us = service_sum[i] / static_cast<double>(config.frames);
        active_energy += busy[i] * config.power.watts(stages[i].type);
    }
    result.energy_per_frame = active_energy / static_cast<double>(config.frames);
    return result;
}

SimulationResult simulate(const core::TaskChain& chain, const core::Solution& solution,
                          const SimulationConfig& config)
{
    // Legacy pre-checks kept verbatim: callers pin these messages.
    if (solution.empty())
        throw std::invalid_argument{"simulate: empty solution"};
    if (!solution.is_well_formed(chain))
        throw std::invalid_argument{"simulate: solution does not fit the chain"};
    if (config.frames <= config.warmup_frames)
        throw std::invalid_argument{"simulate: frames must exceed warmup_frames"};
    return simulate(plan::ExecutionPlan::compile(chain, solution), config);
}

FailureSimulationResult simulate_with_failures(const core::TaskChain& chain,
                                               const core::Solution& solution,
                                               core::Resources budget,
                                               const SimulationConfig& config,
                                               const FailureModel& faults)
{
    if (solution.empty())
        throw std::invalid_argument{"simulate_with_failures: empty solution"};
    if (!solution.is_well_formed(chain))
        throw std::invalid_argument{"simulate_with_failures: solution does not fit the chain"};
    if (config.frames <= config.warmup_frames)
        throw std::invalid_argument{"simulate_with_failures: frames must exceed warmup_frames"};

    std::vector<SimFailure> pending = faults.failures;
    std::stable_sort(pending.begin(), pending.end(),
                     [](const SimFailure& a, const SimFailure& b) { return a.frame < b.frame; });

    // The rescheduler mirrors the runtime's recovery decisions: same chain,
    // same degraded resource vector, same strategy preferences.
    rt::Rescheduler rescheduler{chain, budget, faults.policy};

    FailureSimulationResult result;
    core::Solution current = solution;
    plan::ExecutionPlan current_plan = plan::ExecutionPlan::compile(chain, current);
    StageModel model{current_plan, config.overhead, 0.0};
    ObsEpoch obs{config.sink, current_plan};

    Rng rng{config.overhead.seed};
    const double cv = config.overhead.jitter_cv;
    const double sigma = cv > 0.0 ? std::sqrt(std::log(1.0 + cv * cv)) : 0.0;
    const double mu = -0.5 * sigma * sigma; // unit-mean lognormal

    std::size_t next_failure = 0;
    std::uint64_t departed = 0;
    double window_start = 0.0;
    double final_departure = 0.0;

    for (std::uint64_t f = 0; f < config.frames; ++f) {
        bool frame_lost = false;
        while (next_failure < pending.size() && pending[next_failure].frame <= f) {
            const SimFailure& event = pending[next_failure++];
            const std::size_t stage =
                std::min(event.stage, current.stage_count() - 1);
            const core::CoreType lost = current.stage(stage).type;

            RecoveryRecord record;
            record.frame = f;
            record.stage = stage;
            record.lost_type = lost;
            record.downtime_us = faults.detection_us + faults.reschedule_us;
            record.frames_dropped = 1; // the frame in service on the lost core

            core::Solution next;
            try {
                next = rescheduler.on_core_loss(lost, 1);
            } catch (const rt::NoScheduleError&) {
                result.schedulable = false;
            }
            record.resources_after = rescheduler.resources();
            if (!result.schedulable) {
                if (obs.active())
                    obs.record_loss(stage, f, final_departure + faults.detection_us);
                result.recoveries.push_back(std::move(record));
                result.frames_dropped += 1;
                result.final_solution = current;
                result.overall.period_us =
                    departed > config.warmup_frames && final_departure > window_start
                        ? (final_departure - window_start)
                              / static_cast<double>(departed - config.warmup_frames)
                        : 0.0;
                result.overall.fps =
                    result.overall.period_us > 0.0 ? 1e6 / result.overall.period_us : 0.0;
                return result;
            }
            record.new_solution = next;

            // Would the runtime hot-swap in place? Same decision rule as
            // run_with_recovery: plan::diff against the running plan.
            plan::ExecutionPlan next_plan = plan::ExecutionPlan::compile(chain, next);
            const plan::PlanDelta delta = plan::diff(current_plan, next_plan);
            record.delta_applied = delta.compatible;
            if (faults.delta_swap_us.has_value() && delta.compatible)
                record.downtime_us = faults.detection_us + *faults.delta_swap_us;
            // Frame-granular in-flight swap: a resize-only delta skips the
            // drain entirely, so the stall is detection + in-flight spawn.
            if (faults.frame_swap_us.has_value() && delta.resize_only()) {
                record.frame_swap_applied = true;
                record.downtime_us = faults.detection_us + *faults.frame_swap_us;
            }

            result.recoveries.push_back(record);
            result.frames_dropped += 1;
            frame_lost = true;

            // Hot-swap: every server of the new structure becomes available
            // once the loss is detected and the new schedule deployed.
            const double resume_at = final_departure + record.downtime_us;
            if (obs.active()) {
                obs.record_loss(stage, f, final_departure + faults.detection_us);
                // The resumed pipeline is a fresh track group, exactly like
                // run_with_recovery appending a hot-swapped Pipeline's
                // workers to the shared recorder.
                obs = ObsEpoch{config.sink, next_plan};
            }
            current = std::move(next);
            current_plan = std::move(next_plan);
            model = StageModel{current_plan, config.overhead, resume_at};
        }
        if (frame_lost)
            continue; // consumed by the failure event(s)

        // Stage 0 sources frames continuously; the post-failure stall is
        // carried by the servers' ready times (resume_at).
        double arrival = 0.0;
        const std::size_t k = current.stage_count();
        for (std::size_t i = 0; i < k; ++i) {
            const auto r = model.last_departures[i].size();
            const auto server =
                static_cast<std::size_t>(departed % static_cast<std::uint64_t>(r));
            double& server_free = model.last_departures[i][server];
            const double start = std::max(arrival, server_free);
            const double jitter = sigma > 0.0 ? std::exp(mu + sigma * rng.normal()) : 1.0;
            const double service = model.base_service[i] * model.penalty[i] * jitter;
            const double depart = start + service;
            server_free = depart;
            if (obs.active())
                obs.record_span(i, server, f, start, service, start - arrival);
            arrival = depart + config.overhead.adaptor_crossing_us;
        }
        final_departure = arrival - config.overhead.adaptor_crossing_us;
        ++departed;
        if (departed == config.warmup_frames)
            window_start = final_departure;
    }

    result.final_solution = current;
    const auto measured = departed > config.warmup_frames
        ? static_cast<double>(departed - config.warmup_frames)
        : 0.0;
    const double window = final_departure - window_start;
    result.overall.period_us = measured > 0.0 && window > 0.0 ? window / measured : 0.0;
    result.overall.fps = result.overall.period_us > 0.0 ? 1e6 / result.overall.period_us : 0.0;
    obs.record_run(departed, result.frames_dropped, final_departure, result.overall.fps);
    return result;
}

std::vector<SimFailure> random_failures(std::uint64_t seed, int count, std::uint64_t warmup,
                                        std::uint64_t frames, std::size_t stage_count)
{
    if (frames == 0 || stage_count == 0 || count <= 0)
        return {};
    if (warmup >= frames)
        warmup = 0;
    Rng rng{seed};
    std::vector<SimFailure> plan;
    plan.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        SimFailure failure;
        failure.frame = static_cast<std::uint64_t>(rng.uniform_int(
            static_cast<std::int64_t>(warmup), static_cast<std::int64_t>(frames) - 1));
        failure.stage = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(stage_count) - 1));
        plan.push_back(failure);
    }
    std::stable_sort(plan.begin(), plan.end(),
                     [](const SimFailure& a, const SimFailure& b) { return a.frame < b.frame; });
    return plan;
}

AdmissionSimResult simulate_admission(const std::vector<AdmissionArrival>& arrivals,
                                      const AdmissionSimConfig& config)
{
    AdmissionSimResult result;
    svc::AdmissionQueue queue{config.admission};
    svc::CircuitBreaker breaker{config.breaker};

    const std::size_t servers =
        config.servers > 0 ? static_cast<std::size_t>(config.servers) : 1;
    std::vector<std::int64_t> free_at_us(servers, 0);

    // Mirror of the service's worker deques: tickets in arrival order. A
    // shed (displaced) ticket stays in the deque as a no-op exactly like
    // the runtime's -- the dispatcher skips it on pop.
    struct Pending {
        std::shared_ptr<svc::AdmissionTicket> ticket;
        std::size_t request = 0;
        std::int64_t arrived_us = 0;
    };
    std::deque<Pending> fifo;

    auto decide = [&result](std::size_t request, AdmissionOutcome outcome, std::int64_t at_us) {
        result.decisions.push_back(AdmissionDecision{request, outcome, at_us});
        switch (outcome) {
        case AdmissionOutcome::served: ++result.served; break;
        case AdmissionOutcome::failed: ++result.failed; break;
        case AdmissionOutcome::rejected_queue: ++result.rejected_queue; break;
        case AdmissionOutcome::displaced: ++result.displaced; break;
        case AdmissionOutcome::rejected_breaker: ++result.rejected_breaker; break;
        case AdmissionOutcome::deadline_exceeded: ++result.deadline_exceeded; break;
        }
    };

    // Runs every dispatch that starts strictly before `horizon_us` (the next
    // arrival). Ties go to the arrival: a displacing newcomer at time t
    // beats a server grabbing its victim at t.
    auto dispatch_until = [&](std::int64_t horizon_us) {
        for (;;) {
            while (!fifo.empty()
                   && fifo.front().ticket->state.load(std::memory_order_acquire)
                       != svc::AdmissionTicket::State::queued)
                fifo.pop_front();
            if (fifo.empty())
                return;
            auto freest = std::min_element(free_at_us.begin(), free_at_us.end());
            const Pending& head = fifo.front();
            const std::int64_t start_us = std::max(*freest, head.arrived_us);
            if (start_us >= horizon_us)
                return;
            Pending job = std::move(fifo.front());
            fifo.pop_front();
            if (!job.ticket->claim())
                continue; // shed between the state peek and the claim
            queue.release(*job.ticket);
            const AdmissionArrival& arrival = arrivals[job.request];
            if (job.ticket->deadline_ns > 0 && start_us * 1000 > job.ticket->deadline_ns) {
                decide(job.request, AdmissionOutcome::deadline_exceeded, start_us);
                continue; // the check is instant; the server stays free
            }
            if (!breaker.allow(start_us * 1000)) {
                decide(job.request, AdmissionOutcome::rejected_breaker, start_us);
                continue;
            }
            const std::int64_t end_us = start_us + std::max<std::int64_t>(arrival.service_us, 0);
            *freest = end_us;
            if (arrival.fails) {
                breaker.on_failure(end_us * 1000);
                decide(job.request, AdmissionOutcome::failed, end_us);
            } else {
                breaker.on_success(end_us * 1000);
                decide(job.request, AdmissionOutcome::served, end_us);
            }
        }
    };

    // Arrivals are processed in (at_us, index) order without mutating the
    // caller's vector (decisions index into it as given).
    std::vector<std::size_t> order(arrivals.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&arrivals](std::size_t a, std::size_t b) {
        return arrivals[a].at_us < arrivals[b].at_us;
    });

    for (const std::size_t index : order) {
        const AdmissionArrival& arrival = arrivals[index];
        dispatch_until(arrival.at_us);
        auto ticket = std::make_shared<svc::AdmissionTicket>();
        ticket->priority = arrival.priority;
        ticket->deadline_ns = arrival.deadline_us > 0 ? arrival.deadline_us * 1000 : 0;
        // The ticket id carries the arrival index (a pointer->index map
        // would break when the allocator reuses a freed ticket's address).
        ticket->id = static_cast<std::uint64_t>(index) + 1;
        const svc::AdmissionQueue::Offer offer = queue.offer(ticket);
        if (offer.verdict == svc::AdmissionQueue::Verdict::rejected) {
            decide(index, AdmissionOutcome::rejected_queue, arrival.at_us);
            continue;
        }
        if (offer.verdict == svc::AdmissionQueue::Verdict::displaced && offer.victim)
            decide(static_cast<std::size_t>(offer.victim->id - 1),
                   AdmissionOutcome::displaced, arrival.at_us);
        fifo.push_back(Pending{std::move(ticket), index, arrival.at_us});
    }
    dispatch_until(std::numeric_limits<std::int64_t>::max());

    result.breaker_transitions = breaker.transitions();
    result.breaker_trips = breaker.trips();
    result.admission_stats = queue.stats();
    return result;
}

// -- multi-tenant arbitration ---------------------------------------------

namespace {

/// Accumulates one tenant's rate integrals over its presence intervals.
struct TenantAccumulator {
    bool present = false;
    double period_us = arb::kInfinitePeriod;
    double weight = 1.0;
    double present_us = 0.0;
    double frames = 0.0;
    double goodput_frames = 0.0;      ///< demand-capped frames
    double weighted_rate_us = 0.0;    ///< integral of (1/period)/weight dt
    bool ever_present = false;
};

} // namespace

MultiTenantResult simulate_multi_tenant(const MultiTenantScenario& scenario)
{
    if (scenario.horizon_us <= 0)
        throw std::invalid_argument{"simulate_multi_tenant: horizon must be positive"};
    for (std::size_t e = 0; e < scenario.events.size(); ++e) {
        const TenantEvent& event = scenario.events[e];
        if (event.at_us < 0 || event.at_us >= scenario.horizon_us)
            throw std::invalid_argument{
                "simulate_multi_tenant: event outside [0, horizon)"};
        if (e > 0 && event.at_us < scenario.events[e - 1].at_us)
            throw std::invalid_argument{
                "simulate_multi_tenant: events must be sorted by at_us"};
        if (event.kind != TenantEventKind::set_pool
            && event.tenant >= scenario.tenants.size())
            throw std::invalid_argument{
                "simulate_multi_tenant: event references unknown tenant"};
    }

    arb::ArbiterConfig config;
    config.pool = scenario.pool;
    config.policy = scenario.policy;
    config.service = scenario.service;
    arb::Arbiter arbiter{config};

    // Scenario index <-> arbiter id. Ids are handed out in join order, so a
    // rejoin gets a fresh id; the reverse map tracks only live tenants.
    std::vector<arb::TenantId> id_of(scenario.tenants.size(), 0);
    std::vector<TenantAccumulator> acc(scenario.tenants.size());

    MultiTenantResult result;
    std::int64_t now_us = 0;

    const auto integrate_to = [&](std::int64_t t_us) {
        const double dt = static_cast<double>(t_us - now_us);
        if (dt <= 0.0)
            return;
        for (std::size_t t = 0; t < acc.size(); ++t) {
            TenantAccumulator& a = acc[t];
            if (!a.present)
                continue;
            a.present_us += dt;
            if (std::isinf(a.period_us) || a.period_us <= 0.0)
                continue;
            const double rate_fps = 1e6 / a.period_us; // frames per second
            a.frames += dt / a.period_us;
            const double demand = scenario.tenants[t].demand_fps;
            const double good_fps = demand > 0.0 ? std::min(rate_fps, demand) : rate_fps;
            a.goodput_frames += dt * (good_fps / 1e6);
            a.weighted_rate_us += dt * (1.0 / a.period_us) / a.weight;
        }
        now_us = t_us;
    };

    const auto rearbitrate_and_record = [&](std::int64_t at_us) {
        const arb::ArbitrationReport report = arbiter.rearbitrate();
        result.rearbitrations += 1;
        result.probes += report.allocation.probes;

        ArbEventRecord record;
        record.at_us = at_us;
        record.generation = report.generation;
        record.steps = report.allocation.steps;
        record.tenants.reserve(report.ids.size());
        record.budgets.reserve(report.ids.size());
        record.periods_us.reserve(report.ids.size());
        for (std::size_t i = 0; i < report.ids.size(); ++i) {
            const arb::TenantId id = report.ids[i];
            const std::size_t scenario_index = static_cast<std::size_t>(
                std::find(id_of.begin(), id_of.end(), id) - id_of.begin());
            record.tenants.push_back(scenario_index);
            record.budgets.push_back(report.allocation.tenants[i].budget);
            record.periods_us.push_back(report.allocation.tenants[i].period_us);
            TenantAccumulator& a = acc[scenario_index];
            a.period_us = report.allocation.tenants[i].period_us;
        }
        result.trace.push_back(std::move(record));
    };

    std::size_t e = 0;
    while (e < scenario.events.size()) {
        const std::int64_t at_us = scenario.events[e].at_us;
        integrate_to(at_us);
        // Apply every event sharing this timestamp, then rearbitrate once.
        for (; e < scenario.events.size() && scenario.events[e].at_us == at_us; ++e) {
            const TenantEvent& event = scenario.events[e];
            switch (event.kind) {
            case TenantEventKind::join: {
                if (acc[event.tenant].present)
                    throw std::invalid_argument{
                        "simulate_multi_tenant: join of a present tenant"};
                id_of[event.tenant] = arbiter.add_tenant(scenario.tenants[event.tenant].spec);
                TenantAccumulator& a = acc[event.tenant];
                a.present = true;
                a.ever_present = true;
                a.period_us = arb::kInfinitePeriod;
                a.weight = scenario.tenants[event.tenant].spec.weight;
                break;
            }
            case TenantEventKind::leave:
                if (!acc[event.tenant].present)
                    throw std::invalid_argument{
                        "simulate_multi_tenant: leave of an absent tenant"};
                arbiter.remove_tenant(id_of[event.tenant]);
                id_of[event.tenant] = 0;
                acc[event.tenant].present = false;
                acc[event.tenant].period_us = arb::kInfinitePeriod;
                break;
            case TenantEventKind::set_weight:
                if (!acc[event.tenant].present)
                    throw std::invalid_argument{
                        "simulate_multi_tenant: set_weight of an absent tenant"};
                arbiter.set_weight(id_of[event.tenant], event.weight);
                acc[event.tenant].weight = event.weight;
                break;
            case TenantEventKind::set_pool:
                arbiter.set_pool(event.pool);
                break;
            }
        }
        rearbitrate_and_record(at_us);
    }
    integrate_to(scenario.horizon_us);

    result.tenants.resize(scenario.tenants.size());
    double goodput_frames = 0.0;
    std::vector<double> shares;
    for (std::size_t t = 0; t < acc.size(); ++t) {
        const TenantAccumulator& a = acc[t];
        TenantSimStats& stats = result.tenants[t];
        stats.present_us = a.present_us;
        stats.frames = a.frames;
        if (a.present_us > 0.0) {
            stats.goodput_fps = a.goodput_frames / (a.present_us / 1e6);
            stats.mean_weighted_rate = a.weighted_rate_us / a.present_us;
        }
        goodput_frames += a.goodput_frames;
        if (a.ever_present)
            shares.push_back(stats.mean_weighted_rate);
    }
    result.aggregate_goodput_fps =
        goodput_frames / (static_cast<double>(scenario.horizon_us) / 1e6);
    result.jain_weighted = arb::jain_index(shares);
    return result;
}

AutoscaleSimResult simulate_autoscale(const AutoscaleScenario& scenario)
{
    if (scenario.chain.empty())
        throw std::invalid_argument{"simulate_autoscale: empty chain"};
    if (scenario.load.empty())
        throw std::invalid_argument{"simulate_autoscale: empty load profile"};
    for (std::size_t i = 1; i < scenario.load.size(); ++i)
        if (scenario.load[i].at_us < scenario.load[i - 1].at_us)
            throw std::invalid_argument{"simulate_autoscale: load profile must be sorted"};
    if (scenario.sample_period_us <= 0)
        throw std::invalid_argument{"simulate_autoscale: sample period must be positive"};
    if (scenario.horizon_us <= 0)
        throw std::invalid_argument{"simulate_autoscale: horizon must be positive"};
    if (scenario.initial.total() < 1)
        throw std::invalid_argument{"simulate_autoscale: empty initial pool"};

    // Same clamp defaulting as the live Autoscaler: an unset max would
    // forbid every grow.
    rt::AutoscalePolicy policy = scenario.policy;
    policy.max_pool.big = std::max(policy.max_pool.big, scenario.initial.big);
    policy.max_pool.little = std::max(policy.max_pool.little, scenario.initial.little);

    AutoscaleSimResult result;
    result.final_pool = scenario.initial;

    // One warm-start chain threads through every re-solve of the replay,
    // exactly like the live Autoscaler's retained frontier.
    std::shared_ptr<const core::HeradFrontier> frontier;
    std::uint64_t resolves = 0;
    std::uint64_t warm_resolves = 0;
    const auto solve_pool = [&](core::Resources target) -> core::ScheduleResult {
        core::ScheduleRequest request{scenario.chain, target, core::Strategy::herad,
                                      scenario.options};
        request.priority = svc::kRecoveryPriority;
        request.warm.frontier = frontier;
        request.warm.keep_frontier = true;
        core::ScheduleResult solved = scenario.service != nullptr
                                          ? scenario.service->solve(request)
                                          : core::schedule(request);
        if (solved.ok()) {
            if (solved.frontier != nullptr)
                frontier = solved.frontier;
            ++resolves;
            // A service cache hit skipped the DP just like the incremental
            // path did; count both as warm so replays through a shared
            // (pre-populated) service stay trace-equal.
            if (solved.warm_start || solved.cache_hit)
                ++warm_resolves;
        }
        return solved;
    };

    const core::ScheduleResult first = solve_pool(scenario.initial);
    if (!first.ok())
        throw std::invalid_argument{"simulate_autoscale: initial pool admits no schedule"};
    double period_us = expected_period_us(scenario.chain, first.solution);
    double energy_item = core::energy_per_item(scenario.chain, first.solution, scenario.power);

    rt::AutoscaleController controller{policy};
    double tracking_error_sum = 0.0;
    std::int64_t last_landed_us = std::numeric_limits<std::int64_t>::min();
    result.min_action_gap_us = scenario.horizon_us;
    std::size_t load_index = 0;

    for (std::int64_t now_us = scenario.sample_period_us; now_us < scenario.horizon_us;
         now_us += scenario.sample_period_us) {
        while (load_index + 1 < scenario.load.size()
               && scenario.load[load_index + 1].at_us <= now_us)
            ++load_index;
        const double offered_fps = scenario.load[load_index].offered_fps;
        // Utilization = offered load over delivered capacity, the virtual
        // stand-in for the pipeline's worst queue-depth fraction.
        const double capacity_fps = period_us > 0.0 ? 1e6 / period_us : 0.0;
        const double utilization = capacity_fps > 0.0 ? offered_fps / capacity_fps : 0.0;
        ++result.samples;
        tracking_error_sum += std::abs(utilization - policy.target_utilization);
        result.max_utilization = std::max(result.max_utilization, utilization);

        const rt::ScaleDecision decision = controller.observe(utilization, now_us * 1000);
        if (decision == rt::ScaleDecision::hold)
            continue;

        AutoscaleEventRecord event;
        event.at_us = now_us;
        event.decision = decision;
        event.before = result.final_pool;
        event.after = result.final_pool;
        event.utilization = utilization;
        event.period_us = period_us;
        event.energy_per_item = energy_item;

        // Mirror of rt::Autoscaler::feed: a grow has one stepped target; a
        // shrink tries every legal candidate in preference order (cheapest
        // resulting allocation first under policy.shrink_cheapest_first)
        // until one admits a schedule.
        core::ScheduleResult solved;
        if (decision == rt::ScaleDecision::shrink) {
            const auto candidates =
                rt::AutoscaleController::shrink_candidates(policy, result.final_pool);
            if (candidates.count == 0) {
                ++result.clamped;
                result.events.push_back(event);
                continue;
            }
            bool landed = false;
            for (int i = 0; i < candidates.count && !landed; ++i) {
                const core::Resources target = candidates.target[static_cast<std::size_t>(i)];
                solved = solve_pool(target);
                if (solved.ok()) {
                    result.final_pool = target;
                    landed = true;
                } else {
                    ++result.infeasible;
                }
            }
            if (!landed) {
                result.events.push_back(event);
                continue;
            }
        } else {
            const auto target =
                rt::AutoscaleController::stepped(policy, result.final_pool, decision);
            if (!target) {
                ++result.clamped;
                result.events.push_back(event);
                continue;
            }
            solved = solve_pool(*target);
            if (!solved.ok()) {
                ++result.infeasible;
                result.events.push_back(event);
                continue;
            }
            result.final_pool = *target;
        }
        period_us = expected_period_us(scenario.chain, solved.solution);
        energy_item = core::energy_per_item(scenario.chain, solved.solution, scenario.power);
        event.after = result.final_pool;
        event.period_us = period_us;
        event.energy_per_item = energy_item;
        event.warm = solved.warm_start || solved.cache_hit;
        (decision == rt::ScaleDecision::grow ? result.grows : result.shrinks) += 1;
        if (last_landed_us != std::numeric_limits<std::int64_t>::min())
            result.min_action_gap_us =
                std::min(result.min_action_gap_us, now_us - last_landed_us);
        last_landed_us = now_us;
        result.events.push_back(event);
    }

    result.warm_fraction =
        resolves > 0 ? static_cast<double>(warm_resolves) / static_cast<double>(resolves) : 0.0;
    result.mean_tracking_error =
        result.samples > 0 ? tracking_error_sum / static_cast<double>(result.samples) : 0.0;
    result.final_period_us = period_us;
    return result;
}

} // namespace amp::dsim
