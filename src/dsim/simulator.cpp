#include "dsim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amp::dsim {

namespace {

/// Per-stage service model + server availability for one stage structure.
struct StageModel {
    std::vector<double> base_service;
    std::vector<double> penalty;
    std::vector<std::vector<double>> last_departures; ///< ring per stage

    StageModel(const core::TaskChain& chain, const core::Solution& solution,
               const OverheadModel& overhead, double ready_at)
    {
        const auto& stages = solution.stages();
        const std::size_t k = stages.size();
        base_service.resize(k);
        penalty.resize(k);
        last_departures.resize(k);
        for (std::size_t i = 0; i < k; ++i) {
            const core::Stage& st = stages[i];
            base_service[i] = chain.interval_sum(st.first, st.last, st.type);
            penalty[i] = 1.0 + overhead.service_inflation;
            if (st.cores > 1) {
                penalty[i] += overhead.replication_penalty;
                if (st.type == core::CoreType::little)
                    penalty[i] += overhead.little_replication_penalty;
            }
            last_departures[i].assign(static_cast<std::size_t>(st.cores), ready_at);
        }
    }
};

} // namespace

double expected_period_us(const core::TaskChain& chain, const core::Solution& solution)
{
    return solution.period(chain);
}

SimulationResult simulate(const core::TaskChain& chain, const core::Solution& solution,
                          const SimulationConfig& config)
{
    if (solution.empty())
        throw std::invalid_argument{"simulate: empty solution"};
    if (!solution.is_well_formed(chain))
        throw std::invalid_argument{"simulate: solution does not fit the chain"};
    if (config.frames <= config.warmup_frames)
        throw std::invalid_argument{"simulate: frames must exceed warmup_frames"};

    const auto& stages = solution.stages();
    const std::size_t k = stages.size();

    // Base per-frame service time of each stage: the whole interval's
    // latency on the stage's core type (each replica handles whole frames).
    std::vector<double> base_service(k);
    std::vector<double> penalty(k);
    for (std::size_t i = 0; i < k; ++i) {
        const core::Stage& st = stages[i];
        base_service[i] = chain.interval_sum(st.first, st.last, st.type);
        penalty[i] = 1.0 + config.overhead.service_inflation;
        if (st.cores > 1) {
            penalty[i] += config.overhead.replication_penalty;
            if (st.type == core::CoreType::little)
                penalty[i] += config.overhead.little_replication_penalty;
        }
    }

    // Departure-time ring buffer per stage: depart[i][f mod r_i].
    std::vector<std::vector<double>> last_departures(k);
    for (std::size_t i = 0; i < k; ++i)
        last_departures[i].assign(static_cast<std::size_t>(stages[i].cores), 0.0);

    Rng rng{config.overhead.seed};
    const double sigma =
        config.overhead.jitter_cv > 0.0
            ? std::sqrt(std::log(1.0 + config.overhead.jitter_cv * config.overhead.jitter_cv))
            : 0.0;
    const double mu = -0.5 * sigma * sigma; // unit-mean lognormal

    std::vector<double> busy(k, 0.0);
    std::vector<double> service_sum(k, 0.0);

    double window_start = 0.0; // departure time of the last warmup frame
    double final_departure = 0.0;

    for (std::uint64_t f = 0; f < config.frames; ++f) {
        double arrival = 0.0; // stage 0 sources frames continuously
        for (std::size_t i = 0; i < k; ++i) {
            const auto r = static_cast<std::size_t>(stages[i].cores);
            double& server_free = last_departures[i][f % r];
            const double start = std::max(arrival, server_free);
            const double jitter = sigma > 0.0 ? std::exp(mu + sigma * rng.normal()) : 1.0;
            const double service = base_service[i] * penalty[i] * jitter;
            const double depart = start + service;
            server_free = depart;
            busy[i] += service;
            service_sum[i] += service;
            arrival = depart + config.overhead.adaptor_crossing_us;
        }
        const double depart_last = arrival - config.overhead.adaptor_crossing_us;
        if (f == config.warmup_frames - 1)
            window_start = depart_last;
        final_departure = depart_last;
    }

    SimulationResult result;
    const auto measured = static_cast<double>(config.frames - config.warmup_frames);
    const double window = final_departure - window_start;
    result.period_us = window > 0.0 ? window / measured : 0.0;
    result.fps = result.period_us > 0.0 ? 1e6 / result.period_us : 0.0;

    result.stages.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
        const double capacity = final_departure * static_cast<double>(stages[i].cores);
        result.stages[i].utilization = capacity > 0.0 ? std::min(1.0, busy[i] / capacity) : 0.0;
        result.stages[i].mean_service_us = service_sum[i] / static_cast<double>(config.frames);
    }
    return result;
}

FailureSimulationResult simulate_with_failures(const core::TaskChain& chain,
                                               const core::Solution& solution,
                                               core::Resources budget,
                                               const SimulationConfig& config,
                                               const FailureModel& faults)
{
    if (solution.empty())
        throw std::invalid_argument{"simulate_with_failures: empty solution"};
    if (!solution.is_well_formed(chain))
        throw std::invalid_argument{"simulate_with_failures: solution does not fit the chain"};
    if (config.frames <= config.warmup_frames)
        throw std::invalid_argument{"simulate_with_failures: frames must exceed warmup_frames"};

    std::vector<SimFailure> pending = faults.failures;
    std::stable_sort(pending.begin(), pending.end(),
                     [](const SimFailure& a, const SimFailure& b) { return a.frame < b.frame; });

    // The rescheduler mirrors the runtime's recovery decisions: same chain,
    // same degraded resource vector, same strategy preferences.
    rt::Rescheduler rescheduler{chain, budget, faults.policy};

    FailureSimulationResult result;
    core::Solution current = solution;
    StageModel model{chain, current, config.overhead, 0.0};

    Rng rng{config.overhead.seed};
    const double cv = config.overhead.jitter_cv;
    const double sigma = cv > 0.0 ? std::sqrt(std::log(1.0 + cv * cv)) : 0.0;
    const double mu = -0.5 * sigma * sigma; // unit-mean lognormal

    std::size_t next_failure = 0;
    std::uint64_t departed = 0;
    double window_start = 0.0;
    double final_departure = 0.0;

    for (std::uint64_t f = 0; f < config.frames; ++f) {
        bool frame_lost = false;
        while (next_failure < pending.size() && pending[next_failure].frame <= f) {
            const SimFailure& event = pending[next_failure++];
            const std::size_t stage =
                std::min(event.stage, current.stage_count() - 1);
            const core::CoreType lost = current.stage(stage).type;

            RecoveryRecord record;
            record.frame = f;
            record.stage = stage;
            record.lost_type = lost;
            record.downtime_us = faults.detection_us + faults.reschedule_us;
            record.frames_dropped = 1; // the frame in service on the lost core

            core::Solution next;
            try {
                next = rescheduler.on_core_loss(lost, 1);
            } catch (const rt::NoScheduleError&) {
                result.schedulable = false;
            }
            record.resources_after = rescheduler.resources();
            if (!result.schedulable) {
                result.recoveries.push_back(std::move(record));
                result.frames_dropped += 1;
                result.final_solution = current;
                result.overall.period_us =
                    departed > config.warmup_frames && final_departure > window_start
                        ? (final_departure - window_start)
                              / static_cast<double>(departed - config.warmup_frames)
                        : 0.0;
                result.overall.fps =
                    result.overall.period_us > 0.0 ? 1e6 / result.overall.period_us : 0.0;
                return result;
            }
            record.new_solution = next;
            result.recoveries.push_back(record);
            result.frames_dropped += 1;
            frame_lost = true;

            // Hot-swap: every server of the new structure becomes available
            // once the loss is detected and the new schedule deployed.
            const double resume_at = final_departure + record.downtime_us;
            current = std::move(next);
            model = StageModel{chain, current, config.overhead, resume_at};
        }
        if (frame_lost)
            continue; // consumed by the failure event(s)

        // Stage 0 sources frames continuously; the post-failure stall is
        // carried by the servers' ready times (resume_at).
        double arrival = 0.0;
        const std::size_t k = current.stage_count();
        for (std::size_t i = 0; i < k; ++i) {
            const auto r = model.last_departures[i].size();
            double& server_free = model.last_departures[i][static_cast<std::size_t>(
                departed % static_cast<std::uint64_t>(r))];
            const double start = std::max(arrival, server_free);
            const double jitter = sigma > 0.0 ? std::exp(mu + sigma * rng.normal()) : 1.0;
            const double service = model.base_service[i] * model.penalty[i] * jitter;
            const double depart = start + service;
            server_free = depart;
            arrival = depart + config.overhead.adaptor_crossing_us;
        }
        final_departure = arrival - config.overhead.adaptor_crossing_us;
        ++departed;
        if (departed == config.warmup_frames)
            window_start = final_departure;
    }

    result.final_solution = current;
    const auto measured = departed > config.warmup_frames
        ? static_cast<double>(departed - config.warmup_frames)
        : 0.0;
    const double window = final_departure - window_start;
    result.overall.period_us = measured > 0.0 && window > 0.0 ? window / measured : 0.0;
    result.overall.fps = result.overall.period_us > 0.0 ? 1e6 / result.overall.period_us : 0.0;
    return result;
}

std::vector<SimFailure> random_failures(std::uint64_t seed, int count, std::uint64_t warmup,
                                        std::uint64_t frames, std::size_t stage_count)
{
    if (frames == 0 || stage_count == 0 || count <= 0)
        return {};
    if (warmup >= frames)
        warmup = 0;
    Rng rng{seed};
    std::vector<SimFailure> plan;
    plan.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        SimFailure failure;
        failure.frame = static_cast<std::uint64_t>(rng.uniform_int(
            static_cast<std::int64_t>(warmup), static_cast<std::int64_t>(frames) - 1));
        failure.stage = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(stage_count) - 1));
        plan.push_back(failure);
    }
    std::stable_sort(plan.begin(), plan.end(),
                     [](const SimFailure& a, const SimFailure& b) { return a.frame < b.frame; });
    return plan;
}

} // namespace amp::dsim

