#include "dsim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amp::dsim {

double expected_period_us(const core::TaskChain& chain, const core::Solution& solution)
{
    return solution.period(chain);
}

SimulationResult simulate(const core::TaskChain& chain, const core::Solution& solution,
                          const SimulationConfig& config)
{
    if (solution.empty())
        throw std::invalid_argument{"simulate: empty solution"};
    if (!solution.is_well_formed(chain))
        throw std::invalid_argument{"simulate: solution does not fit the chain"};
    if (config.frames <= config.warmup_frames)
        throw std::invalid_argument{"simulate: frames must exceed warmup_frames"};

    const auto& stages = solution.stages();
    const std::size_t k = stages.size();

    // Base per-frame service time of each stage: the whole interval's
    // latency on the stage's core type (each replica handles whole frames).
    std::vector<double> base_service(k);
    std::vector<double> penalty(k);
    for (std::size_t i = 0; i < k; ++i) {
        const core::Stage& st = stages[i];
        base_service[i] = chain.interval_sum(st.first, st.last, st.type);
        penalty[i] = 1.0 + config.overhead.service_inflation;
        if (st.cores > 1) {
            penalty[i] += config.overhead.replication_penalty;
            if (st.type == core::CoreType::little)
                penalty[i] += config.overhead.little_replication_penalty;
        }
    }

    // Departure-time ring buffer per stage: depart[i][f mod r_i].
    std::vector<std::vector<double>> last_departures(k);
    for (std::size_t i = 0; i < k; ++i)
        last_departures[i].assign(static_cast<std::size_t>(stages[i].cores), 0.0);

    Rng rng{config.overhead.seed};
    const double sigma =
        config.overhead.jitter_cv > 0.0
            ? std::sqrt(std::log(1.0 + config.overhead.jitter_cv * config.overhead.jitter_cv))
            : 0.0;
    const double mu = -0.5 * sigma * sigma; // unit-mean lognormal

    std::vector<double> busy(k, 0.0);
    std::vector<double> service_sum(k, 0.0);

    double window_start = 0.0; // departure time of the last warmup frame
    double final_departure = 0.0;

    for (std::uint64_t f = 0; f < config.frames; ++f) {
        double arrival = 0.0; // stage 0 sources frames continuously
        for (std::size_t i = 0; i < k; ++i) {
            const auto r = static_cast<std::size_t>(stages[i].cores);
            double& server_free = last_departures[i][f % r];
            const double start = std::max(arrival, server_free);
            const double jitter = sigma > 0.0 ? std::exp(mu + sigma * rng.normal()) : 1.0;
            const double service = base_service[i] * penalty[i] * jitter;
            const double depart = start + service;
            server_free = depart;
            busy[i] += service;
            service_sum[i] += service;
            arrival = depart + config.overhead.adaptor_crossing_us;
        }
        const double depart_last = arrival - config.overhead.adaptor_crossing_us;
        if (f == config.warmup_frames - 1)
            window_start = depart_last;
        final_departure = depart_last;
    }

    SimulationResult result;
    const auto measured = static_cast<double>(config.frames - config.warmup_frames);
    const double window = final_departure - window_start;
    result.period_us = window > 0.0 ? window / measured : 0.0;
    result.fps = result.period_us > 0.0 ? 1e6 / result.period_us : 0.0;

    result.stages.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
        const double capacity = final_departure * static_cast<double>(stages[i].cores);
        result.stages[i].utilization = capacity > 0.0 ? std::min(1.0, busy[i] / capacity) : 0.0;
        result.stages[i].mean_service_us = service_sum[i] / static_cast<double>(config.frames);
    }
    return result;
}

} // namespace amp::dsim
