#include "plan/graph_shape.hpp"

#include <algorithm>
#include <string>

namespace amp::plan {

ChainShape ChainShape::of(const core::TaskChain& chain)
{
    ChainShape shape;
    shape.tasks = chain.size();
    shape.replicable.reserve(static_cast<std::size_t>(chain.size()));
    for (int i = 1; i <= chain.size(); ++i)
        shape.replicable.push_back(chain.replicable(i));
    return shape;
}

GraphShape GraphShape::linear(ChainShape shape)
{
    GraphShape graph;
    graph.branches.push_back(GraphBranch{0, 1, shape.tasks, {}, {}});
    graph.chain = std::move(shape);
    return graph;
}

GraphShape GraphShape::of(const core::TaskChain& chain)
{
    return linear(ChainShape::of(chain));
}

int GraphShape::source_branch() const
{
    for (const GraphBranch& b : branches)
        if (b.preds.empty())
            return b.index;
    throw PlanError{"plan: graph has no source branch"};
}

int GraphShape::sink_branch() const
{
    for (const GraphBranch& b : branches)
        if (b.succs.empty())
            return b.index;
    throw PlanError{"plan: graph has no sink branch"};
}

void GraphShape::validate() const
{
    if (chain.tasks <= 0 || chain.replicable.size() != static_cast<std::size_t>(chain.tasks))
        throw PlanError{"plan: chain shape is empty or inconsistent"};
    if (branches.empty())
        throw PlanError{"plan: graph has no branches"};

    const int n = static_cast<int>(branches.size());
    int expected = 1;
    int sources = 0;
    int sinks = 0;
    for (int b = 0; b < n; ++b) {
        const GraphBranch& branch = branches[static_cast<std::size_t>(b)];
        if (branch.index != b)
            throw PlanError{"plan: graph branches must be indexed in order"};
        if (branch.first != expected || branch.last < branch.first)
            throw PlanError{"plan: graph branches must tile the chain contiguously"};
        if (branch.last > chain.tasks)
            throw PlanError{"plan: graph branch interval exceeds the chain"};
        expected = branch.last + 1;

        const auto forward_sorted = [b, n](const std::vector<int>& edges, bool succ) {
            int prev = -1;
            for (const int e : edges) {
                if (e < 0 || e >= n || e == b || e <= prev)
                    return false;
                if (succ ? e < b : e > b)
                    return false;
                prev = e;
            }
            return true;
        };
        if (!forward_sorted(branch.succs, true) || !forward_sorted(branch.preds, false))
            throw PlanError{"plan: graph edges must be forward, sorted and duplicate-free"};
        for (const int s : branch.succs) {
            const auto& back = branches[static_cast<std::size_t>(s)].preds;
            if (std::find(back.begin(), back.end(), b) == back.end())
                throw PlanError{"plan: graph edge " + std::to_string(b) + "->"
                                + std::to_string(s) + " is not mirrored in preds"};
        }
        for (const int p : branch.preds) {
            const auto& fwd = branches[static_cast<std::size_t>(p)].succs;
            if (std::find(fwd.begin(), fwd.end(), b) == fwd.end())
                throw PlanError{"plan: graph edge " + std::to_string(p) + "->"
                                + std::to_string(b) + " is not mirrored in succs"};
        }
        sources += branch.preds.empty() ? 1 : 0;
        sinks += branch.succs.empty() ? 1 : 0;
    }
    if (expected != chain.tasks + 1)
        throw PlanError{"plan: graph branches do not cover the whole chain"};
    if (sources != 1)
        throw PlanError{"plan: graph needs exactly one source branch"};
    if (sinks != 1)
        throw PlanError{"plan: graph needs exactly one sink branch"};
}

} // namespace amp::plan
