#include "plan/execution_plan.hpp"

#include <algorithm>
#include <sstream>

namespace amp::plan {

ExecutionPlan ExecutionPlan::compile(const GraphShape& graph,
                                     const std::vector<core::Solution>& branch_solutions,
                                     PlanOptions options)
{
    ExecutionPlan p;
    p.shape_ = graph.chain;
    p.graph_ = graph;
    p.options_ = options;
    if (p.options_.queue_capacity == 0)
        p.options_.queue_capacity = 1; // the queues clamp the same way

    const ChainShape& shape = p.shape_;
    if (shape.tasks <= 0 || shape.replicable.size() != static_cast<std::size_t>(shape.tasks))
        throw PlanError{"plan: chain shape is empty or inconsistent"};
    graph.validate();
    if (branch_solutions.size() != graph.branches.size())
        throw PlanError{"plan: need exactly one solution per graph branch"};

    // Stitch: branches in index order, stages within a branch in order. The
    // branch intervals tile [1, n] contiguously, so the stitched stage list
    // tiles it too and every linear invariant (solution rebuild, period,
    // apply()) holds unchanged.
    std::vector<core::Stage> stitched;
    std::vector<int> branch_head(graph.branches.size(), 0);
    std::vector<int> branch_tail(graph.branches.size(), 0);
    for (std::size_t b = 0; b < graph.branches.size(); ++b) {
        const GraphBranch& branch = graph.branches[b];
        const core::Solution& solution = branch_solutions[b];
        if (solution.empty())
            throw PlanError{"plan: empty solution"};

        const int offset = branch.first - 1; // local task 1 == global task branch.first
        branch_head[b] = static_cast<int>(p.stages_.size());
        int expected = branch.first;
        for (const core::Stage& st : solution.stages()) {
            const int first = st.first + offset;
            const int last = st.last + offset;
            if (first != expected || last < first)
                throw PlanError{"plan: stages must tile the chain contiguously"};
            if (last > branch.last)
                throw PlanError{"plan: stage interval exceeds the chain"};
            if (st.cores < 1)
                throw PlanError{"plan: every stage needs at least one core"};

            PlanStage stage;
            stage.index = static_cast<int>(p.stages_.size());
            stage.first = first;
            stage.last = last;
            stage.replicas = st.cores;
            stage.type = st.type;
            stage.replicated = st.cores > 1;
            stage.sequential = false;
            stage.branch = branch.index;
            for (int i = first; i <= last; ++i)
                if (!shape.task_replicable(i))
                    stage.sequential = true;
            if (stage.replicated && stage.sequential)
                throw PlanError{"plan: replicated stage [" + std::to_string(first) + ", "
                                + std::to_string(last) + "] contains a sequential task"};

            stage.worker_ids.reserve(static_cast<std::size_t>(st.cores));
            for (int slot = 0; slot < st.cores; ++slot) {
                const int id = p.next_worker_id_++;
                stage.worker_ids.push_back(id);
                p.workers_.push_back(WorkerSlot{id, stage.index, slot, stage.type});
            }
            stitched.push_back(core::Stage{first, last, st.cores, st.type});
            p.stages_.push_back(std::move(stage));
            expected = last + 1;
        }
        if (expected != branch.last + 1)
            throw PlanError{"plan: solution does not cover the whole chain"};
        branch_tail[b] = static_cast<int>(p.stages_.size()) - 1;
    }
    p.solution_ = core::Solution{std::move(stitched)};

    // Stage edges: linear within a branch, branch edges tail -> head.
    for (std::size_t b = 0; b < graph.branches.size(); ++b) {
        for (int s = branch_head[b]; s < branch_tail[b]; ++s) {
            p.stages_[static_cast<std::size_t>(s)].succs.push_back(s + 1);
            p.stages_[static_cast<std::size_t>(s) + 1].preds.push_back(s);
        }
        for (const int succ : graph.branches[b].succs) {
            p.stages_[static_cast<std::size_t>(branch_tail[b])].succs.push_back(
                branch_head[static_cast<std::size_t>(succ)]);
            p.stages_[static_cast<std::size_t>(branch_head[static_cast<std::size_t>(succ)])]
                .preds.push_back(branch_tail[b]);
        }
    }
    for (PlanStage& stage : p.stages_) {
        std::sort(stage.preds.begin(), stage.preds.end());
        std::sort(stage.succs.begin(), stage.succs.end());
    }

    // Queues: one per stage edge in producer order, the sink stage feeding
    // the drain. For a linear plan this is exactly the historical layout
    // (queue i connects stage i to stage i + 1; the last one drains).
    const int k = static_cast<int>(p.stages_.size());
    for (int s = 0; s < k; ++s) {
        PlanStage& stage = p.stages_[static_cast<std::size_t>(s)];
        if (stage.succs.empty()) {
            const int q = static_cast<int>(p.queues_.size());
            p.queues_.push_back(QueueSpec{q, s, QueueSpec::kDrain, p.options_.queue_capacity});
            stage.out_queues.push_back(q);
            p.sink_stage_ = s;
            continue;
        }
        for (const int succ : stage.succs) {
            const int q = static_cast<int>(p.queues_.size());
            p.queues_.push_back(QueueSpec{q, s, succ, p.options_.queue_capacity});
            stage.out_queues.push_back(q);
            p.stages_[static_cast<std::size_t>(succ)].in_queues.push_back(q);
        }
    }
    p.source_stage_ = branch_head[static_cast<std::size_t>(graph.source_branch())];
    return p;
}

ExecutionPlan ExecutionPlan::compile(const core::TaskChain& chain, const GraphShape& graph,
                                     const std::vector<core::Solution>& branch_solutions,
                                     PlanOptions options)
{
    ExecutionPlan p = compile(graph, branch_solutions, options);
    if (chain.size() != graph.chain.tasks)
        throw PlanError{"plan: chain does not match the graph's task count"};
    p.chain_ = chain;
    for (PlanStage& stage : p.stages_)
        stage.service_us = chain.interval_sum(stage.first, stage.last, stage.type);
    return p;
}

ExecutionPlan ExecutionPlan::compile(const ChainShape& shape, const core::Solution& solution,
                                     PlanOptions options)
{
    // Pre-graph shape errors surfaced before graph validation; keep that
    // order for the degenerate path.
    if (shape.tasks <= 0 || shape.replicable.size() != static_cast<std::size_t>(shape.tasks))
        throw PlanError{"plan: chain shape is empty or inconsistent"};
    return compile(GraphShape::linear(shape), {solution}, options);
}

ExecutionPlan ExecutionPlan::compile(const core::TaskChain& chain, const core::Solution& solution,
                                     PlanOptions options)
{
    ExecutionPlan p = compile(ChainShape::of(chain), solution, options);
    p.chain_ = chain;
    for (PlanStage& stage : p.stages_)
        stage.service_us = chain.interval_sum(stage.first, stage.last, stage.type);
    return p;
}

double ExecutionPlan::period_us() const noexcept
{
    double period = 0.0;
    for (const PlanStage& stage : stages_) {
        const double weight = stage.sequential
            ? stage.service_us
            : stage.service_us / static_cast<double>(stage.replicas);
        period = std::max(period, weight);
    }
    return period;
}

std::string ExecutionPlan::summary() const
{
    std::ostringstream out;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        const PlanStage& stage = stages_[s];
        if (s > 0)
            out << " | ";
        out << '[' << stage.first << ',' << stage.last << "]x" << stage.replicas
            << core::to_string(stage.type);
        if (!linear())
            out << "@b" << stage.branch;
    }
    out << " (cap " << options_.queue_capacity << ')';
    return out.str();
}

PlanDelta diff(const ExecutionPlan& before, const ExecutionPlan& after)
{
    PlanDelta delta;
    const auto incompatible = [&delta](std::string reason) {
        delta.compatible = false;
        delta.reason = std::move(reason);
        delta.stages.clear();
        delta.spawned = delta.retired = delta.rebound = 0;
        return delta;
    };
    if (before.task_count() != after.task_count())
        return incompatible("task count changed");
    if (before.stage_count() != after.stage_count())
        return incompatible("stage count changed (recut)");
    if (before.options().queue_capacity != after.options().queue_capacity)
        return incompatible("queue capacity changed");
    // Queues hold in-flight frames; rewired edges (a DAG plan against a
    // linear plan with the same cut, or a different branch structure) can
    // never be swapped in place.
    if (before.queues().size() != after.queues().size())
        return incompatible("queue topology changed");
    for (std::size_t q = 0; q < before.queues().size(); ++q) {
        const QueueSpec& qb = before.queues()[q];
        const QueueSpec& qa = after.queues()[q];
        if (qb.producer_stage != qa.producer_stage || qb.consumer_stage != qa.consumer_stage)
            return incompatible("queue topology changed");
    }
    for (std::size_t s = 0; s < before.stage_count(); ++s) {
        const PlanStage& b = before.stage(s);
        const PlanStage& a = after.stage(s);
        if (b.first != a.first || b.last != a.last)
            return incompatible("stage " + std::to_string(s) + " interval recut");
    }
    for (std::size_t s = 0; s < before.stage_count(); ++s) {
        const PlanStage& b = before.stage(s);
        const PlanStage& a = after.stage(s);
        StageDelta sd;
        sd.stage = static_cast<int>(s);
        sd.replicas_before = b.replicas;
        sd.replicas_after = a.replicas;
        sd.type_before = b.type;
        sd.type_after = a.type;
        if (b.type != a.type) {
            sd.action = StageAction::rebound;
            ++delta.rebound;
        } else if (b.replicas != a.replicas) {
            sd.action = StageAction::resized;
        }
        if (a.replicas > b.replicas) {
            sd.spawn_count = a.replicas - b.replicas;
            delta.spawned += sd.spawn_count;
        } else if (a.replicas < b.replicas) {
            // Retire the highest slots; kept workers keep their slot order.
            const auto keep = static_cast<std::size_t>(a.replicas);
            sd.retire_worker_ids.assign(b.worker_ids.begin() + static_cast<std::ptrdiff_t>(keep),
                                        b.worker_ids.end());
            delta.retired += static_cast<int>(sd.retire_worker_ids.size());
        }
        delta.stages.push_back(std::move(sd));
    }
    return delta;
}

ExecutionPlan apply(const ExecutionPlan& base, const PlanDelta& delta)
{
    if (!delta.compatible)
        throw PlanError{"plan: cannot apply an incompatible delta (" + delta.reason + ")"};
    if (delta.stages.size() != base.stage_count())
        throw PlanError{"plan: delta does not match the base plan's stage count"};

    ExecutionPlan next = base; // graph, queue topology and stage edges survive
    next.workers_.clear();
    std::vector<core::Stage> stages;
    stages.reserve(next.stages_.size());
    for (std::size_t s = 0; s < next.stages_.size(); ++s) {
        PlanStage& stage = next.stages_[s];
        const StageDelta& sd = delta.stages[s];
        if (stage.replicas != sd.replicas_before || stage.type != sd.type_before)
            throw PlanError{"plan: delta was computed against a different base plan"};
        stage.type = sd.type_after;
        for (const int id : sd.retire_worker_ids) {
            const auto it = std::find(stage.worker_ids.begin(), stage.worker_ids.end(), id);
            if (it == stage.worker_ids.end())
                throw PlanError{"plan: delta retires unknown worker id "
                                + std::to_string(id)};
            stage.worker_ids.erase(it);
        }
        for (int i = 0; i < sd.spawn_count; ++i)
            stage.worker_ids.push_back(next.next_worker_id_++);
        stage.replicas = static_cast<int>(stage.worker_ids.size());
        if (stage.replicas != sd.replicas_after)
            throw PlanError{"plan: delta replica arithmetic does not add up"};
        if (stage.replicas < 1)
            throw PlanError{"plan: delta leaves a stage with no workers"};
        stage.replicated = stage.replicas > 1;
        if (stage.replicated && stage.sequential)
            throw PlanError{"plan: delta replicates a sequential stage"};
        if (next.chain_.has_value())
            stage.service_us =
                next.chain_->interval_sum(stage.first, stage.last, stage.type);
        for (std::size_t slot = 0; slot < stage.worker_ids.size(); ++slot)
            next.workers_.push_back(WorkerSlot{stage.worker_ids[slot], stage.index,
                                               static_cast<int>(slot), stage.type});
        stages.push_back(core::Stage{stage.first, stage.last, stage.replicas, stage.type});
    }
    next.solution_ = core::Solution{std::move(stages)};
    return next;
}

bool same_topology(const ExecutionPlan& a, const ExecutionPlan& b)
{
    if (a.stage_count() != b.stage_count())
        return false;
    if (a.options().queue_capacity != b.options().queue_capacity)
        return false;
    if (a.queues().size() != b.queues().size())
        return false;
    for (std::size_t q = 0; q < a.queues().size(); ++q)
        if (a.queues()[q].producer_stage != b.queues()[q].producer_stage
            || a.queues()[q].consumer_stage != b.queues()[q].consumer_stage)
            return false;
    for (std::size_t s = 0; s < a.stage_count(); ++s) {
        const PlanStage& x = a.stage(s);
        const PlanStage& y = b.stage(s);
        if (x.first != y.first || x.last != y.last || x.replicas != y.replicas
            || x.type != y.type)
            return false;
    }
    return true;
}

} // namespace amp::plan
