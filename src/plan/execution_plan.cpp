#include "plan/execution_plan.hpp"

#include <algorithm>
#include <sstream>

namespace amp::plan {

ChainShape ChainShape::of(const core::TaskChain& chain)
{
    ChainShape shape;
    shape.tasks = chain.size();
    shape.replicable.reserve(static_cast<std::size_t>(chain.size()));
    for (int i = 1; i <= chain.size(); ++i)
        shape.replicable.push_back(chain.replicable(i));
    return shape;
}

ExecutionPlan ExecutionPlan::compile(const ChainShape& shape, const core::Solution& solution,
                                     PlanOptions options)
{
    ExecutionPlan p;
    p.shape_ = shape;
    p.solution_ = solution;
    p.options_ = options;
    if (p.options_.queue_capacity == 0)
        p.options_.queue_capacity = 1; // the queues clamp the same way

    if (shape.tasks <= 0 || shape.replicable.size() != static_cast<std::size_t>(shape.tasks))
        throw PlanError{"plan: chain shape is empty or inconsistent"};
    if (solution.empty())
        throw PlanError{"plan: empty solution"};

    const auto& stages = solution.stages();
    p.stages_.reserve(stages.size());
    int expected = 1;
    for (std::size_t s = 0; s < stages.size(); ++s) {
        const core::Stage& st = stages[s];
        if (st.first != expected || st.last < st.first)
            throw PlanError{"plan: stages must tile the chain contiguously"};
        if (st.last > shape.tasks)
            throw PlanError{"plan: stage interval exceeds the chain"};
        if (st.cores < 1)
            throw PlanError{"plan: every stage needs at least one core"};

        PlanStage stage;
        stage.index = static_cast<int>(s);
        stage.first = st.first;
        stage.last = st.last;
        stage.replicas = st.cores;
        stage.type = st.type;
        stage.replicated = st.cores > 1;
        stage.sequential = false;
        for (int i = st.first; i <= st.last; ++i)
            if (!shape.task_replicable(i))
                stage.sequential = true;
        if (stage.replicated && stage.sequential)
            throw PlanError{"plan: replicated stage [" + std::to_string(st.first) + ", "
                            + std::to_string(st.last) + "] contains a sequential task"};

        stage.worker_ids.reserve(static_cast<std::size_t>(st.cores));
        for (int slot = 0; slot < st.cores; ++slot) {
            const int id = p.next_worker_id_++;
            stage.worker_ids.push_back(id);
            p.workers_.push_back(WorkerSlot{id, stage.index, slot, stage.type});
        }
        p.stages_.push_back(std::move(stage));
        expected = st.last + 1;
    }
    if (expected != shape.tasks + 1)
        throw PlanError{"plan: solution does not cover the whole chain"};

    const int k = static_cast<int>(p.stages_.size());
    p.queues_.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
        p.queues_.push_back(QueueSpec{i, i, i + 1 < k ? i + 1 : QueueSpec::kDrain,
                                      p.options_.queue_capacity});
    return p;
}

ExecutionPlan ExecutionPlan::compile(const core::TaskChain& chain, const core::Solution& solution,
                                     PlanOptions options)
{
    ExecutionPlan p = compile(ChainShape::of(chain), solution, options);
    p.chain_ = chain;
    for (PlanStage& stage : p.stages_)
        stage.service_us = chain.interval_sum(stage.first, stage.last, stage.type);
    return p;
}

double ExecutionPlan::period_us() const noexcept
{
    double period = 0.0;
    for (const PlanStage& stage : stages_) {
        const double weight = stage.sequential
            ? stage.service_us
            : stage.service_us / static_cast<double>(stage.replicas);
        period = std::max(period, weight);
    }
    return period;
}

std::string ExecutionPlan::summary() const
{
    std::ostringstream out;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        const PlanStage& stage = stages_[s];
        if (s > 0)
            out << " | ";
        out << '[' << stage.first << ',' << stage.last << "]x" << stage.replicas
            << core::to_string(stage.type);
    }
    out << " (cap " << options_.queue_capacity << ')';
    return out.str();
}

PlanDelta diff(const ExecutionPlan& before, const ExecutionPlan& after)
{
    PlanDelta delta;
    const auto incompatible = [&delta](std::string reason) {
        delta.compatible = false;
        delta.reason = std::move(reason);
        delta.stages.clear();
        delta.spawned = delta.retired = delta.rebound = 0;
        return delta;
    };
    if (before.task_count() != after.task_count())
        return incompatible("task count changed");
    if (before.stage_count() != after.stage_count())
        return incompatible("stage count changed (recut)");
    if (before.options().queue_capacity != after.options().queue_capacity)
        return incompatible("queue capacity changed");
    for (std::size_t s = 0; s < before.stage_count(); ++s) {
        const PlanStage& b = before.stage(s);
        const PlanStage& a = after.stage(s);
        if (b.first != a.first || b.last != a.last)
            return incompatible("stage " + std::to_string(s) + " interval recut");
    }
    for (std::size_t s = 0; s < before.stage_count(); ++s) {
        const PlanStage& b = before.stage(s);
        const PlanStage& a = after.stage(s);
        StageDelta sd;
        sd.stage = static_cast<int>(s);
        sd.replicas_before = b.replicas;
        sd.replicas_after = a.replicas;
        sd.type_before = b.type;
        sd.type_after = a.type;
        if (b.type != a.type) {
            sd.action = StageAction::rebound;
            ++delta.rebound;
        } else if (b.replicas != a.replicas) {
            sd.action = StageAction::resized;
        }
        if (a.replicas > b.replicas) {
            sd.spawn_count = a.replicas - b.replicas;
            delta.spawned += sd.spawn_count;
        } else if (a.replicas < b.replicas) {
            // Retire the highest slots; kept workers keep their slot order.
            const auto keep = static_cast<std::size_t>(a.replicas);
            sd.retire_worker_ids.assign(b.worker_ids.begin() + static_cast<std::ptrdiff_t>(keep),
                                        b.worker_ids.end());
            delta.retired += static_cast<int>(sd.retire_worker_ids.size());
        }
        delta.stages.push_back(std::move(sd));
    }
    return delta;
}

ExecutionPlan apply(const ExecutionPlan& base, const PlanDelta& delta)
{
    if (!delta.compatible)
        throw PlanError{"plan: cannot apply an incompatible delta (" + delta.reason + ")"};
    if (delta.stages.size() != base.stage_count())
        throw PlanError{"plan: delta does not match the base plan's stage count"};

    ExecutionPlan next = base;
    next.workers_.clear();
    std::vector<core::Stage> stages;
    stages.reserve(next.stages_.size());
    for (std::size_t s = 0; s < next.stages_.size(); ++s) {
        PlanStage& stage = next.stages_[s];
        const StageDelta& sd = delta.stages[s];
        if (stage.replicas != sd.replicas_before || stage.type != sd.type_before)
            throw PlanError{"plan: delta was computed against a different base plan"};
        stage.type = sd.type_after;
        for (const int id : sd.retire_worker_ids) {
            const auto it = std::find(stage.worker_ids.begin(), stage.worker_ids.end(), id);
            if (it == stage.worker_ids.end())
                throw PlanError{"plan: delta retires unknown worker id "
                                + std::to_string(id)};
            stage.worker_ids.erase(it);
        }
        for (int i = 0; i < sd.spawn_count; ++i)
            stage.worker_ids.push_back(next.next_worker_id_++);
        stage.replicas = static_cast<int>(stage.worker_ids.size());
        if (stage.replicas != sd.replicas_after)
            throw PlanError{"plan: delta replica arithmetic does not add up"};
        if (stage.replicas < 1)
            throw PlanError{"plan: delta leaves a stage with no workers"};
        stage.replicated = stage.replicas > 1;
        if (stage.replicated && stage.sequential)
            throw PlanError{"plan: delta replicates a sequential stage"};
        if (next.chain_.has_value())
            stage.service_us =
                next.chain_->interval_sum(stage.first, stage.last, stage.type);
        for (std::size_t slot = 0; slot < stage.worker_ids.size(); ++slot)
            next.workers_.push_back(WorkerSlot{stage.worker_ids[slot], stage.index,
                                               static_cast<int>(slot), stage.type});
        stages.push_back(core::Stage{stage.first, stage.last, stage.replicas, stage.type});
    }
    next.solution_ = core::Solution{std::move(stages)};
    return next;
}

bool same_topology(const ExecutionPlan& a, const ExecutionPlan& b)
{
    if (a.stage_count() != b.stage_count())
        return false;
    if (a.options().queue_capacity != b.options().queue_capacity)
        return false;
    for (std::size_t s = 0; s < a.stage_count(); ++s) {
        const PlanStage& x = a.stage(s);
        const PlanStage& y = b.stage(s);
        if (x.first != y.first || x.last != y.last || x.replicas != y.replicas
            || x.type != y.type)
            return false;
    }
    return true;
}

} // namespace amp::plan
