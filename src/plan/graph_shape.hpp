#pragma once
// Structural shapes the plan layer validates against.
//
// ChainShape is the paper's object: a line of tasks with per-task
// replicability. GraphShape generalizes it to a series-parallel DAG of
// *branches* -- maximal linear runs of tasks -- with explicit
// predecessor/successor edges between them. The global task order is the
// concatenation of the branches in index order, so every branch owns a
// contiguous 1-based interval [first, last] of the global chain and all the
// linear machinery (interval sums, stage tiling, solver sub-chains) applies
// per branch unchanged. A linear chain is the degenerate one-branch graph.
//
// GraphShape is deliberately solver-free: core::schedule still solves linear
// chains only. svc::schedule_graph splits a graph into branch sub-chains,
// solves each through the service, and ExecutionPlan::compile stitches the
// per-branch solutions back into one plan (see execution_plan.hpp).

#include "core/chain.hpp"

#include <stdexcept>
#include <vector>

namespace amp::plan {

/// Raised by compile()/apply()/GraphShape::validate() on a malformed
/// solution, delta or graph. Derives from std::invalid_argument so callers
/// that used to catch the executors' ad-hoc validation errors keep working.
class PlanError : public std::invalid_argument {
public:
    using std::invalid_argument::invalid_argument;
};

/// The structural facts compile() validates against: task count and per-task
/// replicability. Derivable from a core::TaskChain (the profiled path) or
/// from an rt::TaskSequence's stateful flags (the runtime-only path).
struct ChainShape {
    int tasks = 0;
    std::vector<bool> replicable; ///< replicable[i - 1] for task i (1-based)

    [[nodiscard]] static ChainShape of(const core::TaskChain& chain);
    [[nodiscard]] bool task_replicable(int i) const
    {
        return replicable.at(static_cast<std::size_t>(i - 1));
    }
};

/// One maximal linear run of tasks inside a GraphShape. Owns the contiguous
/// global task interval [first, last] (1-based, inclusive); edges reference
/// other branches by index and always point from a lower index to a higher
/// one (the branch list is topologically ordered).
struct GraphBranch {
    int index = 0;
    int first = 0;
    int last = 0;
    std::vector<int> preds; ///< branch indices, ascending; empty == source
    std::vector<int> succs; ///< branch indices, ascending; empty == sink

    [[nodiscard]] int task_count() const noexcept { return last - first + 1; }
};

/// A series-parallel DAG of branches over one global task order. Invariants
/// (validate() throws PlanError otherwise):
///   * branches tile [1, chain.tasks] contiguously in index order;
///   * every edge points forward (succ > index) and preds mirror succs;
///   * exactly one source branch (no preds) and one sink branch (no succs),
///     which with forward-only edges makes the graph weakly connected.
struct GraphShape {
    ChainShape chain;                 ///< global task order, branch-concatenated
    std::vector<GraphBranch> branches;

    /// The degenerate one-branch graph every linear chain compiles through.
    [[nodiscard]] static GraphShape linear(ChainShape shape);
    [[nodiscard]] static GraphShape of(const core::TaskChain& chain);

    [[nodiscard]] int tasks() const noexcept { return chain.tasks; }
    [[nodiscard]] int branch_count() const noexcept { return static_cast<int>(branches.size()); }
    [[nodiscard]] bool is_linear() const noexcept { return branches.size() <= 1; }

    /// Index of the unique pred-less / succ-less branch. Only meaningful on
    /// a validated shape.
    [[nodiscard]] int source_branch() const;
    [[nodiscard]] int sink_branch() const;

    void validate() const;
};

} // namespace amp::plan
