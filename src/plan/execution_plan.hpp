#pragma once
// Compiled execution-plan IR: the one place a core::Solution is turned into
// the facts every executor needs.
//
// rt::Pipeline, dsim::Simulator and the recovery path in rt::Rescheduler all
// used to re-derive the same structure from a raw Solution -- stage task
// intervals, core-type bindings, replica counts, queue topology -- each with
// its own ad-hoc audit. ExecutionPlan::compile performs that derivation and
// validation once, loudly (PlanError on anything malformed), and the
// executors consume the resulting IR:
//
//   * PlanStage   -- task interval, core type, replica count, sequential
//                    constraint, per-frame service weight, stable worker ids,
//                    and explicit predecessor/successor stage edges with the
//                    input/output queues that realize them
//   * WorkerSlot  -- one replica slot; ids are stable across deltas so a
//                    hot-swap can name exactly the workers it spawns/retires
//   * QueueSpec   -- inter-stage queue endpoints and capacities; a linear
//                    plan has exactly one queue between consecutive stages
//                    (queue i connects stage i to stage i+1), a graph plan
//                    one queue per stage edge plus one drain queue
//
// A plan is a series-parallel DAG of stages described by a plan::GraphShape
// (graph_shape.hpp); the historical linear chain is the one-branch
// degenerate case and compiles bit-identically to the pre-DAG IR. Graph
// plans are stitched from per-branch solutions: each branch is a linear
// sub-chain solved independently, and the combined period bound is the max
// over all stages -- exactly period_us().
//
// diff(before, after) compares two plans and produces a PlanDelta: per stage
// kept / resized (replica count changed) / rebound (core type changed), or a
// whole-plan incompatibility (recut stage structure, different chain, queue
// capacity or queue topology) that forces a full rebuild. apply(base, delta)
// yields the successor plan with untouched workers keeping their ids -- the
// substrate for rt::Pipeline's in-place hot-swap (docs/EXECUTION_PLAN.md).

#include "core/chain.hpp"
#include "core/solution.hpp"
#include "plan/graph_shape.hpp"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace amp::plan {

/// Executor-independent knobs baked into the plan (mirrors the shape of
/// rt::PipelineConfig without depending on rt).
struct PlanOptions {
    std::size_t queue_capacity = 8; ///< per inter-stage queue, in frames
    [[nodiscard]] constexpr bool operator==(const PlanOptions&) const noexcept = default;
};

/// One replica slot of one stage. `id` is stable: apply() never renumbers a
/// kept worker, so executors can key threads, trace tracks and heartbeats on
/// it across hot-swaps.
struct WorkerSlot {
    int id = 0;
    int stage = 0;
    int slot = 0; ///< position within the stage, 0-based
    core::CoreType type = core::CoreType::big;
};

/// One pipeline stage of the compiled plan.
struct PlanStage {
    int index = 0;
    int first = 0; ///< 1-based inclusive task interval [first, last]
    int last = 0;
    int replicas = 1;
    core::CoreType type = core::CoreType::big;
    bool replicated = false;  ///< replicas > 1
    bool sequential = false;  ///< interval contains a non-replicable task
    double service_us = 0.0;  ///< interval weight on `type`; 0 without a profile
    std::vector<int> worker_ids; ///< stable ids, slot order
    int branch = 0;              ///< GraphShape branch this stage belongs to
    std::vector<int> preds;      ///< predecessor stage indices; empty == source
    std::vector<int> succs;      ///< successor stage indices; empty == sink
    std::vector<int> in_queues;  ///< queue indices feeding this stage, pred order
    std::vector<int> out_queues; ///< queue indices this stage pushes to (incl. drain)

    [[nodiscard]] int task_count() const noexcept { return last - first + 1; }
};

/// One inter-stage queue. consumer_stage == kDrain marks the drain queue,
/// drained in stream order by the executor's output side. A fan-out stage
/// produces into several queues (one per successor); a fan-in stage consumes
/// several, merging envelopes of equal sequence number.
struct QueueSpec {
    static constexpr int kDrain = -1;

    int index = 0;
    int producer_stage = 0;
    int consumer_stage = kDrain;
    std::size_t capacity = 8;
};

/// What happened to one stage between two compatible plans.
enum class StageAction : std::uint8_t {
    kept,    ///< identical replicas and core type
    resized, ///< replica count changed (same core type)
    rebound, ///< core type changed (replica count may also have changed)
};

[[nodiscard]] constexpr const char* to_string(StageAction a) noexcept
{
    switch (a) {
    case StageAction::kept: return "kept";
    case StageAction::resized: return "resized";
    case StageAction::rebound: return "rebound";
    }
    return "?";
}

struct StageDelta {
    int stage = 0;
    StageAction action = StageAction::kept;
    int replicas_before = 0;
    int replicas_after = 0;
    core::CoreType type_before = core::CoreType::big;
    core::CoreType type_after = core::CoreType::big;
    int spawn_count = 0;                ///< workers apply() adds (fresh ids)
    std::vector<int> retire_worker_ids; ///< ids apply() removes (highest slots)
};

/// Difference between two plans. When `compatible` is false the stage cut
/// (or the chain, or the queue topology) changed and no in-place swap is
/// possible -- `reason` says why and `stages` is empty; the executor must
/// fall back to a full rebuild.
struct PlanDelta {
    bool compatible = true;
    std::string reason;             ///< set when !compatible
    std::vector<StageDelta> stages; ///< one per stage when compatible
    int spawned = 0;
    int retired = 0;
    int rebound = 0;

    [[nodiscard]] bool empty() const noexcept
    {
        return compatible && spawned == 0 && retired == 0 && rebound == 0;
    }

    /// True when every stage is kept or resized -- no rebinds (and, being
    /// compatible, no recuts). Such a delta only changes per-stage replica
    /// counts, which is what qualifies it for a frame-granular in-flight
    /// hot-swap (rt::Pipeline::try_apply_delta_in_flight): queues, stage
    /// intervals and core-type bindings all survive untouched.
    [[nodiscard]] bool resize_only() const noexcept { return compatible && rebound == 0; }
};

/// Validated, immutable execution plan. Copyable; a copy is an independent
/// plan with the same worker ids.
class ExecutionPlan {
public:
    ExecutionPlan() = default;

    /// Compiles a profiled plan: structure from `solution`, per-stage
    /// service weights from `chain`. Throws PlanError when the solution is
    /// empty, does not tile [1, n] contiguously, assigns a stage fewer than
    /// one core, or replicates an interval containing a sequential task.
    [[nodiscard]] static ExecutionPlan compile(const core::TaskChain& chain,
                                               const core::Solution& solution,
                                               PlanOptions options = {});

    /// Structure-only compile for executors that have no task-weight
    /// profile (service_us stays 0; has_profile() is false).
    [[nodiscard]] static ExecutionPlan compile(const ChainShape& shape,
                                               const core::Solution& solution,
                                               PlanOptions options = {});

    /// Compiles a graph plan from per-branch solutions. `branch_solutions`
    /// holds one solution per GraphShape branch, each in *local* task
    /// coordinates (1-based within its branch sub-chain); compile() offsets
    /// them into the global task order and stitches the stages into one
    /// plan, wiring one queue per stage edge plus a drain queue after the
    /// sink stage. A one-branch graph reproduces the linear layout exactly.
    /// Throws PlanError on an invalid graph or any malformed branch
    /// solution (same rules as the linear path, applied per branch).
    [[nodiscard]] static ExecutionPlan compile(const GraphShape& graph,
                                               const std::vector<core::Solution>& branch_solutions,
                                               PlanOptions options = {});

    /// Profiled graph compile: `chain` is the global branch-concatenated
    /// task order (graph.chain must match its shape).
    [[nodiscard]] static ExecutionPlan compile(const core::TaskChain& chain,
                                               const GraphShape& graph,
                                               const std::vector<core::Solution>& branch_solutions,
                                               PlanOptions options = {});

    [[nodiscard]] const std::vector<PlanStage>& stages() const noexcept { return stages_; }
    [[nodiscard]] const PlanStage& stage(std::size_t i) const { return stages_.at(i); }
    [[nodiscard]] std::size_t stage_count() const noexcept { return stages_.size(); }
    [[nodiscard]] const std::vector<QueueSpec>& queues() const noexcept { return queues_; }
    [[nodiscard]] const std::vector<WorkerSlot>& workers() const noexcept { return workers_; }
    [[nodiscard]] int worker_count() const noexcept { return static_cast<int>(workers_.size()); }

    [[nodiscard]] const core::Solution& solution() const noexcept { return solution_; }
    [[nodiscard]] const PlanOptions& options() const noexcept { return options_; }
    [[nodiscard]] const ChainShape& shape() const noexcept { return shape_; }
    [[nodiscard]] const GraphShape& graph() const noexcept { return graph_; }
    [[nodiscard]] int task_count() const noexcept { return shape_.tasks; }

    /// True for the degenerate one-branch (chain-shaped) plan. Recovery
    /// paths that re-solve through the linear core::schedule entry point
    /// only accept linear plans.
    [[nodiscard]] bool linear() const noexcept { return graph_.is_linear(); }

    /// The unique stage with no predecessors / no successors. For a linear
    /// plan these are 0 and stage_count() - 1.
    [[nodiscard]] int source_stage() const noexcept { return source_stage_; }
    [[nodiscard]] int sink_stage() const noexcept { return sink_stage_; }

    /// True when the plan was compiled from a TaskChain (service weights
    /// and chain() are meaningful).
    [[nodiscard]] bool has_profile() const noexcept { return chain_.has_value(); }
    [[nodiscard]] const core::TaskChain& chain() const { return chain_.value(); }

    /// First id apply() hands to a spawned worker; monotone across deltas.
    [[nodiscard]] int next_worker_id() const noexcept { return next_worker_id_; }

    /// Model period in us: max over stages of service_us / replicas for
    /// replicable intervals (0 without a profile). Matches Solution::period.
    [[nodiscard]] double period_us() const noexcept;

    /// Human-readable one-liner, e.g. "[1,1]x1B | [2,5]x3L (cap 8)".
    [[nodiscard]] std::string summary() const;

private:
    ChainShape shape_;
    GraphShape graph_;
    std::optional<core::TaskChain> chain_;
    core::Solution solution_; ///< stitched global solution, branch-major
    PlanOptions options_;
    std::vector<PlanStage> stages_;
    std::vector<QueueSpec> queues_;
    std::vector<WorkerSlot> workers_;
    int next_worker_id_ = 0;
    int source_stage_ = 0;
    int sink_stage_ = 0;

    friend ExecutionPlan apply(const ExecutionPlan& base, const PlanDelta& delta);
};

/// Structural diff. Compatible iff both plans cut the same task count into
/// the same stage intervals with the same queue capacity and the same queue
/// topology (stage edges); then each stage is kept, resized or rebound.
/// Anything else (recut, different chain length, different queue capacity,
/// rewired edges -- e.g. a DAG plan against a linear plan with the same
/// cut) is incompatible and names the reason.
[[nodiscard]] PlanDelta diff(const ExecutionPlan& before, const ExecutionPlan& after);

/// Applies a compatible delta: kept workers retain their ids, retired slots
/// are removed, spawned slots get fresh ids from base.next_worker_id().
/// Throws PlanError when the delta is incompatible or was computed against
/// a different base.
[[nodiscard]] ExecutionPlan apply(const ExecutionPlan& base, const PlanDelta& delta);

/// True when the two plans describe the same executable topology: same
/// stage intervals, replica counts, core types and queue capacities (worker
/// id labels are ignored -- they are identity, not structure).
[[nodiscard]] bool same_topology(const ExecutionPlan& a, const ExecutionPlan& b);

} // namespace amp::plan
