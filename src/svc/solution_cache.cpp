#include "svc/solution_cache.hpp"

#include <algorithm>

namespace amp::svc {

namespace {

// At least one shard, and never more shards than total entries: with
// 0 < capacity < shards, one-entry shards would otherwise admit up to
// `shards` entries, exceeding the configured budget.
[[nodiscard]] std::size_t shard_count(std::size_t capacity, std::size_t shards) noexcept
{
    const std::size_t requested = std::max<std::size_t>(1, shards);
    return capacity > 0 ? std::min(requested, capacity) : requested;
}

} // namespace

SolutionCache::SolutionCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity)
    , per_shard_(capacity / shard_count(capacity, shards))
    , shards_(shard_count(capacity, shards))
{
}

std::optional<core::ScheduleResult> SolutionCache::get(const CacheKey& key)
{
    if (!enabled())
        return std::nullopt;
    Shard& shard = shard_for(hash_key(key));
    std::lock_guard lock{shard.mutex};
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        ++shard.misses;
        return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    core::ScheduleResult result = it->second->result;
    result.cache_hit = true;
    return result;
}

std::optional<SolutionCache::PlannedHit> SolutionCache::get_planned(const CacheKey& key)
{
    if (!enabled())
        return std::nullopt;
    Shard& shard = shard_for(hash_key(key));
    std::lock_guard lock{shard.mutex};
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        ++shard.misses;
        return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    PlannedHit hit{it->second->result, it->second->plan};
    hit.result.cache_hit = true;
    return hit;
}

std::optional<SolutionCache::PlannedHit> SolutionCache::find_stale(const CacheKey& want)
{
    if (!enabled())
        return std::nullopt;
    // Entries live behind per-shard locks, so candidates are copied out and
    // ranked by their (copied) key: same strategy beats other strategies,
    // then the largest fitting resource vector, then the lowest strategy id.
    const auto better = [&](const CacheKey& a, const CacheKey& b) {
        const bool a_strategy = a.strategy == want.strategy;
        const bool b_strategy = b.strategy == want.strategy;
        if (a_strategy != b_strategy)
            return a_strategy;
        const auto a_cores = a.big + a.little;
        const auto b_cores = b.big + b.little;
        if (a_cores != b_cores)
            return a_cores > b_cores;
        return a.strategy < b.strategy;
    };
    std::optional<CacheKey> best_key;
    std::optional<PlannedHit> hit;
    for (Shard& shard : shards_) {
        std::lock_guard lock{shard.mutex};
        for (const Entry& entry : shard.lru) {
            if (entry.key.chain_fingerprint != want.chain_fingerprint
                || entry.key.chain_fingerprint2 != want.chain_fingerprint2
                || entry.key.chain_tasks != want.chain_tasks
                || entry.key.domain != want.domain)
                continue;
            if (!entry.result.ok())
                continue;
            if (entry.key.big > want.big || entry.key.little > want.little)
                continue; // would overcommit the requested budget
            if (!best_key || better(entry.key, *best_key)) {
                best_key = entry.key;
                hit = PlannedHit{entry.result, entry.plan};
            }
        }
    }
    if (hit)
        hit->result.cache_hit = true;
    return hit;
}

void SolutionCache::put(const CacheKey& key, const core::ScheduleResult& result)
{
    put_planned(key, result, nullptr);
}

void SolutionCache::put_planned(const CacheKey& key, const core::ScheduleResult& result,
                                std::shared_ptr<const plan::ExecutionPlan> plan)
{
    if (!enabled())
        return;
    Shard& shard = shard_for(hash_key(key));
    std::lock_guard lock{shard.mutex};
    if (const auto it = shard.index.find(key); it != shard.index.end()) {
        it->second->result = result;
        it->second->result.cache_hit = false;
        if (plan != nullptr) // refresh keeps an already-attached plan
            it->second->plan = std::move(plan);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.push_front(Entry{key, result, std::move(plan)});
    shard.lru.front().result.cache_hit = false;
    shard.index.emplace(key, shard.lru.begin());
    if (shard.lru.size() > per_shard_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++shard.evictions;
    }
}

void SolutionCache::attach_plan(const CacheKey& key,
                                std::shared_ptr<const plan::ExecutionPlan> plan)
{
    if (!enabled())
        return;
    Shard& shard = shard_for(hash_key(key));
    std::lock_guard lock{shard.mutex};
    if (const auto it = shard.index.find(key); it != shard.index.end())
        it->second->plan = std::move(plan);
}

CacheStats SolutionCache::stats() const
{
    CacheStats stats;
    for (const Shard& shard : shards_) {
        std::lock_guard lock{shard.mutex};
        stats.hits += shard.hits;
        stats.misses += shard.misses;
        stats.evictions += shard.evictions;
        stats.entries += shard.lru.size();
    }
    return stats;
}

void SolutionCache::clear()
{
    for (Shard& shard : shards_) {
        std::lock_guard lock{shard.mutex};
        shard.lru.clear();
        shard.index.clear();
    }
}

} // namespace amp::svc
