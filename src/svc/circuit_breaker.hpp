#pragma once
// Circuit breaker for the solver service (docs/FAULT_MODEL.md, "Overload
// model").
//
// State machine: closed -> open after `failure_threshold` consecutive
// solver failures (exceptions or solves slower than the service's
// slow-solve budget); open -> half_open after `open_ns` of cooldown, at
// which point up to `half_open_probes` requests are let through as probes;
// `close_threshold` consecutive probe successes close the breaker, any
// probe failure re-opens it (restarting the cooldown). While open, requests
// fail fast with core::ScheduleError::rejected -- or are served a stale
// cached plan when brownout serving is enabled.
//
// Time is injected: every call takes an explicit steady-clock-style
// nanosecond timestamp, so the exact same breaker runs against virtual
// time inside dsim::simulate_admission -- the runtime and the simulator
// cannot drift apart in semantics.

#include <cstdint>
#include <mutex>
#include <vector>

namespace amp::svc {

enum class BreakerState : std::uint8_t { closed = 0, open = 1, half_open = 2 };

[[nodiscard]] constexpr const char* to_string(BreakerState state) noexcept
{
    switch (state) {
    case BreakerState::closed: return "closed";
    case BreakerState::open: return "open";
    case BreakerState::half_open: return "half_open";
    }
    return "?";
}

struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker; <= 0
    /// disables the breaker entirely (allow() is always true).
    int failure_threshold = 5;
    /// Cooldown after tripping before half-open probes are admitted.
    std::int64_t open_ns = 100'000'000; // 100 ms
    /// Concurrent probe requests admitted while half-open.
    int half_open_probes = 1;
    /// Consecutive probe successes that close the breaker again.
    int close_threshold = 1;

    [[nodiscard]] constexpr bool enabled() const noexcept { return failure_threshold > 0; }
};

/// One recorded state change (for tests, the soak bench and dsim's
/// trace-equality pin).
struct BreakerTransition {
    BreakerState from = BreakerState::closed;
    BreakerState to = BreakerState::closed;
    std::int64_t at_ns = 0;

    [[nodiscard]] constexpr bool operator==(const BreakerTransition&) const noexcept = default;
};

/// Thread-safe; deterministic given a serial sequence of calls with their
/// timestamps (no internal clock).
class CircuitBreaker {
public:
    explicit CircuitBreaker(BreakerConfig config = {});

    /// May this request proceed at `now_ns`? Transitions open -> half_open
    /// once the cooldown has elapsed (the caller becomes the first probe).
    [[nodiscard]] bool allow(std::int64_t now_ns);

    /// Reports the outcome of a previously-allowed request.
    void on_success(std::int64_t now_ns);
    void on_failure(std::int64_t now_ns);

    [[nodiscard]] BreakerState state() const;
    /// Times the breaker transitioned closed/half_open -> open.
    [[nodiscard]] std::uint64_t trips() const;
    /// Recorded transitions, oldest first (capped at kMaxTransitions;
    /// `trips()` keeps counting past the cap).
    [[nodiscard]] std::vector<BreakerTransition> transitions() const;

    [[nodiscard]] const BreakerConfig& config() const noexcept { return config_; }

    static constexpr std::size_t kMaxTransitions = 4096;

private:
    void transition_locked(BreakerState to, std::int64_t now_ns);

    BreakerConfig config_;
    mutable std::mutex mutex_;
    BreakerState state_ = BreakerState::closed;
    int consecutive_failures_ = 0;
    int probes_in_flight_ = 0;
    int probe_successes_ = 0;
    std::int64_t opened_at_ns_ = 0;
    std::uint64_t trips_ = 0;
    std::vector<BreakerTransition> transitions_;
};

} // namespace amp::svc
