#include "svc/pareto.hpp"

#include "svc/solver_service.hpp"

namespace amp::svc {

std::vector<ParetoPoint> energy_pareto_sweep(SolverService& service,
                                             const core::TaskChain& chain,
                                             core::Resources resources,
                                             const core::PowerModel& power,
                                             const std::vector<double>& target_periods,
                                             core::Strategy strategy,
                                             core::ScheduleOptions base)
{
    base.objective = core::Objective::min_energy_under_period;
    base.power = power;

    std::vector<core::ScheduleRequest> requests;
    requests.reserve(target_periods.size());
    for (const double target : target_periods) {
        core::ScheduleRequest request{chain, resources, strategy};
        request.options = base;
        request.options.target_period = target;
        requests.push_back(std::move(request));
    }
    const std::vector<core::ScheduleResult> results = service.solve_batch(requests);

    std::vector<ParetoPoint> points;
    points.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ParetoPoint point;
        point.target_period = target_periods[i];
        point.ok = results[i].ok();
        point.cache_hit = results[i].cache_hit;
        if (point.ok) {
            point.period = results[i].solution.period(chain);
            point.energy_per_item = core::energy_per_item(chain, results[i].solution, power);
            point.power_watts = core::solution_power(results[i].solution, power);
            point.solution = results[i].solution;
        }
        points.push_back(std::move(point));
    }
    return points;
}

} // namespace amp::svc
