#pragma once
// Batched, multi-threaded, memoizing solver service.
//
// SolverService turns the synchronous core::schedule(ScheduleRequest) API
// into a serving layer: batches of independent requests are solved in
// parallel by a pool of workers (work-stealing over bounded per-worker
// deques), and every result is memoized in a sharded LRU cache keyed by
// (chain fingerprint, strategy, resources, options) -- see
// svc/solution_cache.hpp. Sweep-style callers (benchmark grids, the
// energy-aware MODCOD sweeps, online rescheduling) that re-solve the same
// (chain, resources) pairs get cached, bit-identical solutions in
// microseconds instead of re-running the solver.
//
// Concurrency model: submit_batch distributes jobs round-robin across the
// worker deques; workers pop their own deque from the front and steal from
// the back of a victim's when empty; the submitting thread participates in
// draining its own batch instead of blocking, so a single-threaded service
// (workers = 1 on a small machine) is never slower than a sequential loop.
// When every deque is full the submitter solves the job inline
// (backpressure instead of unbounded queue growth).
//
// Telemetry: per-strategy cache hit/miss counters and solve-latency
// histograms are recorded into an obs::MetricsRegistry (an injected one or
// the service's own); names are listed in docs/SOLVER_SERVICE.md.

#include "core/scheduler.hpp"
#include "obs/metrics.hpp"
#include "plan/execution_plan.hpp"
#include "svc/solution_cache.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace amp::svc {

/// A schedule plus its compiled execution plan: what an executor needs to
/// run the solution without re-deriving (and re-validating) its structure.
/// `plan` is non-null iff the solve succeeded. The plan is shared with the
/// solution cache: repeated solve_planned calls for an equal request return
/// the *same* immutable plan object with zero compile work (executors copy
/// it when they need a mutable instance, e.g. rt::Pipeline).
struct PlannedSchedule {
    core::ScheduleResult result;
    std::shared_ptr<const plan::ExecutionPlan> plan;

    [[nodiscard]] bool ok() const noexcept { return result.ok() && plan != nullptr; }
};

struct ServiceConfig {
    /// Worker threads; 0 means hardware_concurrency (at least 1).
    int workers = 0;
    /// Total cached entries across all shards; 0 disables caching.
    std::size_t cache_capacity = 8192;
    std::size_t cache_shards = 16;
    /// Bounded per-worker deque capacity; submitters solve inline when the
    /// queues are full.
    std::size_t queue_capacity = 256;
    /// Metrics sink; the service owns a private registry when null.
    obs::MetricsRegistry* metrics = nullptr;
};

class SolverService {
public:
    explicit SolverService(ServiceConfig config = {});
    ~SolverService();

    SolverService(const SolverService&) = delete;
    SolverService& operator=(const SolverService&) = delete;

    /// Solves one request through the cache, on the calling thread.
    [[nodiscard]] core::ScheduleResult solve(const core::ScheduleRequest& request);

    /// Like solve(), but also compiles the winning solution into a
    /// plan::ExecutionPlan (profiled against the request's chain) that
    /// rt::Pipeline or dsim::simulate can execute directly. The compiled
    /// plan is stored in the solution cache alongside the result, so a
    /// cache hit whose stored plan was compiled with the same PlanOptions
    /// returns that exact plan object -- zero compile work, pointer-equal
    /// across hits. The plan is only compiled on success; compilation
    /// failures (a solver bug -- schedulers never emit malformed solutions)
    /// propagate as plan::PlanError rather than being swallowed.
    [[nodiscard]] PlannedSchedule solve_planned(const core::ScheduleRequest& request,
                                                plan::PlanOptions options = {});

    /// Solves a batch of independent requests, in parallel across the
    /// worker pool; the calling thread helps drain the batch. Results are
    /// aligned with `requests`. Thread-safe: concurrent batches interleave.
    [[nodiscard]] std::vector<core::ScheduleResult>
    solve_batch(const std::vector<core::ScheduleRequest>& requests);

    [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
    [[nodiscard]] int workers() const noexcept { return static_cast<int>(threads_.size()); }
    [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

    /// The metrics registry results are recorded into (injected or owned).
    [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return *metrics_; }

    void clear_cache() { cache_.clear(); }

private:
    /// Completion state of one solve_batch call, stack-allocated by the
    /// submitter. Lifetime protocol: workers decrement `remaining` and
    /// notify `done` while holding `mutex`, and the submitter only treats
    /// the batch as complete after observing remaining == 0 under the same
    /// mutex — so the last worker is guaranteed to have released the Batch
    /// before the submitter can return and destroy it.
    struct Batch {
        std::mutex mutex;
        std::condition_variable done;
        std::atomic<std::size_t> remaining{0};
    };

    struct Job {
        const core::ScheduleRequest* request = nullptr;
        core::ScheduleResult* result = nullptr;
        Batch* batch = nullptr;
    };

    /// Bounded mutex-guarded deque: owner pops the front, thieves steal the
    /// back. Small and simple; the solver calls it guards cost orders of
    /// magnitude more than the lock.
    struct WorkDeque {
        std::mutex mutex;
        std::vector<Job> jobs; ///< ring buffer of `capacity` slots
        std::size_t head = 0;  ///< next pop position
        std::size_t count = 0;
    };

    void worker_loop(std::size_t worker_index);
    [[nodiscard]] bool try_pop(std::size_t worker_index, Job& out);
    [[nodiscard]] bool try_steal(std::size_t thief_index, Job& out);
    [[nodiscard]] bool try_push(std::size_t worker_index, const Job& job);
    void run_job(const Job& job, std::size_t worker_index);
    [[nodiscard]] core::ScheduleResult solve_on(const core::ScheduleRequest& request,
                                                std::size_t worker_index);

    ServiceConfig config_;
    SolutionCache cache_;
    std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
    obs::MetricsRegistry* metrics_ = nullptr;

    // Pre-resolved per-strategy instruments (registration is mutex-guarded;
    // the hot path only touches lock-free handles).
    struct StrategyInstruments {
        obs::Counter* hits = nullptr;
        obs::Counter* misses = nullptr;
        obs::Counter* errors = nullptr;
        obs::Histogram* solve_latency = nullptr;
    };
    std::vector<StrategyInstruments> instruments_; ///< indexed by Strategy

    std::vector<std::unique_ptr<WorkDeque>> deques_;
    std::vector<std::thread> threads_;
    std::mutex sleep_mutex_;
    std::condition_variable work_ready_;
    std::atomic<bool> stop_{false};
    std::atomic<std::size_t> next_deque_{0};
};

/// Process-wide service with the default configuration, constructed on
/// first use. rt::Rescheduler (and through it the failure simulator) solve
/// through this instance unless a ReschedulePolicy injects its own.
[[nodiscard]] SolverService& shared_service();

} // namespace amp::svc
