#pragma once
// Batched, multi-threaded, memoizing solver service.
//
// SolverService turns the synchronous core::schedule(ScheduleRequest) API
// into a serving layer: batches of independent requests are solved in
// parallel by a pool of workers (work-stealing over bounded per-worker
// deques), and every result is memoized in a sharded LRU cache keyed by
// (chain fingerprint, strategy, resources, options) -- see
// svc/solution_cache.hpp. Sweep-style callers (benchmark grids, the
// energy-aware MODCOD sweeps, online rescheduling) that re-solve the same
// (chain, resources) pairs get cached, bit-identical solutions in
// microseconds instead of re-running the solver.
//
// Concurrency model: submit_batch distributes jobs round-robin across the
// worker deques; workers pop their own deque from the front and steal from
// the back of a victim's when empty; the submitting thread participates in
// draining its own batch instead of blocking, so a single-threaded service
// (workers = 1 on a small machine) is never slower than a sequential loop.
// When every deque is full the submitter solves the job inline
// (backpressure instead of unbounded queue growth).
//
// Overload protection (docs/FAULT_MODEL.md, "Overload model"): batch jobs
// pass through a bounded admission queue with configurable shedding
// (reject-newest / drop-oldest / priority-aware); shed requests answer
// ScheduleError::rejected, never hang. A circuit breaker trips after
// consecutive slow solves and fails fast while open, half-opening with
// probes after a cooldown. With brownout serving enabled, a request that
// would be rejected (or arrives under queue pressure) is answered with a
// *stale* compatible cached plan -- flagged ScheduleResult::degraded --
// while a background refinement re-solves and reports a plan::diff delta
// through ServiceConfig::on_refined for in-flight hot-swapping.
//
// Telemetry: per-strategy cache hit/miss counters and solve-latency
// histograms, plus overload counters (admission sheds, breaker trips,
// degraded serves), are recorded into an obs::MetricsRegistry (an injected
// one or the service's own); names are listed in docs/SOLVER_SERVICE.md
// and src/obs/schema.hpp.

#include "core/scheduler.hpp"
#include "obs/metrics.hpp"
#include "plan/execution_plan.hpp"
#include "svc/admission.hpp"
#include "svc/circuit_breaker.hpp"
#include "svc/solution_cache.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

namespace amp::svc {

/// A schedule plus its compiled execution plan: what an executor needs to
/// run the solution without re-deriving (and re-validating) its structure.
/// `plan` is non-null iff the solve succeeded. The plan is shared with the
/// solution cache: repeated solve_planned calls for an equal request return
/// the *same* immutable plan object with zero compile work (executors copy
/// it when they need a mutable instance, e.g. rt::Pipeline).
struct PlannedSchedule {
    core::ScheduleResult result;
    std::shared_ptr<const plan::ExecutionPlan> plan;

    [[nodiscard]] bool ok() const noexcept { return result.ok() && plan != nullptr; }
};

/// Outcome of one background brownout refinement (stale-while-revalidate):
/// the fresh solve that replaces a degraded stale serve, plus the delta
/// against the plan that was served so callers can hot-swap in flight via
/// rt::Pipeline::try_apply_delta_in_flight / apply_hot_swap.
struct RefineOutcome {
    core::ScheduleRequest request; ///< the request that was served stale
    std::shared_ptr<const plan::ExecutionPlan> stale; ///< plan served (may be null)
    PlannedSchedule fresh;                            ///< the re-solve
    /// plan::diff(*stale, *fresh.plan); default-constructed (compatible,
    /// empty) when either plan is missing.
    plan::PlanDelta delta;
};

struct ServiceConfig {
    /// Worker threads; 0 means hardware_concurrency (at least 1).
    int workers = 0;
    /// Total cached entries across all shards; 0 disables caching.
    std::size_t cache_capacity = 8192;
    std::size_t cache_shards = 16;
    /// Bounded per-worker deque capacity; submitters solve inline when the
    /// queues are full.
    std::size_t queue_capacity = 256;
    /// Metrics sink; the service owns a private registry when null.
    obs::MetricsRegistry* metrics = nullptr;

    // -- overload protection (docs/FAULT_MODEL.md, "Overload model") ------

    /// Bounded admission queue for batch jobs; max_pending == 0 (default)
    /// admits everything.
    AdmissionConfig admission;
    /// Circuit breaker over solver invocations (cache hits bypass it);
    /// disabled by default.
    BreakerConfig breaker{.failure_threshold = 0};
    /// Solves slower than this count as breaker failures; 0 means no solve
    /// is ever slow (the breaker then never trips, since core::schedule
    /// maps solver exceptions to error results).
    std::uint64_t slow_solve_ns = 0;
    /// Stale-while-revalidate serving: under pressure (admission queue at
    /// or past `brownout_watermark`, or breaker open) a request whose chain
    /// has *any* compatible successful cached entry is answered with that
    /// stale result immediately, flagged ScheduleResult::degraded, while a
    /// background refinement re-solves at the lowest priority.
    bool brownout = false;
    double brownout_watermark = 0.75;
    /// Invoked on a worker thread after each background refinement. Must be
    /// cheap and thread-safe; the delta enables in-flight hot-swaps.
    std::function<void(const RefineOutcome&)> on_refined;
};

class SolverService {
public:
    explicit SolverService(ServiceConfig config = {});
    ~SolverService();

    SolverService(const SolverService&) = delete;
    SolverService& operator=(const SolverService&) = delete;

    /// Solves one request through the cache, on the calling thread.
    [[nodiscard]] core::ScheduleResult solve(const core::ScheduleRequest& request);

    /// Like solve(), but also compiles the winning solution into a
    /// plan::ExecutionPlan (profiled against the request's chain) that
    /// rt::Pipeline or dsim::simulate can execute directly. The compiled
    /// plan is stored in the solution cache alongside the result, so a
    /// cache hit whose stored plan was compiled with the same PlanOptions
    /// returns that exact plan object -- zero compile work, pointer-equal
    /// across hits. The plan is only compiled on success; compilation
    /// failures (a solver bug -- schedulers never emit malformed solutions)
    /// propagate as plan::PlanError rather than being swallowed.
    [[nodiscard]] PlannedSchedule solve_planned(const core::ScheduleRequest& request,
                                                plan::PlanOptions options = {});

    /// Solves a batch of independent requests, in parallel across the
    /// worker pool; the calling thread helps drain the batch. Results are
    /// aligned with `requests`. Thread-safe: concurrent batches interleave.
    /// With admission control enabled, jobs the shedding policy refuses
    /// (and queued jobs displaced by later arrivals) complete with
    /// ScheduleError::rejected -- or a degraded stale result under
    /// brownout -- instead of queueing unboundedly.
    [[nodiscard]] std::vector<core::ScheduleResult>
    solve_batch(const std::vector<core::ScheduleRequest>& requests);

    /// Cooperative shutdown: stops the workers, then completes every job
    /// still queued with ScheduleError::rejected, so no solve_batch caller
    /// is ever left waiting on its batch condvar. Submissions racing (or
    /// following) stop() resolve the same way. Idempotent and thread-safe;
    /// concurrent callers block until the first finishes. The destructor
    /// calls it.
    void stop();
    [[nodiscard]] bool stopped() const noexcept
    {
        return stop_.load(std::memory_order_acquire);
    }

    [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
    [[nodiscard]] AdmissionStats admission_stats() const { return admission_.stats(); }
    [[nodiscard]] std::size_t admission_depth() const { return admission_.depth(); }
    /// Read-only breaker view (state / trips / transition log).
    [[nodiscard]] const CircuitBreaker& breaker() const noexcept { return breaker_; }
    /// True while the brownout trigger condition holds: admission pressure
    /// at or past the watermark, or the breaker open.
    [[nodiscard]] bool under_pressure() const;

    [[nodiscard]] int workers() const noexcept { return static_cast<int>(threads_.size()); }
    [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

    /// The metrics registry results are recorded into (injected or owned).
    [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return *metrics_; }

    void clear_cache() { cache_.clear(); }

private:
    /// Completion state of one solve_batch call, stack-allocated by the
    /// submitter. Lifetime protocol: workers decrement `remaining` and
    /// notify `done` while holding `mutex`, and the submitter only treats
    /// the batch as complete after observing remaining == 0 under the same
    /// mutex — so the last worker is guaranteed to have released the Batch
    /// before the submitter can return and destroy it.
    struct Batch {
        std::mutex mutex;
        std::condition_variable done;
        std::atomic<std::size_t> remaining{0};
    };

    /// A queued brownout refinement (owns its request; no Batch to notify).
    struct RefineJob {
        core::ScheduleRequest request;
        plan::PlanOptions options;
        std::shared_ptr<const plan::ExecutionPlan> stale;
    };

    struct Job {
        const core::ScheduleRequest* request = nullptr;
        core::ScheduleResult* result = nullptr;
        Batch* batch = nullptr;
        /// Admission state shared with the queue; null when admission is
        /// disabled. A worker must win ticket->claim() to run the job --
        /// losing means the shedding policy already answered it.
        std::shared_ptr<AdmissionTicket> ticket;
        /// When set, this is a background refinement, not a batch job.
        std::shared_ptr<RefineJob> refine;
    };

    /// Bounded mutex-guarded deque: owner pops the front, thieves steal the
    /// back. Small and simple; the solver calls it guards cost orders of
    /// magnitude more than the lock.
    struct WorkDeque {
        std::mutex mutex;
        std::vector<Job> jobs; ///< ring buffer of `capacity` slots
        std::size_t head = 0;  ///< next pop position
        std::size_t count = 0;
    };

    [[nodiscard]] static std::int64_t now_ns() noexcept;

    void worker_loop(std::size_t worker_index);
    [[nodiscard]] bool try_pop(std::size_t worker_index, Job& out);
    [[nodiscard]] bool try_steal(std::size_t thief_index, Job& out);
    [[nodiscard]] bool try_push(std::size_t worker_index, const Job& job);
    void run_job(const Job& job, std::size_t worker_index);
    void finish_batch_job(const Job& job);
    [[nodiscard]] core::ScheduleResult solve_on(const core::ScheduleRequest& request,
                                                std::size_t worker_index,
                                                bool allow_brownout = true);

    // -- overload protection internals --------------------------------------
    [[nodiscard]] AdmissionQueue::Offer admit(const std::shared_ptr<AdmissionTicket>& ticket);
    void publish_admission_depth();
    void publish_breaker();
    void record_breaker_outcome(const core::ScheduleResult& result);
    /// Stale compatible entry for brownout serving, or nullopt.
    [[nodiscard]] std::optional<SolutionCache::PlannedHit>
    stale_for(const CacheKey& key, std::size_t worker_index);
    /// Answer for a request shed at the admission door: degraded stale
    /// result under brownout, ScheduleError::rejected otherwise.
    [[nodiscard]] core::ScheduleResult shed_result(const core::ScheduleRequest& request,
                                                   std::size_t worker_index);
    void enqueue_refinement(const core::ScheduleRequest& request, plan::PlanOptions options,
                            std::shared_ptr<const plan::ExecutionPlan> stale);
    void run_refine(const Job& job, std::size_t worker_index);
    /// The solve+compile+memoize tail of solve_planned: no brownout checks
    /// and no breaker gate. solve_planned gates before calling (gating
    /// again would consume a second half-open probe slot and self-reject
    /// the probe); run_refine deliberately bypasses the breaker -- a
    /// refinement replaces an already-served degraded answer, is deduped to
    /// one in flight per fingerprint, and is exactly the probe traffic an
    /// open breaker wants, so rejecting it would leave the cache stale
    /// forever. Solve outcomes still feed the breaker state.
    [[nodiscard]] PlannedSchedule solve_fresh_planned(const core::ScheduleRequest& request,
                                                      plan::PlanOptions options,
                                                      std::size_t worker_index);
    /// Completes every job still queued with ScheduleError::rejected.
    void drain_rejected();

    ServiceConfig config_;
    SolutionCache cache_;
    AdmissionQueue admission_;
    CircuitBreaker breaker_;
    std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
    obs::MetricsRegistry* metrics_ = nullptr;

    // Pre-resolved per-strategy instruments (registration is mutex-guarded;
    // the hot path only touches lock-free handles).
    struct StrategyInstruments {
        obs::Counter* hits = nullptr;
        obs::Counter* misses = nullptr;
        obs::Counter* errors = nullptr;
        obs::Histogram* solve_latency = nullptr;
    };
    std::vector<StrategyInstruments> instruments_; ///< indexed by Strategy

    /// Overload instruments (names in obs::schema), resolved once.
    struct OverloadInstruments {
        obs::Counter* admission_rejected = nullptr;
        obs::Counter* admission_displaced = nullptr;
        obs::Counter* deadline_exceeded = nullptr;
        obs::Counter* degraded_serves = nullptr;
        obs::Counter* refinements = nullptr;
        obs::Counter* breaker_rejected = nullptr;
        obs::Counter* breaker_trips = nullptr;
        obs::Gauge* admission_depth = nullptr;
        obs::Gauge* breaker_state = nullptr;
    };
    OverloadInstruments overload_;

    std::vector<std::unique_ptr<WorkDeque>> deques_;
    std::vector<std::thread> threads_;
    std::mutex sleep_mutex_;
    std::condition_variable work_ready_;
    std::atomic<bool> stop_{false};
    std::once_flag stop_once_;
    std::atomic<std::size_t> next_deque_{0};
    std::atomic<std::uint64_t> next_ticket_id_{1};

    std::mutex breaker_obs_mutex_;
    std::uint64_t published_trips_ = 0; ///< guarded by breaker_obs_mutex_

    std::mutex refine_mutex_;
    /// hash_key()s of requests with a refinement in flight (dedup); a 64-bit
    /// collision merely skips one refinement, which is harmless.
    std::unordered_set<std::uint64_t> refining_;
};

/// Process-wide service with the default configuration, constructed on
/// first use. rt::Rescheduler (and through it the failure simulator) solve
/// through this instance unless a ReschedulePolicy injects its own.
[[nodiscard]] SolverService& shared_service();

/// Redirects shared_service() to `service` (tests only: lets a fixture
/// substitute an instrumented instance and count the solves reaching it
/// from components that default to the shared service, e.g. arb::Arbiter
/// or rt::Rescheduler). Pass nullptr to restore the real shared instance.
/// Returns the previous override. Not thread-safe against concurrent
/// shared_service() callers; swap only while quiescent.
SolverService* set_shared_service_for_test(SolverService* service) noexcept;

} // namespace amp::svc
