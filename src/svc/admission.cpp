#include "svc/admission.hpp"

#include <algorithm>

namespace amp::svc {

AdmissionQueue::AdmissionQueue(AdmissionConfig config)
    : config_(config)
{
}

void AdmissionQueue::compact_locked()
{
    std::erase_if(pending_, [](const std::shared_ptr<AdmissionTicket>& ticket) {
        return ticket->state.load(std::memory_order_acquire)
            != AdmissionTicket::State::queued;
    });
}

AdmissionQueue::Offer AdmissionQueue::offer(const std::shared_ptr<AdmissionTicket>& ticket)
{
    if (!enabled())
        return Offer{Verdict::admitted, nullptr};

    std::lock_guard lock{mutex_};
    compact_locked();
    if (pending_.size() < config_.max_pending) {
        pending_.push_back(ticket);
        ++stats_.admitted;
        return Offer{Verdict::admitted, nullptr};
    }

    switch (config_.policy) {
    case ShedPolicy::reject_newest:
        break; // fall through to rejecting the newcomer

    case ShedPolicy::drop_oldest:
        // The front may lose its CAS to a worker claiming it concurrently;
        // in that case the slot is free anyway and the loop retries.
        while (!pending_.empty()) {
            std::shared_ptr<AdmissionTicket> victim = pending_.front();
            pending_.pop_front();
            if (victim->shed()) {
                pending_.push_back(ticket);
                ++stats_.admitted;
                ++stats_.displaced;
                return Offer{Verdict::displaced, std::move(victim)};
            }
        }
        pending_.push_back(ticket);
        ++stats_.admitted;
        return Offer{Verdict::admitted, nullptr};

    case ShedPolicy::priority_aware:
        for (;;) {
            // Lowest priority loses; among equals the oldest is kept (so
            // the victim is the *last* minimum). The newcomer must be
            // strictly higher than the victim to displace it -- equal
            // priorities shed the newcomer, keeping admission stable under
            // a flood of same-priority traffic.
            auto victim_it = pending_.end();
            for (auto it = pending_.begin(); it != pending_.end(); ++it)
                if (victim_it == pending_.end()
                    || (*it)->priority <= (*victim_it)->priority)
                    victim_it = it;
            if (victim_it == pending_.end()) { // queue drained concurrently
                pending_.push_back(ticket);
                ++stats_.admitted;
                return Offer{Verdict::admitted, nullptr};
            }
            if ((*victim_it)->priority >= ticket->priority)
                break; // newcomer not strictly higher: reject it
            std::shared_ptr<AdmissionTicket> victim = *victim_it;
            pending_.erase(victim_it);
            if (!victim->shed())
                continue; // claimed under us: its slot is free, rescan
            pending_.push_back(ticket);
            ++stats_.admitted;
            ++stats_.displaced;
            return Offer{Verdict::displaced, std::move(victim)};
        }
        break;
    }

    // Reject the newcomer. If a worker somehow claimed it already the
    // caller's claim/shed race resolves it; report rejected only when the
    // shed actually landed.
    if (ticket->shed()) {
        ++stats_.rejected;
        return Offer{Verdict::rejected, ticket};
    }
    return Offer{Verdict::admitted, nullptr};
}

void AdmissionQueue::release(const AdmissionTicket& ticket)
{
    if (!enabled())
        return;
    std::lock_guard lock{mutex_};
    std::erase_if(pending_, [&](const std::shared_ptr<AdmissionTicket>& pending) {
        return pending.get() == &ticket;
    });
}

std::size_t AdmissionQueue::depth() const
{
    std::lock_guard lock{mutex_};
    std::size_t queued = 0;
    for (const auto& ticket : pending_)
        if (ticket->state.load(std::memory_order_acquire)
            == AdmissionTicket::State::queued)
            ++queued;
    return queued;
}

double AdmissionQueue::pressure() const
{
    if (!enabled())
        return 0.0;
    return std::min(1.0,
                    static_cast<double>(depth()) / static_cast<double>(config_.max_pending));
}

AdmissionStats AdmissionQueue::stats() const
{
    std::lock_guard lock{mutex_};
    return stats_;
}

} // namespace amp::svc
