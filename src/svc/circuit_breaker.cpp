#include "svc/circuit_breaker.hpp"

namespace amp::svc {

CircuitBreaker::CircuitBreaker(BreakerConfig config)
    : config_(config)
{
}

void CircuitBreaker::transition_locked(BreakerState to, std::int64_t now_ns)
{
    if (state_ == to)
        return;
    if (transitions_.size() < kMaxTransitions)
        transitions_.push_back(BreakerTransition{state_, to, now_ns});
    if (to == BreakerState::open)
        ++trips_;
    state_ = to;
}

bool CircuitBreaker::allow(std::int64_t now_ns)
{
    if (!config_.enabled())
        return true;
    std::lock_guard lock{mutex_};
    switch (state_) {
    case BreakerState::closed: return true;
    case BreakerState::open:
        if (now_ns - opened_at_ns_ < config_.open_ns)
            return false;
        transition_locked(BreakerState::half_open, now_ns);
        probes_in_flight_ = 1; // this caller is the first probe
        probe_successes_ = 0;
        return true;
    case BreakerState::half_open:
        if (probes_in_flight_ >= config_.half_open_probes)
            return false;
        ++probes_in_flight_;
        return true;
    }
    return true;
}

void CircuitBreaker::on_success(std::int64_t now_ns)
{
    if (!config_.enabled())
        return;
    std::lock_guard lock{mutex_};
    switch (state_) {
    case BreakerState::closed: consecutive_failures_ = 0; return;
    case BreakerState::open:
        // A straggler from before the trip; says nothing about recovery.
        return;
    case BreakerState::half_open:
        if (probes_in_flight_ > 0)
            --probes_in_flight_;
        if (++probe_successes_ >= config_.close_threshold) {
            transition_locked(BreakerState::closed, now_ns);
            consecutive_failures_ = 0;
            probes_in_flight_ = 0;
            probe_successes_ = 0;
        }
        return;
    }
}

void CircuitBreaker::on_failure(std::int64_t now_ns)
{
    if (!config_.enabled())
        return;
    std::lock_guard lock{mutex_};
    switch (state_) {
    case BreakerState::closed:
        if (++consecutive_failures_ >= config_.failure_threshold) {
            transition_locked(BreakerState::open, now_ns);
            opened_at_ns_ = now_ns;
            consecutive_failures_ = 0;
        }
        return;
    case BreakerState::open:
        // Stragglers do not extend the cooldown: the half-open probe is the
        // only evidence that matters once tripped.
        return;
    case BreakerState::half_open:
        transition_locked(BreakerState::open, now_ns);
        opened_at_ns_ = now_ns;
        probes_in_flight_ = 0;
        probe_successes_ = 0;
        return;
    }
}

BreakerState CircuitBreaker::state() const
{
    std::lock_guard lock{mutex_};
    return state_;
}

std::uint64_t CircuitBreaker::trips() const
{
    std::lock_guard lock{mutex_};
    return trips_;
}

std::vector<BreakerTransition> CircuitBreaker::transitions() const
{
    std::lock_guard lock{mutex_};
    return transitions_;
}

} // namespace amp::svc
