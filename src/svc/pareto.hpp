#pragma once
// Batched energy-vs-throughput Pareto probing (docs/ENERGY.md).
//
// A Pareto sweep asks, for a grid of target periods, "what is the cheapest
// schedule (by active energy per item) that still meets this target?" --
// one min_energy_under_period request per target, solved as a single batch
// through the SolverService so the sweep parallelizes across workers and
// repeated probes (autoscaler deliberation, benchmark grids, dashboards)
// hit the solution cache instead of re-running the DP.

#include "core/power.hpp"
#include "core/scheduler.hpp"

#include <vector>

namespace amp::svc {

class SolverService;

/// One point of an energy/period trade-off curve.
struct ParetoPoint {
    double target_period = 0.0; ///< the probe's period budget
    bool ok = false;            ///< false: no schedule meets the target
    bool cache_hit = false;
    /// Achieved period / energy / allocation power of the winning schedule
    /// (all 0 when !ok).
    double period = 0.0;
    double energy_per_item = 0.0;
    double power_watts = 0.0;
    core::Solution solution;
};

/// Solves one min_energy_under_period request per entry of `target_periods`
/// (in order) via service.solve_batch. `base` supplies the non-energy
/// options (merge/prune/...); its objective, target_period and power fields
/// are overwritten per probe. Infeasible targets yield ok == false points
/// rather than being dropped, so the curve keeps one point per target.
[[nodiscard]] std::vector<ParetoPoint>
energy_pareto_sweep(SolverService& service, const core::TaskChain& chain,
                    core::Resources resources, const core::PowerModel& power,
                    const std::vector<double>& target_periods,
                    core::Strategy strategy = core::Strategy::herad,
                    core::ScheduleOptions base = {});

} // namespace amp::svc
