#include "svc/graph_schedule.hpp"

#include <algorithm>
#include <limits>

namespace amp::svc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Max branch period if branch `b` moved to `candidate` while the others
/// stay at their current periods.
double bottleneck_with(const std::vector<double>& periods, std::size_t b, double candidate)
{
    double worst = candidate;
    for (std::size_t i = 0; i < periods.size(); ++i)
        if (i != b)
            worst = std::max(worst, periods[i]);
    return worst;
}

} // namespace

std::vector<core::TaskChain> branch_chains(const core::TaskChain& chain,
                                           const plan::GraphShape& shape)
{
    shape.validate();
    if (chain.size() != shape.tasks())
        throw plan::PlanError{"graph: chain does not match the shape's task count"};
    std::vector<core::TaskChain> chains;
    chains.reserve(shape.branches.size());
    for (const plan::GraphBranch& branch : shape.branches) {
        std::vector<core::TaskDesc> tasks;
        tasks.reserve(static_cast<std::size_t>(branch.task_count()));
        for (int i = branch.first; i <= branch.last; ++i)
            tasks.push_back(chain.task(i));
        chains.emplace_back(std::move(tasks));
    }
    return chains;
}

GraphSchedule schedule_graph(const GraphScheduleRequest& request, SolverService& service)
{
    GraphSchedule out;
    const std::vector<core::TaskChain> chains = branch_chains(request.chain, request.shape);
    const auto nb = chains.size();

    // OTAC variants schedule on one core type only; the other pool is
    // unusable and handing its cores out would just produce invalid solves.
    core::Resources remaining = request.resources;
    if (request.strategy == core::Strategy::otac_big)
        remaining.little = 0;
    else if (request.strategy == core::Strategy::otac_little)
        remaining.big = 0;
    if (static_cast<std::size_t>(remaining.big + remaining.little) < nb) {
        out.error = "graph: fewer usable cores than branches";
        return out;
    }

    const auto probe = [&](std::size_t b, core::Resources budget) {
        core::ScheduleRequest rq;
        rq.chain = chains[b];
        rq.resources = budget;
        rq.strategy = request.strategy;
        rq.options = request.options;
        rq.cache_domain = kGraphBranchDomain;
        ++out.solves;
        return service.solve(rq);
    };
    const auto period_of = [&](std::size_t b, const core::ScheduleResult& result) {
        return result.ok() ? result.solution.period(chains[b]) : kInf;
    };

    // Seed: one core per branch, whichever usable type yields the lower
    // solo period (big on ties -- deterministic).
    out.branches.resize(nb);
    std::vector<double> periods(nb, kInf);
    for (std::size_t b = 0; b < nb; ++b) {
        BranchSchedule& bs = out.branches[b];
        core::ScheduleResult big_r;
        core::ScheduleResult little_r;
        double big_p = kInf;
        double little_p = kInf;
        if (remaining.big > 0) {
            big_r = probe(b, {1, 0});
            big_p = period_of(b, big_r);
        }
        if (remaining.little > 0) {
            little_r = probe(b, {0, 1});
            little_p = period_of(b, little_r);
        }
        if (big_p <= little_p && big_p < kInf) {
            bs.budget = {1, 0};
            bs.result = std::move(big_r);
            periods[b] = big_p;
            --remaining.big;
        } else if (little_p < kInf) {
            bs.budget = {0, 1};
            bs.result = std::move(little_r);
            periods[b] = little_p;
            --remaining.little;
        } else {
            out.error = "graph: branch " + std::to_string(b) + " admits no schedule on one core";
            return out;
        }
        bs.period_us = periods[b];
    }

    // Water-filling: grant one core at a time to the (branch, type)
    // assignment that most reduces the bottleneck period; stop when no
    // assignment strictly improves it (leftover cores stay unused -- a
    // bigger budget that cannot lower the period only burns power).
    while (remaining.big + remaining.little > 0) {
        double best_bottleneck = kInf;
        std::size_t best_branch = nb;
        core::CoreType best_type = core::CoreType::big;
        core::ScheduleResult best_result;
        const double current = *std::max_element(periods.begin(), periods.end());
        for (std::size_t b = 0; b < nb; ++b) {
            for (const core::CoreType type : {core::CoreType::big, core::CoreType::little}) {
                if ((type == core::CoreType::big ? remaining.big : remaining.little) <= 0)
                    continue;
                core::Resources budget = out.branches[b].budget;
                (type == core::CoreType::big ? budget.big : budget.little) += 1;
                core::ScheduleResult r = probe(b, budget);
                const double p = period_of(b, r);
                const double bn = bottleneck_with(periods, b, p);
                if (bn < best_bottleneck) {
                    best_bottleneck = bn;
                    best_branch = b;
                    best_type = type;
                    best_result = std::move(r);
                }
            }
        }
        if (best_branch == nb || best_bottleneck >= current)
            break;
        BranchSchedule& bs = out.branches[best_branch];
        (best_type == core::CoreType::big ? bs.budget.big : bs.budget.little) += 1;
        (best_type == core::CoreType::big ? remaining.big : remaining.little) -= 1;
        bs.result = std::move(best_result);
        periods[best_branch] = period_of(best_branch, bs.result);
        bs.period_us = periods[best_branch];
    }

    std::vector<core::Solution> solutions;
    solutions.reserve(nb);
    for (const BranchSchedule& bs : out.branches)
        solutions.push_back(bs.result.solution);
    out.plan = plan::ExecutionPlan::compile(request.chain, request.shape, solutions,
                                            request.plan_options);
    out.period_us = out.plan.period_us();
    out.ok = true;
    return out;
}

GraphSchedule schedule_graph(const GraphScheduleRequest& request)
{
    return schedule_graph(request, shared_service());
}

} // namespace amp::svc
