#include "svc/solver_service.hpp"

#include "obs/schema.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>

namespace amp::svc {

namespace {

std::string labelled(const char* name, core::Strategy strategy)
{
    return std::string{name} + "{strategy=\"" + core::to_key(strategy) + "\"}";
}

[[nodiscard]] core::ScheduleResult error_result(core::ScheduleError error)
{
    core::ScheduleResult result;
    result.error = error;
    return result;
}

/// The plan to serve with a stale hit: the cached one when its options
/// match, else compiled fresh from the stale (successful) solution -- the
/// entry's chain identity equals the request's, so the compile is valid.
[[nodiscard]] std::shared_ptr<const plan::ExecutionPlan>
plan_for_stale(const core::ScheduleRequest& request, const SolutionCache::PlannedHit& hit,
               plan::PlanOptions options)
{
    if (hit.plan != nullptr && hit.plan->options() == options)
        return hit.plan;
    return std::make_shared<const plan::ExecutionPlan>(
        plan::ExecutionPlan::compile(request.chain, hit.result.solution, options));
}

} // namespace

std::int64_t SolverService::now_ns() noexcept
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

SolverService::SolverService(ServiceConfig config)
    : config_(config)
    , cache_(config.cache_capacity, config.cache_shards)
    , admission_(config.admission)
    , breaker_(config.breaker)
{
    if (config_.metrics != nullptr) {
        metrics_ = config_.metrics;
    } else {
        owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
        metrics_ = owned_metrics_.get();
    }

    instruments_.resize(std::size(core::kAllStrategies));
    for (const core::Strategy strategy : core::kAllStrategies) {
        StrategyInstruments& inst = instruments_[static_cast<std::size_t>(strategy)];
        inst.hits = &metrics_->counter(labelled("amp_svc_cache_hits", strategy));
        inst.misses = &metrics_->counter(labelled("amp_svc_cache_misses", strategy));
        inst.errors = &metrics_->counter(labelled("amp_svc_solve_errors", strategy));
        inst.solve_latency =
            &metrics_->histogram(labelled("amp_svc_solve_latency_us", strategy));
    }

    overload_.admission_rejected = &metrics_->counter(obs::schema::kSvcAdmissionRejected);
    overload_.admission_displaced = &metrics_->counter(obs::schema::kSvcAdmissionDisplaced);
    overload_.deadline_exceeded = &metrics_->counter(obs::schema::kSvcDeadlineExceeded);
    overload_.degraded_serves = &metrics_->counter(obs::schema::kSvcDegradedServes);
    overload_.refinements = &metrics_->counter(obs::schema::kSvcRefinements);
    overload_.breaker_rejected = &metrics_->counter(obs::schema::kSvcBreakerRejected);
    overload_.breaker_trips = &metrics_->counter(obs::schema::kSvcBreakerTrips);
    overload_.admission_depth = &metrics_->gauge(obs::schema::kSvcAdmissionDepth);
    overload_.breaker_state = &metrics_->gauge(obs::schema::kSvcBreakerState);

    int workers = config_.workers;
    if (workers <= 0)
        workers = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);

    deques_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        auto deque = std::make_unique<WorkDeque>();
        deque->jobs.resize(queue_capacity);
        deques_.push_back(std::move(deque));
    }
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

SolverService::~SolverService()
{
    stop();
}

void SolverService::stop()
{
    std::call_once(stop_once_, [this] {
        stop_.store(true, std::memory_order_release);
        {
            std::lock_guard lock{sleep_mutex_};
        }
        work_ready_.notify_all();
        for (std::thread& thread : threads_)
            thread.join();
        // Workers are gone; anything still queued (including jobs a
        // submitter raced in after the flag) is answered, never orphaned.
        // A try_push after this drain sees stop_ under the deque mutex and
        // fails, sending the submitter down the inline (rejected) path.
        drain_rejected();
    });
}

void SolverService::drain_rejected()
{
    for (std::size_t index = 0; index < deques_.size(); ++index) {
        Job job;
        while (try_pop(index, job)) {
            if (job.ticket != nullptr)
                admission_.release(*job.ticket);
            if (job.refine != nullptr) {
                std::lock_guard lock{refine_mutex_};
                refining_.erase(hash_key(key_of(job.refine->request)));
                continue; // best-effort; nobody waits on a refinement
            }
            *job.result = error_result(core::ScheduleError::rejected);
            finish_batch_job(job);
        }
    }
    publish_admission_depth();
}

bool SolverService::try_push(std::size_t worker_index, const Job& job)
{
    WorkDeque& deque = *deques_[worker_index % deques_.size()];
    {
        std::lock_guard lock{deque.mutex};
        // Checked under the deque mutex: stop() sets the flag before its
        // drain locks each deque, so a push that wins the mutex race is
        // drained and one that loses observes the flag -- a job can never
        // slip in behind the drain and strand its batch.
        if (stop_.load(std::memory_order_acquire))
            return false;
        if (deque.count == deque.jobs.size())
            return false;
        deque.jobs[(deque.head + deque.count) % deque.jobs.size()] = job;
        ++deque.count;
    }
    // Unfenced notify: a worker racing between its failed pop and its wait
    // can miss this wakeup, but the 10ms wait_for poll in worker_loop bounds
    // the latency. Taking sleep_mutex_ here would serialize every submitter
    // on one global lock for a correctness property the poll already gives.
    work_ready_.notify_one();
    return true;
}

bool SolverService::try_pop(std::size_t worker_index, Job& out)
{
    WorkDeque& deque = *deques_[worker_index];
    std::lock_guard lock{deque.mutex};
    if (deque.count == 0)
        return false;
    out = deque.jobs[deque.head];
    deque.jobs[deque.head] = Job{}; // release the slot's shared_ptrs
    deque.head = (deque.head + 1) % deque.jobs.size();
    --deque.count;
    return true;
}

bool SolverService::try_steal(std::size_t thief_index, Job& out)
{
    for (std::size_t offset = 1; offset <= deques_.size(); ++offset) {
        const std::size_t victim = (thief_index + offset) % deques_.size();
        if (victim == thief_index)
            continue;
        WorkDeque& deque = *deques_[victim];
        std::lock_guard lock{deque.mutex};
        if (deque.count == 0)
            continue;
        // Steal the newest entry (the back); the owner drains the front.
        --deque.count;
        const std::size_t slot = (deque.head + deque.count) % deque.jobs.size();
        out = deque.jobs[slot];
        deque.jobs[slot] = Job{};
        return true;
    }
    return false;
}

void SolverService::worker_loop(std::size_t worker_index)
{
    for (;;) {
        if (stop_.load(std::memory_order_acquire))
            return; // leftovers are answered by stop()'s drain
        Job job;
        if (try_pop(worker_index, job) || try_steal(worker_index, job)) {
            run_job(job, worker_index);
            continue;
        }
        std::unique_lock lock{sleep_mutex_};
        if (stop_.load(std::memory_order_acquire))
            return;
        work_ready_.wait_for(lock, std::chrono::milliseconds(10));
        if (stop_.load(std::memory_order_acquire))
            return;
    }
}

void SolverService::finish_batch_job(const Job& job)
{
    // Decrement and notify while holding the batch mutex: the submitter only
    // concludes completion under the same mutex, so it cannot observe
    // remaining == 0 and destroy the Batch while we are still touching it.
    std::lock_guard lock{job.batch->mutex};
    if (job.batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
        job.batch->done.notify_all();
}

void SolverService::run_job(const Job& job, std::size_t worker_index)
{
    if (job.refine != nullptr) {
        run_refine(job, worker_index);
        return;
    }
    if (job.ticket != nullptr) {
        const bool claimed = job.ticket->claim();
        admission_.release(*job.ticket);
        publish_admission_depth();
        if (!claimed) {
            // Displaced while queued (the shedding policy counted it).
            *job.result = shed_result(*job.request, worker_index);
            finish_batch_job(job);
            return;
        }
    }
    *job.result = solve_on(*job.request, worker_index);
    finish_batch_job(job);
}

AdmissionQueue::Offer SolverService::admit(const std::shared_ptr<AdmissionTicket>& ticket)
{
    AdmissionQueue::Offer offer = admission_.offer(ticket);
    if (offer.verdict == AdmissionQueue::Verdict::rejected)
        overload_.admission_rejected->inc(0);
    else if (offer.verdict == AdmissionQueue::Verdict::displaced)
        overload_.admission_displaced->inc(0);
    publish_admission_depth();
    return offer;
}

void SolverService::publish_admission_depth()
{
    if (admission_.enabled())
        overload_.admission_depth->set(static_cast<double>(admission_.depth()));
}

void SolverService::publish_breaker()
{
    if (!config_.breaker.enabled())
        return;
    std::lock_guard lock{breaker_obs_mutex_};
    overload_.breaker_state->set(static_cast<double>(static_cast<int>(breaker_.state())));
    const std::uint64_t trips = breaker_.trips();
    if (trips > published_trips_) {
        overload_.breaker_trips->add(0, trips - published_trips_);
        published_trips_ = trips;
    }
}

void SolverService::record_breaker_outcome(const core::ScheduleResult& result)
{
    if (!config_.breaker.enabled())
        return;
    // A failure, to the breaker, is a solve over the slow-solve budget:
    // infeasible/invalid outcomes are deterministic answers (memoized like
    // any other), not signs of an unhealthy solver.
    const bool slow = config_.slow_solve_ns > 0 && result.solve_ns > config_.slow_solve_ns;
    if (slow)
        breaker_.on_failure(now_ns());
    else
        breaker_.on_success(now_ns());
    publish_breaker();
}

bool SolverService::under_pressure() const
{
    if (admission_.enabled() && admission_.pressure() >= config_.brownout_watermark)
        return true;
    return config_.breaker.enabled() && breaker_.state() == BreakerState::open;
}

std::optional<SolutionCache::PlannedHit> SolverService::stale_for(const CacheKey& key,
                                                                  std::size_t worker_index)
{
    if (!config_.brownout)
        return std::nullopt;
    auto hit = cache_.find_stale(key);
    if (!hit)
        return std::nullopt;
    hit->result.degraded = true;
    overload_.degraded_serves->inc(worker_index);
    return hit;
}

core::ScheduleResult SolverService::shed_result(const core::ScheduleRequest& request,
                                                std::size_t worker_index)
{
    // Shed at the admission door: serve stale if brownout has anything, but
    // enqueue no refinement -- the queue is saturated, and a lowest-priority
    // refinement would either be shed immediately or displace real work.
    if (auto stale = stale_for(key_of(request), worker_index))
        return std::move(stale->result);
    return error_result(core::ScheduleError::rejected);
}

void SolverService::enqueue_refinement(const core::ScheduleRequest& request,
                                       plan::PlanOptions options,
                                       std::shared_ptr<const plan::ExecutionPlan> stale)
{
    if (stop_.load(std::memory_order_acquire))
        return;
    const std::uint64_t dedup = hash_key(key_of(request));
    {
        std::lock_guard lock{refine_mutex_};
        if (!refining_.insert(dedup).second)
            return; // a refinement for this identity is already in flight
    }
    const auto abandon = [&] {
        std::lock_guard lock{refine_mutex_};
        refining_.erase(dedup);
    };

    Job job;
    auto refine = std::make_shared<RefineJob>();
    refine->request = request;
    refine->options = options;
    refine->stale = std::move(stale);
    job.refine = std::move(refine);

    if (admission_.enabled()) {
        if (admission_.pressure() >= 1.0)
            return abandon(); // saturated: never displace real work for this
        auto ticket = std::make_shared<AdmissionTicket>();
        ticket->priority = std::numeric_limits<std::int8_t>::min();
        ticket->id = next_ticket_id_.fetch_add(1, std::memory_order_relaxed);
        if (admit(ticket).verdict == AdmissionQueue::Verdict::rejected)
            return abandon();
        job.ticket = std::move(ticket);
    }

    const std::size_t start = next_deque_.fetch_add(1, std::memory_order_relaxed);
    bool queued = false;
    for (std::size_t attempt = 0; attempt < deques_.size() && !queued; ++attempt)
        queued = try_push(start + attempt, job);
    if (!queued) {
        // Every deque full (or the service stopping): refinement is
        // best-effort and never solved inline on the serving thread.
        if (job.ticket != nullptr)
            admission_.release(*job.ticket);
        abandon();
    }
}

void SolverService::run_refine(const Job& job, std::size_t worker_index)
{
    const RefineJob& refine = *job.refine;
    const std::uint64_t dedup = hash_key(key_of(refine.request));
    const auto conclude = [&] {
        std::lock_guard lock{refine_mutex_};
        refining_.erase(dedup);
    };
    if (job.ticket != nullptr) {
        const bool claimed = job.ticket->claim();
        admission_.release(*job.ticket);
        publish_admission_depth();
        if (!claimed)
            return conclude(); // shed while queued
    }
    if (stop_.load(std::memory_order_acquire))
        return conclude();

    RefineOutcome outcome;
    outcome.request = refine.request;
    outcome.stale = refine.stale;
    try {
        outcome.fresh = solve_fresh_planned(refine.request, refine.options, worker_index);
    } catch (...) {
        // plan::PlanError from compile (a solver bug): a background
        // refinement must never take down a worker thread.
        outcome.fresh = PlannedSchedule{};
        outcome.fresh.result = error_result(core::ScheduleError::infeasible);
    }
    overload_.refinements->inc(worker_index);
    conclude();
    if (refine.stale != nullptr && outcome.fresh.plan != nullptr)
        outcome.delta = plan::diff(*refine.stale, *outcome.fresh.plan);
    if (config_.on_refined)
        config_.on_refined(outcome);
}

core::ScheduleResult SolverService::solve_on(const core::ScheduleRequest& request,
                                             std::size_t worker_index, bool allow_brownout)
{
    StrategyInstruments& inst = instruments_[static_cast<std::size_t>(request.strategy)];

    if (stop_.load(std::memory_order_acquire))
        return error_result(core::ScheduleError::rejected);
    if (request.deadline_ns > 0 && now_ns() > request.deadline_ns) {
        overload_.deadline_exceeded->inc(worker_index);
        return error_result(core::ScheduleError::deadline_exceeded);
    }

    const CacheKey key = key_of(request);
    if (cache_.enabled()) {
        const auto t0 = std::chrono::steady_clock::now();
        if (auto hit = cache_.get(key)) {
            hit->solve_ns = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            inst.hits->inc(worker_index);
            return std::move(*hit);
        }
    }

    // An exact hit is free and bypasses the breaker; from here on the
    // solver would actually run, so the breaker gates the path.
    if (config_.breaker.enabled() && !breaker_.allow(now_ns())) {
        overload_.breaker_rejected->inc(worker_index);
        publish_breaker();
        if (allow_brownout) {
            if (auto stale = stale_for(key, worker_index)) {
                enqueue_refinement(request, {}, stale->plan);
                return std::move(stale->result);
            }
        }
        return error_result(core::ScheduleError::rejected);
    }
    if (allow_brownout && config_.brownout && under_pressure()) {
        if (auto stale = stale_for(key, worker_index)) {
            enqueue_refinement(request, {}, stale->plan);
            return std::move(stale->result);
        }
    }

    core::ScheduleResult result = core::schedule(request);
    inst.misses->inc(worker_index);
    inst.solve_latency->record(result.solve_ns);
    if (!result.ok())
        inst.errors->inc(worker_index);
    record_breaker_outcome(result);
    // Infeasible outcomes are deterministic too and worth memoizing;
    // invalid requests are rejected in microseconds, skip them. Cache the
    // solution WITHOUT the warm-start frontier -- a frontier is the whole
    // O(n * b * l) DP matrix, and the LRU must hold solutions, not matrices
    // (callers chain frontiers through the returned result instead).
    if (cache_.enabled() && result.error != core::ScheduleError::invalid_request) {
        core::ScheduleResult memo = result;
        memo.frontier.reset();
        memo.warm_start = false;
        cache_.put(key, std::move(memo));
    }
    return result;
}

core::ScheduleResult SolverService::solve(const core::ScheduleRequest& request)
{
    return solve_on(request, deques_.size());
}

PlannedSchedule SolverService::solve_fresh_planned(const core::ScheduleRequest& request,
                                                   plan::PlanOptions options,
                                                   std::size_t worker_index)
{
    StrategyInstruments& inst = instruments_[static_cast<std::size_t>(request.strategy)];
    PlannedSchedule planned;
    planned.result = core::schedule(request);
    inst.misses->inc(worker_index);
    inst.solve_latency->record(planned.result.solve_ns);
    if (!planned.result.ok())
        inst.errors->inc(worker_index);
    record_breaker_outcome(planned.result);
    if (planned.result.ok())
        planned.plan = std::make_shared<const plan::ExecutionPlan>(
            plan::ExecutionPlan::compile(request.chain, planned.result.solution, options));
    if (cache_.enabled() && planned.result.error != core::ScheduleError::invalid_request) {
        // Same frontier stripping as solve_on: the cache keeps solutions
        // and compiled plans, never DP matrices.
        core::ScheduleResult memo = planned.result;
        memo.frontier.reset();
        memo.warm_start = false;
        cache_.put_planned(key_of(request), std::move(memo), planned.plan);
    }
    return planned;
}

PlannedSchedule SolverService::solve_planned(const core::ScheduleRequest& request,
                                             plan::PlanOptions options)
{
    const std::size_t external = deques_.size();
    StrategyInstruments& inst = instruments_[static_cast<std::size_t>(request.strategy)];
    const CacheKey key = key_of(request);

    PlannedSchedule planned;
    if (stop_.load(std::memory_order_acquire)) {
        planned.result = error_result(core::ScheduleError::rejected);
        return planned;
    }
    if (request.deadline_ns > 0 && now_ns() > request.deadline_ns) {
        overload_.deadline_exceeded->inc(external);
        planned.result = error_result(core::ScheduleError::deadline_exceeded);
        return planned;
    }

    if (cache_.enabled()) {
        const auto t0 = std::chrono::steady_clock::now();
        if (auto hit = cache_.get_planned(key)) {
            hit->result.solve_ns = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            inst.hits->inc(external);
            planned.result = std::move(hit->result);
            if (hit->plan != nullptr && hit->plan->options() == options) {
                planned.plan = std::move(hit->plan); // zero compile work
                return planned;
            }
            if (planned.result.ok()) {
                // Result hit without a (matching) compiled plan: compile
                // once and attach, so the next hit skips this too.
                auto compiled = std::make_shared<const plan::ExecutionPlan>(
                    plan::ExecutionPlan::compile(request.chain, planned.result.solution,
                                                 options));
                cache_.attach_plan(key, compiled);
                planned.plan = std::move(compiled);
            }
            return planned;
        }
    }

    // Exact miss: the solver would run from here, so the breaker gates the
    // path; brownout serves a stale compatible plan instead of piling on.
    if (config_.breaker.enabled() && !breaker_.allow(now_ns())) {
        overload_.breaker_rejected->inc(external);
        publish_breaker();
        if (auto stale = stale_for(key, external)) {
            planned.plan = plan_for_stale(request, *stale, options);
            planned.result = std::move(stale->result);
            enqueue_refinement(request, options, planned.plan);
            return planned;
        }
        planned.result = error_result(core::ScheduleError::rejected);
        return planned;
    }
    if (config_.brownout && under_pressure()) {
        if (auto stale = stale_for(key, external)) {
            planned.plan = plan_for_stale(request, *stale, options);
            planned.result = std::move(stale->result);
            enqueue_refinement(request, options, planned.plan);
            return planned;
        }
    }

    return solve_fresh_planned(request, options, external);
}

std::vector<core::ScheduleResult>
SolverService::solve_batch(const std::vector<core::ScheduleRequest>& requests)
{
    std::vector<core::ScheduleResult> results(requests.size());
    if (requests.empty())
        return results;

    const std::size_t external = deques_.size();
    if (stop_.load(std::memory_order_acquire)) {
        for (core::ScheduleResult& result : results)
            result = error_result(core::ScheduleError::rejected);
        return results;
    }

    Batch batch;
    batch.remaining.store(requests.size(), std::memory_order_relaxed);

    for (std::size_t i = 0; i < requests.size(); ++i) {
        Job job;
        job.request = &requests[i];
        job.result = &results[i];
        job.batch = &batch;
        if (admission_.enabled()) {
            auto ticket = std::make_shared<AdmissionTicket>();
            ticket->priority = requests[i].priority;
            ticket->deadline_ns = requests[i].deadline_ns;
            ticket->id = next_ticket_id_.fetch_add(1, std::memory_order_relaxed);
            if (admit(ticket).verdict == AdmissionQueue::Verdict::rejected) {
                *job.result = shed_result(requests[i], external);
                finish_batch_job(job);
                continue;
            }
            job.ticket = std::move(ticket);
        }
        const std::size_t start = next_deque_.fetch_add(1, std::memory_order_relaxed);
        bool queued = false;
        for (std::size_t attempt = 0; attempt < deques_.size() && !queued; ++attempt)
            queued = try_push(start + attempt, job);
        if (!queued)
            run_job(job, external); // every deque full: backpressure, solve inline
    }

    // Help drain: steal queued jobs (this batch's or a concurrent one's)
    // instead of blocking, then wait for in-flight solves to finish. Only
    // conclude completion while holding batch.mutex — workers decrement
    // `remaining` under that mutex, so once we see 0 here the last worker
    // has released the mutex and will never touch the Batch again; a naked
    // atomic load could observe 0 while that worker is still about to
    // notify, letting us destroy the Batch under it.
    for (;;) {
        Job job;
        if (try_steal(external, job)) {
            run_job(job, external);
            continue;
        }
        std::unique_lock lock{batch.mutex};
        if (batch.done.wait_for(lock, std::chrono::milliseconds(1), [&] {
                return batch.remaining.load(std::memory_order_acquire) == 0;
            }))
            break;
    }
    return results;
}

namespace {
std::atomic<SolverService*> shared_override{nullptr};
} // namespace

SolverService& shared_service()
{
    if (SolverService* override_service = shared_override.load(std::memory_order_acquire))
        return *override_service;
    static SolverService service{};
    return service;
}

SolverService* set_shared_service_for_test(SolverService* service) noexcept
{
    return shared_override.exchange(service, std::memory_order_acq_rel);
}

} // namespace amp::svc
