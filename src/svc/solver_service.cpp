#include "svc/solver_service.hpp"

#include <algorithm>
#include <chrono>
#include <string>

namespace amp::svc {

namespace {

std::string labelled(const char* name, core::Strategy strategy)
{
    return std::string{name} + "{strategy=\"" + core::to_key(strategy) + "\"}";
}

} // namespace

SolverService::SolverService(ServiceConfig config)
    : config_(config)
    , cache_(config.cache_capacity, config.cache_shards)
{
    if (config_.metrics != nullptr) {
        metrics_ = config_.metrics;
    } else {
        owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
        metrics_ = owned_metrics_.get();
    }

    instruments_.resize(std::size(core::kAllStrategies));
    for (const core::Strategy strategy : core::kAllStrategies) {
        StrategyInstruments& inst = instruments_[static_cast<std::size_t>(strategy)];
        inst.hits = &metrics_->counter(labelled("amp_svc_cache_hits", strategy));
        inst.misses = &metrics_->counter(labelled("amp_svc_cache_misses", strategy));
        inst.errors = &metrics_->counter(labelled("amp_svc_solve_errors", strategy));
        inst.solve_latency =
            &metrics_->histogram(labelled("amp_svc_solve_latency_us", strategy));
    }

    int workers = config_.workers;
    if (workers <= 0)
        workers = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);

    deques_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        auto deque = std::make_unique<WorkDeque>();
        deque->jobs.resize(queue_capacity);
        deques_.push_back(std::move(deque));
    }
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

SolverService::~SolverService()
{
    stop_.store(true, std::memory_order_release);
    {
        std::lock_guard lock{sleep_mutex_};
    }
    work_ready_.notify_all();
    for (std::thread& thread : threads_)
        thread.join();
}

bool SolverService::try_push(std::size_t worker_index, const Job& job)
{
    WorkDeque& deque = *deques_[worker_index % deques_.size()];
    {
        std::lock_guard lock{deque.mutex};
        if (deque.count == deque.jobs.size())
            return false;
        deque.jobs[(deque.head + deque.count) % deque.jobs.size()] = job;
        ++deque.count;
    }
    // Unfenced notify: a worker racing between its failed pop and its wait
    // can miss this wakeup, but the 10ms wait_for poll in worker_loop bounds
    // the latency. Taking sleep_mutex_ here would serialize every submitter
    // on one global lock for a correctness property the poll already gives.
    work_ready_.notify_one();
    return true;
}

bool SolverService::try_pop(std::size_t worker_index, Job& out)
{
    WorkDeque& deque = *deques_[worker_index];
    std::lock_guard lock{deque.mutex};
    if (deque.count == 0)
        return false;
    out = deque.jobs[deque.head];
    deque.head = (deque.head + 1) % deque.jobs.size();
    --deque.count;
    return true;
}

bool SolverService::try_steal(std::size_t thief_index, Job& out)
{
    for (std::size_t offset = 1; offset <= deques_.size(); ++offset) {
        const std::size_t victim = (thief_index + offset) % deques_.size();
        if (victim == thief_index)
            continue;
        WorkDeque& deque = *deques_[victim];
        std::lock_guard lock{deque.mutex};
        if (deque.count == 0)
            continue;
        // Steal the newest entry (the back); the owner drains the front.
        --deque.count;
        out = deque.jobs[(deque.head + deque.count) % deque.jobs.size()];
        return true;
    }
    return false;
}

void SolverService::worker_loop(std::size_t worker_index)
{
    for (;;) {
        Job job;
        if (try_pop(worker_index, job) || try_steal(worker_index, job)) {
            run_job(job, worker_index);
            continue;
        }
        std::unique_lock lock{sleep_mutex_};
        if (stop_.load(std::memory_order_acquire))
            return;
        work_ready_.wait_for(lock, std::chrono::milliseconds(10));
        if (stop_.load(std::memory_order_acquire))
            return;
    }
}

void SolverService::run_job(const Job& job, std::size_t worker_index)
{
    *job.result = solve_on(*job.request, worker_index);
    // Decrement and notify while holding the batch mutex: the submitter only
    // concludes completion under the same mutex, so it cannot observe
    // remaining == 0 and destroy the Batch while we are still touching it.
    std::lock_guard lock{job.batch->mutex};
    if (job.batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
        job.batch->done.notify_all();
}

core::ScheduleResult SolverService::solve_on(const core::ScheduleRequest& request,
                                             std::size_t worker_index)
{
    StrategyInstruments& inst = instruments_[static_cast<std::size_t>(request.strategy)];
    const CacheKey key = key_of(request);

    if (cache_.enabled()) {
        const auto t0 = std::chrono::steady_clock::now();
        if (auto hit = cache_.get(key)) {
            hit->solve_ns = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            inst.hits->inc(worker_index);
            return std::move(*hit);
        }
    }

    core::ScheduleResult result = core::schedule(request);
    inst.misses->inc(worker_index);
    inst.solve_latency->record(result.solve_ns);
    if (!result.ok())
        inst.errors->inc(worker_index);
    // Infeasible outcomes are deterministic too and worth memoizing;
    // invalid requests are rejected in microseconds, skip them.
    if (cache_.enabled() && result.error != core::ScheduleError::invalid_request)
        cache_.put(key, result);
    return result;
}

core::ScheduleResult SolverService::solve(const core::ScheduleRequest& request)
{
    return solve_on(request, deques_.size());
}

PlannedSchedule SolverService::solve_planned(const core::ScheduleRequest& request,
                                             plan::PlanOptions options)
{
    const std::size_t external = deques_.size();
    StrategyInstruments& inst = instruments_[static_cast<std::size_t>(request.strategy)];
    const CacheKey key = key_of(request);

    PlannedSchedule planned;
    if (cache_.enabled()) {
        const auto t0 = std::chrono::steady_clock::now();
        if (auto hit = cache_.get_planned(key)) {
            hit->result.solve_ns = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            inst.hits->inc(external);
            planned.result = std::move(hit->result);
            if (hit->plan != nullptr && hit->plan->options() == options) {
                planned.plan = std::move(hit->plan); // zero compile work
                return planned;
            }
            if (planned.result.ok()) {
                // Result hit without a (matching) compiled plan: compile
                // once and attach, so the next hit skips this too.
                auto compiled = std::make_shared<const plan::ExecutionPlan>(
                    plan::ExecutionPlan::compile(request.chain, planned.result.solution,
                                                 options));
                cache_.attach_plan(key, compiled);
                planned.plan = std::move(compiled);
            }
            return planned;
        }
    }

    planned.result = core::schedule(request);
    inst.misses->inc(external);
    inst.solve_latency->record(planned.result.solve_ns);
    if (!planned.result.ok())
        inst.errors->inc(external);
    if (planned.result.ok())
        planned.plan = std::make_shared<const plan::ExecutionPlan>(
            plan::ExecutionPlan::compile(request.chain, planned.result.solution, options));
    if (cache_.enabled() && planned.result.error != core::ScheduleError::invalid_request)
        cache_.put_planned(key, planned.result, planned.plan);
    return planned;
}

std::vector<core::ScheduleResult>
SolverService::solve_batch(const std::vector<core::ScheduleRequest>& requests)
{
    std::vector<core::ScheduleResult> results(requests.size());
    if (requests.empty())
        return results;

    Batch batch;
    batch.remaining.store(requests.size(), std::memory_order_relaxed);

    const std::size_t external = deques_.size();
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const Job job{&requests[i], &results[i], &batch};
        const std::size_t start = next_deque_.fetch_add(1, std::memory_order_relaxed);
        bool queued = false;
        for (std::size_t attempt = 0; attempt < deques_.size() && !queued; ++attempt)
            queued = try_push(start + attempt, job);
        if (!queued)
            run_job(job, external); // every deque full: backpressure, solve inline
    }

    // Help drain: steal queued jobs (this batch's or a concurrent one's)
    // instead of blocking, then wait for in-flight solves to finish. Only
    // conclude completion while holding batch.mutex — workers decrement
    // `remaining` under that mutex, so once we see 0 here the last worker
    // has released the mutex and will never touch the Batch again; a naked
    // atomic load could observe 0 while that worker is still about to
    // notify, letting us destroy the Batch under it.
    for (;;) {
        Job job;
        if (try_steal(external, job)) {
            run_job(job, external);
            continue;
        }
        std::unique_lock lock{batch.mutex};
        if (batch.done.wait_for(lock, std::chrono::milliseconds(1), [&] {
                return batch.remaining.load(std::memory_order_acquire) == 0;
            }))
            break;
    }
    return results;
}

SolverService& shared_service()
{
    static SolverService service{};
    return service;
}

} // namespace amp::svc
