#pragma once
// Graph scheduling: splits a plan::GraphShape into linear branch sub-chains,
// solves each through the (linear-only) core::schedule path via the
// SolverService, and stitches the per-branch solutions into one DAG
// ExecutionPlan with a combined period bound.
//
// Core allocation is greedy water-filling: each branch is seeded with one
// core, then the remaining cores go one at a time to whichever (branch,
// core-type) assignment most reduces the bottleneck -- the max over branches
// of the branch period, which is exactly the stitched plan's period_us().
// Every probe is a plain service solve under kGraphBranchDomain, so repeated
// probes of the same (branch, budget) pair hit the solution cache, and a
// branch's cached entry can never be confused with an identical standalone
// chain (docs/SOLVER_SERVICE.md).

#include "plan/execution_plan.hpp"
#include "svc/solver_service.hpp"

#include <string>
#include <vector>

namespace amp::svc {

struct GraphScheduleRequest {
    /// Global branch-concatenated chain (e.g. ModuleGraph::decompose order)
    /// with per-task weights; chain.size() must equal shape.tasks().
    core::TaskChain chain;
    plan::GraphShape shape;
    core::Resources resources;
    core::Strategy strategy = core::Strategy::herad;
    core::ScheduleOptions options{};
    plan::PlanOptions plan_options{};
};

/// One branch's allocation and solve outcome.
struct BranchSchedule {
    core::Resources budget;
    core::ScheduleResult result; ///< solution in local (per-branch) task ids
    double period_us = 0.0;
};

struct GraphSchedule {
    bool ok = false;
    std::string error;            ///< set when !ok
    plan::ExecutionPlan plan;     ///< stitched DAG plan (valid when ok)
    std::vector<BranchSchedule> branches;
    double period_us = 0.0;       ///< combined bound: max branch period
    int solves = 0;               ///< solver probes issued (cache-amortized)
};

/// Splits the global chain into per-branch sub-chains (local 1-based task
/// ids). Throws plan::PlanError when the chain and shape disagree.
[[nodiscard]] std::vector<core::TaskChain> branch_chains(const core::TaskChain& chain,
                                                         const plan::GraphShape& shape);

/// Solves the graph on `service`. Never throws for infeasibility (reported
/// via GraphSchedule::error); throws plan::PlanError on a malformed shape.
[[nodiscard]] GraphSchedule schedule_graph(const GraphScheduleRequest& request,
                                           SolverService& service);

/// Convenience overload on the process-wide shared_service().
[[nodiscard]] GraphSchedule schedule_graph(const GraphScheduleRequest& request);

} // namespace amp::svc
