#pragma once
// Deadline/priority-aware admission control for the solver service.
//
// The admission queue bounds the number of *pending* (queued, not yet
// claimed) solve jobs. When the bound is hit a configurable shedding policy
// decides who loses: the newcomer (reject_newest), the oldest queued job
// (drop_oldest), or the lowest-priority queued job (priority_aware, ties
// broken against the newcomer). Shed jobs are answered with
// core::ScheduleError::rejected instead of queueing forever.
//
// Tickets, not jobs, flow through the queue: a ticket is a tiny shared
// state cell whose owner (the worker that eventually pops the job, or the
// shedding policy) claims it with one CAS. The solver service's
// work-stealing deques stay untouched -- a shed ticket simply turns the
// deque entry into a cheap no-op -- and the queue itself is time-free and
// deterministic, so dsim::simulate_admission replays the exact same
// decision logic in virtual time (docs/FAULT_MODEL.md, "Overload model").

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

namespace amp::svc {

/// Who gets shed when the admission queue is full.
enum class ShedPolicy : std::uint8_t {
    reject_newest,  ///< the incoming request is rejected
    drop_oldest,    ///< the oldest queued request is rejected, newcomer admitted
    priority_aware, ///< the lowest-priority queued request loses; on a tie
                    ///< (newcomer not strictly higher) the newcomer is rejected
};

[[nodiscard]] constexpr const char* to_string(ShedPolicy policy) noexcept
{
    switch (policy) {
    case ShedPolicy::reject_newest: return "reject_newest";
    case ShedPolicy::drop_oldest: return "drop_oldest";
    case ShedPolicy::priority_aware: return "priority_aware";
    }
    return "?";
}

struct AdmissionConfig {
    /// Maximum queued-but-unclaimed jobs; 0 disables admission control
    /// (every request is admitted, nothing is tracked).
    std::size_t max_pending = 0;
    ShedPolicy policy = ShedPolicy::reject_newest;
};

/// Priority rt::Rescheduler stamps on recovery re-solves: recovery must not
/// be shed behind bulk traffic (a saturated queue would otherwise turn a
/// single core loss into a dead pipeline).
inline constexpr std::int8_t kRecoveryPriority = 100;

/// Shared admission state of one queued request. Exactly one of the two
/// racing parties wins the single CAS: the worker that wants to run the job
/// (claim) or the shedding policy that wants to drop it (shed).
struct AdmissionTicket {
    enum class State : std::uint8_t { queued, running, shed };

    std::int8_t priority = 0;
    std::int64_t deadline_ns = 0; ///< 0 = none (checked by the claimer)
    std::uint64_t id = 0;         ///< caller-assigned (monotone per queue user)
    std::atomic<State> state{State::queued};

    /// Worker side: queued -> running. False when the ticket was shed.
    [[nodiscard]] bool claim() noexcept
    {
        State expected = State::queued;
        return state.compare_exchange_strong(expected, State::running,
                                             std::memory_order_acq_rel);
    }

    /// Policy side: queued -> shed. False when a worker claimed it first.
    [[nodiscard]] bool shed() noexcept
    {
        State expected = State::queued;
        return state.compare_exchange_strong(expected, State::shed,
                                             std::memory_order_acq_rel);
    }
};

/// Monotone decision counters.
struct AdmissionStats {
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;  ///< newcomers shed at the door
    std::uint64_t displaced = 0; ///< queued victims shed to admit a newcomer
};

/// Thread-safe bounded admission queue over tickets. Deterministic given a
/// serial sequence of offer/release calls (no clocks, no randomness) --
/// the property dsim::simulate_admission relies on.
class AdmissionQueue {
public:
    explicit AdmissionQueue(AdmissionConfig config);

    AdmissionQueue(const AdmissionQueue&) = delete;
    AdmissionQueue& operator=(const AdmissionQueue&) = delete;

    enum class Verdict : std::uint8_t {
        admitted,  ///< queued; ticket is pending until claimed or shed
        rejected,  ///< ticket was shed at the door (state already flipped)
        displaced, ///< admitted, but `victim` was shed to make room
    };

    struct Offer {
        Verdict verdict = Verdict::admitted;
        /// The queued ticket shed to admit the newcomer (displaced only).
        std::shared_ptr<AdmissionTicket> victim;
    };

    /// Applies the shedding policy and (unless rejected) enqueues `ticket`.
    /// On `rejected` the ticket's state is already State::shed.
    [[nodiscard]] Offer offer(const std::shared_ptr<AdmissionTicket>& ticket);

    /// Removes a claimed (or otherwise finished) ticket from the pending
    /// set. Safe to call for tickets the queue never admitted (no-op).
    void release(const AdmissionTicket& ticket);

    /// Queued-and-unclaimed tickets right now.
    [[nodiscard]] std::size_t depth() const;

    /// depth / max_pending in [0, 1]; 0 when admission is disabled. The
    /// solver service's brownout watermark compares against this.
    [[nodiscard]] double pressure() const;

    [[nodiscard]] AdmissionStats stats() const;
    [[nodiscard]] bool enabled() const noexcept { return config_.max_pending > 0; }
    [[nodiscard]] const AdmissionConfig& config() const noexcept { return config_; }

private:
    /// Drops tickets that are no longer queued (claimed by a worker that
    /// has not released yet, or shed). Requires mutex_ held.
    void compact_locked();

    AdmissionConfig config_;
    mutable std::mutex mutex_;
    std::deque<std::shared_ptr<AdmissionTicket>> pending_; ///< arrival order
    AdmissionStats stats_;
};

} // namespace amp::svc
