#pragma once
// Sharded LRU cache of schedule results.
//
// The key is the full identity of a solve: the chain's two independent
// 64-bit digests (FNV-1a and splitmix64 over weights + replicability flags,
// computed once at TaskChain construction) plus its task count, the
// strategy, the resource vector R = (b, l), and the dense ScheduleOptions
// encoding. Two requests with equal keys are solved identically by the
// (deterministic) strategies, so a hit returns a bit-identical Solution
// without running the solver.
//
// Sharding: the key hash selects one of `shards` independent LRU maps, each
// behind its own mutex, so concurrent workers rarely contend. Capacity is
// split evenly across shards; eviction is strict LRU per shard.

#include "core/scheduler.hpp"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace amp::plan {
class ExecutionPlan; // entries may carry a compiled plan (see get_planned)
}

namespace amp::svc {

/// Cache identity of a ScheduleRequest. Chain identity is two independent
/// 64-bit digests plus the task count: a silent collision (a hit returning
/// another chain's solution) requires FNV-1a and splitmix64 to collide
/// simultaneously on chains of equal length, instead of a single 64-bit
/// birthday bound.
struct CacheKey {
    std::uint64_t chain_fingerprint = 0;
    std::uint64_t chain_fingerprint2 = 0;
    /// ScheduleOptions::energy_fingerprint(): 0 for min_period, otherwise a
    /// digest of (objective, target_period, PowerModel). Energy-objective
    /// solves depend on these continuous parameters, which cannot fit in the
    /// dense `options` bitmask, so they get their own 64-bit identity.
    std::uint64_t energy = 0;
    std::int32_t chain_tasks = 0;
    std::int32_t big = 0;
    std::int32_t little = 0;
    std::uint8_t strategy = 0;
    /// ScheduleOptions::key_bits(): dense boolean/enum option encoding.
    /// 16 bits wide -- 5 are in use (merge, prune, fast upper bound,
    /// big-first preference, energy objective) and the headroom keeps the
    /// next option from silently truncating.
    std::uint16_t options = 0;
    /// ScheduleRequest::cache_domain: separates namespaces whose entries
    /// must not mix even for byte-identical chains -- e.g. a linearized
    /// graph branch (kGraphBranchDomain) carries a branch-context compiled
    /// plan that an identical standalone chain must never receive.
    std::uint8_t domain = 0;

    [[nodiscard]] constexpr bool operator==(const CacheKey&) const noexcept = default;
};

/// Domain for graph-branch sub-chain solves (svc::schedule_graph).
inline constexpr std::uint8_t kGraphBranchDomain = 1;

[[nodiscard]] inline CacheKey key_of(const core::ScheduleRequest& request) noexcept
{
    return CacheKey{.chain_fingerprint = request.chain.fingerprint(),
                    .chain_fingerprint2 = request.chain.fingerprint2(),
                    .energy = request.options.energy_fingerprint(),
                    .chain_tasks = request.chain.size(),
                    .big = request.resources.big,
                    .little = request.resources.little,
                    .strategy = static_cast<std::uint8_t>(request.strategy),
                    .options = request.options.key_bits(),
                    .domain = request.cache_domain};
}

/// splitmix64-style mix of the key fields; also decides the shard.
[[nodiscard]] constexpr std::uint64_t hash_key(const CacheKey& key) noexcept
{
    std::uint64_t x = key.chain_fingerprint;
    x ^= key.chain_fingerprint2 * 0xff51afd7ed558ccdull;
    x ^= key.energy * 0xc2b2ae3d27d4eb4full;
    x ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.big)) << 32)
        | static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.little));
    x ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.chain_tasks)) << 16)
        ^ (static_cast<std::uint64_t>(key.strategy) << 40)
        ^ (static_cast<std::uint64_t>(key.options) << 48)
        ^ (static_cast<std::uint64_t>(key.domain) << 24);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Aggregate cache counters (monotone except `entries`).
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;

    [[nodiscard]] double hit_rate() const noexcept
    {
        const double total = static_cast<double>(hits + misses);
        return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
    }
};

/// Thread-safe sharded LRU map CacheKey -> ScheduleResult.
class SolutionCache {
public:
    /// `capacity` is the total entry budget, split evenly across `shards`.
    /// The shard count is clamped to `capacity` so the cache never admits
    /// more than `capacity` entries in total. capacity == 0 disables the
    /// cache: get() always misses and put() is a no-op.
    SolutionCache(std::size_t capacity, std::size_t shards);

    SolutionCache(const SolutionCache&) = delete;
    SolutionCache& operator=(const SolutionCache&) = delete;

    /// Returns the cached result (cache_hit already set) or nullopt.
    [[nodiscard]] std::optional<core::ScheduleResult> get(const CacheKey& key);

    /// A hit that also carries the entry's compiled execution plan, when one
    /// has been admitted (null otherwise). The plan is shared, immutable and
    /// identical across hits -- svc::solve_planned returns it with zero
    /// compile work.
    struct PlannedHit {
        core::ScheduleResult result;
        std::shared_ptr<const plan::ExecutionPlan> plan;
    };

    /// Like get(), but also returns the compiled plan stored with the entry
    /// (null when the result was admitted without one).
    [[nodiscard]] std::optional<PlannedHit> get_planned(const CacheKey& key);

    /// Brownout lookup (stale-while-revalidate, docs/SOLVER_SERVICE.md):
    /// after an exact miss on `want`, returns any *successful* cached entry
    /// for the same chain identity whose resource vector fits within the
    /// requested budget (entry R <= want R componentwise -- such a schedule
    /// is guaranteed runnable on the requested machine, just not optimal
    /// for it). Preference order: same strategy first, then the largest
    /// fitting resource vector, then the lowest strategy id (deterministic).
    /// A full-shard scan -- only taken on the degraded path, never on hits.
    /// Does not touch LRU order or the hit/miss counters.
    [[nodiscard]] std::optional<PlannedHit> find_stale(const CacheKey& want);

    /// Inserts or refreshes `result` under `key`, evicting the shard's LRU
    /// entry when full. A refresh keeps any compiled plan already attached
    /// to the entry (the result is bit-identical for an equal key).
    void put(const CacheKey& key, const core::ScheduleResult& result);

    /// put() that also stores the compiled plan alongside the result.
    void put_planned(const CacheKey& key, const core::ScheduleResult& result,
                     std::shared_ptr<const plan::ExecutionPlan> plan);

    /// Attaches a compiled plan to an existing entry (no-op when the entry
    /// has been evicted meanwhile).
    void attach_plan(const CacheKey& key, std::shared_ptr<const plan::ExecutionPlan> plan);

    [[nodiscard]] CacheStats stats() const;
    [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

    void clear();

private:
    struct Entry {
        CacheKey key;
        core::ScheduleResult result;
        std::shared_ptr<const plan::ExecutionPlan> plan; ///< null until attached
    };

    struct KeyHasher {
        [[nodiscard]] std::size_t operator()(const CacheKey& key) const noexcept
        {
            return static_cast<std::size_t>(hash_key(key));
        }
    };

    struct Shard {
        mutable std::mutex mutex;
        std::list<Entry> lru; ///< front = most recently used
        std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHasher> index;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    [[nodiscard]] Shard& shard_for(std::uint64_t hash) noexcept
    {
        return shards_[static_cast<std::size_t>(hash) % shards_.size()];
    }

    std::size_t capacity_;
    std::size_t per_shard_;
    std::vector<Shard> shards_;
};

} // namespace amp::svc
