#pragma once
// Tenant model of the multi-tenant arbiter (docs/ARBITER.md).
//
// A tenant is one partially-replicable task chain competing for a share of
// the machine's shared (b, l) core pool. The arbiter allocates each tenant
// a private resource vector within [quota.min, quota.max], solves the
// tenant's chain on that budget through svc::SolverService, and hands the
// resulting plan::ExecutionPlan to the tenant's live pipeline (when one is
// bound) as a hot-swappable delta. The weight expresses the tenant's
// fair-share entitlement: at the weighted max-min fair point, tenant
// throughputs are proportional to weights (rate_i / weight_i equalized
// across unsaturated tenants).

#include "core/chain.hpp"
#include "core/scheduler.hpp"

#include <cstdint>
#include <limits>
#include <string>

namespace amp::arb {

/// Stable tenant identity, assigned by the arbiter at registration and
/// never reused within one arbiter's lifetime. Ids order all deterministic
/// tie-breaks (allocation scans tenants in ascending id order).
using TenantId = std::uint64_t;

/// Per-core-type bounds on a tenant's allocation. `min` is a guaranteed
/// floor (granted before any fair-share filling; clamped to the pool when
/// the minima oversubscribe it, highest priority first). `max` caps the
/// fill; a negative component means unbounded on that core type.
struct TenantQuota {
    core::Resources min{0, 0};
    core::Resources max{-1, -1};

    /// Effective cap on `type` (INT_MAX when unbounded).
    [[nodiscard]] constexpr int cap(core::CoreType type) const noexcept
    {
        const int raw = max.count(type);
        return raw < 0 ? std::numeric_limits<int>::max() : raw;
    }

    [[nodiscard]] constexpr bool operator==(const TenantQuota&) const noexcept = default;
};

/// Everything the arbiter needs to serve one tenant.
struct TenantSpec {
    std::string name;
    core::TaskChain chain;
    /// Fair-share weight (> 0): the weighted max-min objective equalizes
    /// throughput / weight across tenants, so a weight-2 tenant converges
    /// to twice the frame rate of a weight-1 tenant when both are
    /// unsaturated.
    double weight = 1.0;
    TenantQuota quota{};
    /// Admission priority stamped on every arbitration-triggered solve the
    /// arbiter submits for this tenant (probe batches and plan re-solves),
    /// so a solver service running priority_aware shedding sheds
    /// low-priority tenants' probes first under overload. Also the
    /// tie-break order for granting quota minima from an oversubscribed
    /// pool, and the service order of the priority_only baseline policy.
    std::int8_t priority = 0;
    /// Strategy/options every solve for this tenant uses.
    core::Strategy strategy = core::Strategy::herad;
    core::ScheduleOptions options{};
};

} // namespace amp::arb
