#pragma once
// amp::arb::Arbiter -- multi-tenant arbiter serving many concurrent task
// chains from one shared (b, l) core pool (docs/ARBITER.md).
//
// The paper schedules ONE partially-replicable chain on a fixed resource
// vector. The arbiter sits above svc::SolverService and serves MANY chains
// (tenants) competing for one big.LITTLE machine: each tenant registers a
// TenantSpec (chain, fair-share weight, per-type quota floor/cap,
// priority); rearbitrate() runs a global allocation loop that splits the
// pool by weighted max-min fairness over achievable periods (arb::allocate,
// water-filling on each tenant's period-vs-budget curve, probed via batched
// solve_batch calls through the service's solution cache), solves every
// tenant's chain on its granted budget, and pushes the resulting
// plan::ExecutionPlan to the tenant's live executor as a hot-swap:
//
//   * budget unchanged            -> nothing (SwapKind::none)
//   * resize-only delta, live     -> frame-granular in-flight swap, no drain
//                                    (rt::Pipeline::try_apply_delta_in_flight)
//   * compatible delta, parked    -> between-segment delta swap
//   * incompatible (recut/rebind) -> SwapKind::rebuild_required; the new
//                                    plan is stored in the tenant status and
//                                    the owner rebuilds its executor from it
//
// Tenant join / leave / weight change / chain drift mark the arbiter dirty;
// the owner (or dsim::simulate_multi_tenant, which replays the same loop in
// virtual time) calls rearbitrate() to re-run the allocation. Probe and
// re-solve requests are stamped with the tenant's admission priority, so a
// service running priority_aware shedding sheds low-priority tenants'
// arbitration traffic first under overload.
//
// Telemetry: amp_arb_* counters/gauges (obs/schema.hpp, table in
// docs/SOLVER_SERVICE.md) recorded into an injected registry or the
// service's own.

#include "arb/allocation.hpp"
#include "arb/tenant.hpp"
#include "obs/metrics.hpp"
#include "plan/execution_plan.hpp"
#include "svc/solver_service.hpp"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

namespace amp::arb {

/// How a re-arbitrated budget reached the tenant's executor.
enum class SwapKind : std::uint8_t {
    none,             ///< budget unchanged; nothing recomputed or pushed
    planned,          ///< new plan stored; no live endpoint bound
    frame,            ///< in-flight frame-granular swap (no drain)
    delta,            ///< between-segment delta swap
    rebuild_required, ///< endpoint could not apply; owner must rebuild
};

[[nodiscard]] constexpr const char* to_string(SwapKind kind) noexcept
{
    switch (kind) {
    case SwapKind::none: return "none";
    case SwapKind::planned: return "planned";
    case SwapKind::frame: return "frame";
    case SwapKind::delta: return "delta";
    case SwapKind::rebuild_required: return "rebuild_required";
    }
    return "?";
}

/// Type-erased handle to a tenant's live executor. rt::PipelineTenantEndpoint
/// adapts rt::Pipeline<T>; tests inject fakes. Calls arrive on the thread
/// that invoked Arbiter::rearbitrate(), serialized by the arbiter's lock.
class TenantEndpoint {
public:
    virtual ~TenantEndpoint() = default;

    /// The plan the executor currently runs (diff base for the next swap).
    [[nodiscard]] virtual const plan::ExecutionPlan& current_plan() const = 0;

    /// Applies `next` (with `delta` = diff(current_plan(), next)) and
    /// reports how: frame, delta, or rebuild_required when the executor
    /// cannot absorb the change live.
    [[nodiscard]] virtual SwapKind apply(const plan::ExecutionPlan& next,
                                         const plan::PlanDelta& delta) = 0;
};

struct ArbiterConfig {
    /// The shared machine the tenants compete for.
    core::Resources pool{};
    AllocPolicy policy = AllocPolicy::weighted_max_min;
    /// Solver service for probes and plan solves; null = svc::shared_service().
    svc::SolverService* service = nullptr;
    /// Queue capacity baked into every tenant plan.
    plan::PlanOptions plan_options{};
    /// Metrics registry for the amp_arb_* instruments; null = the service's.
    obs::MetricsRegistry* metrics = nullptr;
    /// Minimum period improvement (us) worth one more core (see
    /// AllocationConfig::improvement_epsilon_us).
    double improvement_epsilon_us = 1e-9;
};

/// Public view of one tenant between rearbitrations.
struct TenantStatus {
    TenantId id = 0;
    std::string name;
    double weight = 1.0;
    std::int8_t priority = 0;
    core::Resources budget{};
    double period_us = kInfinitePeriod;
    double weighted_rate = 0.0; ///< (1/period)/weight; the fairness share
    bool starved = false;       ///< quota floor not covered by the pool
    std::uint64_t generation = 0; ///< rearbitration that last changed the budget
    /// Current plan (result + compiled ExecutionPlan); plan is null until
    /// the first rearbitration grants a feasible budget.
    svc::PlannedSchedule planned;
};

/// What one rearbitration did to one tenant.
struct TenantChange {
    TenantId id = 0;
    core::Resources before{};
    core::Resources after{};
    SwapKind swap = SwapKind::none;
    /// diff(previous plan, new plan); default-constructed (empty,
    /// compatible) when either side is missing.
    plan::PlanDelta delta;
};

/// Outcome of one global allocation pass. `allocation.steps` is the
/// deterministic water-filling trace; `ids` aligns allocation.tenants /
/// changes with tenant identities (ascending id order).
struct ArbitrationReport {
    std::uint64_t generation = 0;
    std::vector<TenantId> ids;
    AllocationResult allocation;
    std::vector<TenantChange> changes;

    /// Changes that reached a live executor without a drain.
    [[nodiscard]] int frame_swaps() const noexcept;
    [[nodiscard]] int rebuilds_required() const noexcept;
};

/// Thread-safe tenant registry + global allocation loop. All public methods
/// lock one mutex; rearbitrate() runs the solver probes and endpoint swaps
/// under it, so mutations observed by a concurrent caller are atomic per
/// arbitration pass.
class Arbiter {
public:
    explicit Arbiter(ArbiterConfig config);

    Arbiter(const Arbiter&) = delete;
    Arbiter& operator=(const Arbiter&) = delete;

    /// Registers a tenant (weight must be positive; throws otherwise).
    /// The tenant holds no cores until the next rearbitrate().
    TenantId add_tenant(TenantSpec spec);

    /// Unregisters; the tenant's cores return to the pool at the next
    /// rearbitrate(). False when the id is unknown. A bound endpoint is
    /// forgotten (never invoked again).
    bool remove_tenant(TenantId id);

    /// Updates the fair-share weight (positive; throws otherwise).
    void set_weight(TenantId id, double weight);

    /// Replaces the tenant's chain (e.g. after drift re-profiling by
    /// rt::Rescheduler rebuilt the weights); next rearbitrate() re-solves
    /// on the new chain.
    void update_chain(TenantId id, core::TaskChain chain);

    /// Replaces the tenant's quota bounds (throws std::out_of_range on an
    /// unknown id, std::invalid_argument on a negative min). This is how an
    /// autoscaling tenant opts in to returning cores to the shared pool:
    /// rt::Autoscaler's on_resize hook lowers the cap to the shrunken
    /// budget and the next rearbitrate() redistributes the freed cores.
    void set_quota(TenantId id, TenantQuota quota);

    /// Grows or shrinks the shared pool (machine reconfiguration).
    void set_pool(core::Resources pool);

    /// Binds (or, with null, unbinds) the live executor hot-swap handle.
    /// The endpoint must outlive the binding.
    void bind_endpoint(TenantId id, TenantEndpoint* endpoint);

    /// Runs the global allocation loop: probes period curves (batched,
    /// cached), water-fills the pool, re-solves every tenant whose budget
    /// changed and pushes the change to its endpoint. Deterministic apart
    /// from wall-clock metrics: equal registry state yields an identical
    /// report (steps, budgets, periods) on every run.
    ArbitrationReport rearbitrate();

    /// rearbitrate() only when membership, weights, chains or the pool
    /// changed since the last pass; nullopt otherwise.
    std::optional<ArbitrationReport> rearbitrate_if_dirty();

    [[nodiscard]] bool dirty() const;
    [[nodiscard]] core::Resources pool() const;
    [[nodiscard]] std::size_t tenant_count() const;
    [[nodiscard]] std::uint64_t generation() const;

    /// Status snapshot; throws std::out_of_range on an unknown id.
    [[nodiscard]] TenantStatus status(TenantId id) const;
    /// All tenants, ascending id order.
    [[nodiscard]] std::vector<TenantStatus> tenants() const;

private:
    struct Tenant {
        TenantSpec spec;
        core::Resources budget{};
        double period_us = kInfinitePeriod;
        double weighted_rate = 0.0;
        bool starved = false;
        std::uint64_t generation = 0;
        svc::PlannedSchedule planned;
        TenantEndpoint* endpoint = nullptr;
    };

    struct Instruments {
        obs::Counter* rearbitrations = nullptr;
        obs::Counter* probes = nullptr;
        obs::Counter* grants = nullptr;
        obs::Counter* frame_swaps = nullptr;
        obs::Counter* delta_swaps = nullptr;
        obs::Counter* rebuilds_required = nullptr;
        obs::Gauge* tenant_count = nullptr;
        obs::Gauge* starved = nullptr;
        obs::Gauge* pool_free_big = nullptr;
        obs::Gauge* pool_free_little = nullptr;
    };

    [[nodiscard]] svc::SolverService& service() const;
    [[nodiscard]] core::ScheduleRequest request_for(const Tenant& tenant,
                                                    core::Resources budget) const;
    ArbitrationReport rearbitrate_locked();
    [[nodiscard]] TenantStatus status_of(TenantId id, const Tenant& tenant) const;

    ArbiterConfig config_;
    Instruments instruments_;

    mutable std::mutex mutex_;
    std::map<TenantId, Tenant> tenants_; ///< ordered: deterministic scans
    TenantId next_id_ = 1;
    std::uint64_t generation_ = 0;
    bool dirty_ = false;
};

} // namespace amp::arb
