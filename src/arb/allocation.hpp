#pragma once
// Pure allocation policy of the multi-tenant arbiter: splits one shared
// (b, l) core pool across tenants by weighted max-min fairness over
// achievable periods (docs/ARBITER.md).
//
// The policy layer is deliberately time-free and solver-free: it sees each
// tenant only through a *batch period oracle* -- "what period would tenant
// t achieve on budget r?" -- and produces a deterministic grant log (the
// water-filling trace). The arbiter backs the oracle with batched
// svc::SolverService::solve_batch probes (cached, so re-arbitrations
// re-probe mostly for free); dsim::simulate_multi_tenant drives the exact
// same function in virtual time, which is what makes the allocation loop
// replayable and its trace pinnable by tests.
//
// Weighted max-min (progressive filling / water-filling): after granting
// every tenant its quota floor, repeatedly pick the tenant with the lowest
// weighted rate (1/period)/weight -- the "driest" tenant -- probe its two
// single-core extensions (+1 big, +1 little), and grant whichever yields
// the lower period. A tenant saturates (drops out) when neither extension
// improves its period by more than `improvement_epsilon`, when its quota
// cap is reached, or when the pool runs out of the only core type that
// still helps it. The loop terminates because every round either consumes
// a core or saturates a tenant. Ties break on ascending tenant index, so
// equal inputs produce identical traces on every platform.

#include "arb/tenant.hpp"
#include "core/chain.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace amp::arb {

inline constexpr double kInfinitePeriod = std::numeric_limits<double>::infinity();

/// How the pool is split across tenants.
enum class AllocPolicy : std::uint8_t {
    /// Water-filling on each tenant's period-vs-budget curve; equalizes
    /// (1/period)/weight across unsaturated tenants. The arbiter's default.
    weighted_max_min,
    /// Static even split of each core type (quota floors first, then
    /// round-robin in tenant order). Ignores weights and the period curves;
    /// the bench's "no arbiter" baseline.
    even_split,
    /// Strict priority service: tenants in (priority desc, index asc) order
    /// each fill until saturated before the next tenant sees a core.
    priority_only,
};

[[nodiscard]] constexpr const char* to_string(AllocPolicy policy) noexcept
{
    switch (policy) {
    case AllocPolicy::weighted_max_min: return "weighted_max_min";
    case AllocPolicy::even_split: return "even_split";
    case AllocPolicy::priority_only: return "priority_only";
    }
    return "?";
}

/// The policy-relevant view of one tenant (no chain, no solver state).
/// Index order in the demand vector is the deterministic tie-break order.
struct TenantDemand {
    double weight = 1.0;
    TenantQuota quota{};
    std::int8_t priority = 0;
};

/// One period query: "tenant `tenant` on budget `budget`".
struct PeriodProbe {
    std::size_t tenant = 0;
    core::Resources budget{};
};

/// Batch period oracle: achievable period in us for each probe (must return
/// exactly probes.size() entries; kInfinitePeriod when infeasible, e.g. a
/// zero budget). Must be deterministic: equal probes yield equal periods.
/// The arbiter implements this with one svc::solve_batch call per
/// invocation so probes share the worker pool and the solution cache.
using BatchPeriodOracle =
    std::function<std::vector<double>(const std::vector<PeriodProbe>&)>;

/// One grant of the filling loop -- the deterministic allocation trace.
/// Exact equality (doubles included) is intentional: the solvers are
/// bit-deterministic, so two replays of one scenario must produce
/// bit-identical traces, which the dsim trace-equality test pins.
struct AllocStep {
    std::uint32_t tenant = 0;
    core::CoreType granted = core::CoreType::big;
    core::Resources budget_after{};
    double period_before_us = kInfinitePeriod;
    double period_after_us = kInfinitePeriod;

    [[nodiscard]] constexpr bool operator==(const AllocStep&) const noexcept = default;
};

/// Final share of one tenant.
struct TenantAllocation {
    core::Resources budget{};
    double period_us = kInfinitePeriod; ///< oracle period at `budget`
    /// (1/period)/weight -- the quantity weighted max-min equalizes. Zero
    /// when infeasible.
    double weighted_rate = 0.0;
    /// True when the pool could not cover this tenant's quota floor.
    bool starved = false;
    /// True when the filling loop stopped growing this tenant because no
    /// single-core extension improved its period (as opposed to quota/pool
    /// limits).
    bool saturated = false;
};

struct AllocationResult {
    AllocPolicy policy = AllocPolicy::weighted_max_min;
    std::vector<TenantAllocation> tenants; ///< aligned with the demand vector
    std::vector<AllocStep> steps;          ///< grant log, decision order
    core::Resources pool{};                ///< the pool allocate() was given
    core::Resources pool_left{};           ///< unallocated remainder
    std::uint64_t probes = 0;              ///< period queries issued

    /// Smallest weighted rate across feasible tenants (the max-min
    /// objective value); 0 when any tenant is infeasible.
    [[nodiscard]] double min_weighted_rate() const noexcept;
};

struct AllocationConfig {
    core::Resources pool{};
    AllocPolicy policy = AllocPolicy::weighted_max_min;
    /// A grant must improve the tenant's period by more than this (us) to
    /// be worth a core; smaller improvements saturate the tenant and leave
    /// the core for others (or unused -- visible in pool_left).
    double improvement_epsilon_us = 1e-9;
};

/// Splits `config.pool` across `demands` under `config.policy`. Pure and
/// deterministic: equal inputs (and an oracle with equal answers) produce
/// identical results, including the step trace. Throws std::invalid_argument
/// on a non-positive weight or a negative pool.
[[nodiscard]] AllocationResult allocate(const std::vector<TenantDemand>& demands,
                                        const AllocationConfig& config,
                                        const BatchPeriodOracle& oracle);

/// Jain's fairness index of the given shares: (sum x)^2 / (n * sum x^2),
/// in (0, 1]; 1 = perfectly equal. Zero-filled or empty inputs yield 0.
/// The bench feeds weighted rates, so 1 means "throughput exactly
/// proportional to weight".
[[nodiscard]] double jain_index(const std::vector<double>& shares);

} // namespace amp::arb
