#include "arb/arbiter.hpp"

#include "obs/schema.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace amp::arb {

int ArbitrationReport::frame_swaps() const noexcept
{
    int count = 0;
    for (const TenantChange& change : changes)
        count += change.swap == SwapKind::frame ? 1 : 0;
    return count;
}

int ArbitrationReport::rebuilds_required() const noexcept
{
    int count = 0;
    for (const TenantChange& change : changes)
        count += change.swap == SwapKind::rebuild_required ? 1 : 0;
    return count;
}

Arbiter::Arbiter(ArbiterConfig config)
    : config_(std::move(config))
{
    if (config_.pool.big < 0 || config_.pool.little < 0)
        throw std::invalid_argument{"Arbiter: negative pool"};
    obs::MetricsRegistry& registry =
        config_.metrics != nullptr ? *config_.metrics : service().metrics();
    instruments_.rearbitrations = &registry.counter(obs::schema::kArbRearbitrations);
    instruments_.probes = &registry.counter(obs::schema::kArbProbes);
    instruments_.grants = &registry.counter(obs::schema::kArbGrants);
    instruments_.frame_swaps = &registry.counter(obs::schema::kArbFrameSwaps);
    instruments_.delta_swaps = &registry.counter(obs::schema::kArbDeltaSwaps);
    instruments_.rebuilds_required = &registry.counter(obs::schema::kArbRebuildsRequired);
    instruments_.tenant_count = &registry.gauge(obs::schema::kArbTenants);
    instruments_.starved = &registry.gauge(obs::schema::kArbStarvedTenants);
    instruments_.pool_free_big = &registry.gauge(obs::schema::kArbPoolFreeBig);
    instruments_.pool_free_little = &registry.gauge(obs::schema::kArbPoolFreeLittle);
}

svc::SolverService& Arbiter::service() const
{
    return config_.service != nullptr ? *config_.service : svc::shared_service();
}

core::ScheduleRequest Arbiter::request_for(const Tenant& tenant, core::Resources budget) const
{
    core::ScheduleRequest request;
    request.chain = tenant.spec.chain;
    request.resources = budget;
    request.strategy = tenant.spec.strategy;
    request.options = tenant.spec.options;
    request.priority = tenant.spec.priority;
    return request;
}

TenantId Arbiter::add_tenant(TenantSpec spec)
{
    if (!(spec.weight > 0.0))
        throw std::invalid_argument{"Arbiter::add_tenant: weight must be positive"};
    if (spec.chain.empty())
        throw std::invalid_argument{"Arbiter::add_tenant: empty chain"};
    std::lock_guard lock{mutex_};
    const TenantId id = next_id_++;
    Tenant tenant;
    tenant.spec = std::move(spec);
    tenants_.emplace(id, std::move(tenant));
    dirty_ = true;
    instruments_.tenant_count->set(static_cast<double>(tenants_.size()));
    return id;
}

bool Arbiter::remove_tenant(TenantId id)
{
    std::lock_guard lock{mutex_};
    const bool erased = tenants_.erase(id) > 0;
    if (erased) {
        dirty_ = true;
        instruments_.tenant_count->set(static_cast<double>(tenants_.size()));
    }
    return erased;
}

void Arbiter::set_weight(TenantId id, double weight)
{
    if (!(weight > 0.0))
        throw std::invalid_argument{"Arbiter::set_weight: weight must be positive"};
    std::lock_guard lock{mutex_};
    Tenant& tenant = tenants_.at(id);
    if (tenant.spec.weight != weight) {
        tenant.spec.weight = weight;
        dirty_ = true;
    }
}

void Arbiter::set_quota(TenantId id, TenantQuota quota)
{
    if (quota.min.big < 0 || quota.min.little < 0)
        throw std::invalid_argument{"Arbiter::set_quota: negative quota floor"};
    std::lock_guard lock{mutex_};
    Tenant& tenant = tenants_.at(id);
    if (tenant.spec.quota != quota) {
        tenant.spec.quota = quota;
        dirty_ = true;
    }
}

void Arbiter::update_chain(TenantId id, core::TaskChain chain)
{
    if (chain.empty())
        throw std::invalid_argument{"Arbiter::update_chain: empty chain"};
    std::lock_guard lock{mutex_};
    Tenant& tenant = tenants_.at(id);
    tenant.spec.chain = std::move(chain);
    dirty_ = true;
}

void Arbiter::set_pool(core::Resources pool)
{
    if (pool.big < 0 || pool.little < 0)
        throw std::invalid_argument{"Arbiter::set_pool: negative pool"};
    std::lock_guard lock{mutex_};
    if (config_.pool != pool) {
        config_.pool = pool;
        dirty_ = true;
    }
}

void Arbiter::bind_endpoint(TenantId id, TenantEndpoint* endpoint)
{
    std::lock_guard lock{mutex_};
    tenants_.at(id).endpoint = endpoint;
}

bool Arbiter::dirty() const
{
    std::lock_guard lock{mutex_};
    return dirty_;
}

core::Resources Arbiter::pool() const
{
    std::lock_guard lock{mutex_};
    return config_.pool;
}

std::size_t Arbiter::tenant_count() const
{
    std::lock_guard lock{mutex_};
    return tenants_.size();
}

std::uint64_t Arbiter::generation() const
{
    std::lock_guard lock{mutex_};
    return generation_;
}

TenantStatus Arbiter::status_of(TenantId id, const Tenant& tenant) const
{
    TenantStatus status;
    status.id = id;
    status.name = tenant.spec.name;
    status.weight = tenant.spec.weight;
    status.priority = tenant.spec.priority;
    status.budget = tenant.budget;
    status.period_us = tenant.period_us;
    status.weighted_rate = tenant.weighted_rate;
    status.starved = tenant.starved;
    status.generation = tenant.generation;
    status.planned = tenant.planned;
    return status;
}

TenantStatus Arbiter::status(TenantId id) const
{
    std::lock_guard lock{mutex_};
    return status_of(id, tenants_.at(id));
}

std::vector<TenantStatus> Arbiter::tenants() const
{
    std::lock_guard lock{mutex_};
    std::vector<TenantStatus> out;
    out.reserve(tenants_.size());
    for (const auto& [id, tenant] : tenants_)
        out.push_back(status_of(id, tenant));
    return out;
}

ArbitrationReport Arbiter::rearbitrate()
{
    std::lock_guard lock{mutex_};
    return rearbitrate_locked();
}

std::optional<ArbitrationReport> Arbiter::rearbitrate_if_dirty()
{
    std::lock_guard lock{mutex_};
    if (!dirty_)
        return std::nullopt;
    return rearbitrate_locked();
}

ArbitrationReport Arbiter::rearbitrate_locked()
{
    ArbitrationReport report;
    report.generation = ++generation_;

    // Snapshot the registry in ascending id order -- the deterministic
    // tenant indexing every downstream structure (demands, allocation,
    // changes) shares.
    std::vector<TenantId> ids;
    std::vector<Tenant*> members;
    std::vector<TenantDemand> demands;
    ids.reserve(tenants_.size());
    members.reserve(tenants_.size());
    demands.reserve(tenants_.size());
    for (auto& [id, tenant] : tenants_) {
        ids.push_back(id);
        members.push_back(&tenant);
        demands.push_back(
            TenantDemand{tenant.spec.weight, tenant.spec.quota, tenant.spec.priority});
    }
    report.ids = ids;

    // Period oracle: one solve_batch per probe round. Repeated budgets --
    // across rounds and across rearbitrations -- hit the service's solution
    // cache, so the water-filling loop costs roughly one real solve per
    // distinct (tenant, budget) point on the period curve.
    const BatchPeriodOracle oracle =
        [&](const std::vector<PeriodProbe>& probes) -> std::vector<double> {
        std::vector<double> periods(probes.size(), kInfinitePeriod);
        std::vector<core::ScheduleRequest> requests;
        std::vector<std::size_t> slots; // probe index of each submitted request
        requests.reserve(probes.size());
        slots.reserve(probes.size());
        for (std::size_t p = 0; p < probes.size(); ++p) {
            if (probes[p].budget.total() <= 0)
                continue; // zero budget is infeasible by definition; skip the solver
            requests.push_back(request_for(*members[probes[p].tenant], probes[p].budget));
            slots.push_back(p);
        }
        if (requests.empty())
            return periods;
        const std::vector<core::ScheduleResult> results = service().solve_batch(requests);
        for (std::size_t r = 0; r < results.size(); ++r) {
            const std::size_t p = slots[r];
            if (results[r].ok() && !results[r].solution.empty())
                periods[p] =
                    results[r].solution.period(members[probes[p].tenant]->spec.chain);
        }
        return periods;
    };

    AllocationConfig alloc_config;
    alloc_config.pool = config_.pool;
    alloc_config.policy = config_.policy;
    alloc_config.improvement_epsilon_us = config_.improvement_epsilon_us;
    report.allocation = allocate(demands, alloc_config, oracle);

    // Apply: re-solve and push every tenant whose budget changed.
    report.changes.reserve(ids.size());
    std::uint64_t frame_swaps = 0;
    std::uint64_t delta_swaps = 0;
    std::uint64_t rebuilds = 0;
    std::uint64_t starved = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        Tenant& tenant = *members[i];
        const TenantAllocation& granted = report.allocation.tenants[i];

        TenantChange change;
        change.id = ids[i];
        change.before = tenant.budget;
        change.after = granted.budget;

        tenant.period_us = granted.period_us;
        tenant.weighted_rate = granted.weighted_rate;
        tenant.starved = granted.starved;
        starved += granted.starved ? 1 : 0;

        const bool unchanged = change.before == change.after && tenant.planned.plan != nullptr;
        if (!unchanged) {
            tenant.budget = granted.budget;
            svc::PlannedSchedule next;
            if (granted.budget.total() > 0)
                next = service().solve_planned(request_for(tenant, granted.budget),
                                              config_.plan_options);
            if (next.ok()) {
                const plan::ExecutionPlan* base = tenant.endpoint != nullptr
                    ? &tenant.endpoint->current_plan()
                    : tenant.planned.plan.get();
                if (base != nullptr)
                    change.delta = plan::diff(*base, *next.plan);
                if (tenant.endpoint != nullptr) {
                    change.swap = tenant.endpoint->apply(*next.plan, change.delta);
                    switch (change.swap) {
                    case SwapKind::frame: ++frame_swaps; break;
                    case SwapKind::delta: ++delta_swaps; break;
                    case SwapKind::rebuild_required: ++rebuilds; break;
                    default: break;
                    }
                } else {
                    change.swap = SwapKind::planned;
                }
                tenant.planned = std::move(next);
            } else {
                // Starved out (zero or infeasible budget): drop the stale
                // plan so status reflects "not runnable right now".
                tenant.planned = svc::PlannedSchedule{};
                change.swap = SwapKind::planned;
            }
            tenant.generation = generation_;
        }
        report.changes.push_back(std::move(change));
    }

    dirty_ = false;
    instruments_.rearbitrations->add(0, 1);
    instruments_.probes->add(0, report.allocation.probes);
    instruments_.grants->add(0, report.allocation.steps.size());
    instruments_.frame_swaps->add(0, frame_swaps);
    instruments_.delta_swaps->add(0, delta_swaps);
    instruments_.rebuilds_required->add(0, rebuilds);
    instruments_.tenant_count->set(static_cast<double>(tenants_.size()));
    instruments_.starved->set(static_cast<double>(starved));
    instruments_.pool_free_big->set(static_cast<double>(report.allocation.pool_left.big));
    instruments_.pool_free_little->set(
        static_cast<double>(report.allocation.pool_left.little));
    return report;
}

} // namespace amp::arb
