#include "arb/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace amp::arb {
namespace {

/// Mutable filling state shared by the policies.
struct FillState {
    const std::vector<TenantDemand>& demands;
    const AllocationConfig& config;
    const BatchPeriodOracle& oracle;
    AllocationResult result;
    core::Resources pool;

    explicit FillState(const std::vector<TenantDemand>& demands_in,
                       const AllocationConfig& config_in, const BatchPeriodOracle& oracle_in)
        : demands(demands_in)
        , config(config_in)
        , oracle(oracle_in)
        , pool(config_in.pool)
    {
        result.policy = config.policy;
        result.pool = config.pool;
        result.tenants.resize(demands.size());
    }

    [[nodiscard]] std::vector<double> probe(const std::vector<PeriodProbe>& probes)
    {
        result.probes += probes.size();
        std::vector<double> periods = oracle(probes);
        if (periods.size() != probes.size())
            throw std::invalid_argument{
                "arb::allocate: oracle returned " + std::to_string(periods.size())
                + " periods for " + std::to_string(probes.size()) + " probes"};
        return periods;
    }

    /// Re-probes every tenant's current budget in one batch (used after the
    /// budget-only passes of even_split and the quota floor).
    void refresh_periods()
    {
        std::vector<PeriodProbe> probes;
        probes.reserve(result.tenants.size());
        for (std::size_t t = 0; t < result.tenants.size(); ++t)
            probes.push_back(PeriodProbe{t, result.tenants[t].budget});
        const std::vector<double> periods = probe(probes);
        for (std::size_t t = 0; t < result.tenants.size(); ++t)
            result.tenants[t].period_us = periods[t];
    }

    [[nodiscard]] bool headroom(std::size_t t, core::CoreType type) const
    {
        return pool.count(type) > 0
            && result.tenants[t].budget.count(type) < demands[t].quota.cap(type);
    }

    void grant(std::size_t t, core::CoreType type, double period_after)
    {
        TenantAllocation& alloc = result.tenants[t];
        const double before = alloc.period_us;
        ++alloc.budget.count(type);
        --pool.count(type);
        alloc.period_us = period_after;
        result.steps.push_back(AllocStep{static_cast<std::uint32_t>(t), type, alloc.budget,
                                         before, period_after});
    }

    /// Grants quota floors in (priority desc, index asc) order, clamping to
    /// whatever is left of the pool; a tenant whose floor could not be met
    /// is marked starved. No probes here -- budgets only.
    void grant_floors()
    {
        std::vector<std::size_t> order(demands.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return demands[a].priority > demands[b].priority;
        });
        for (const std::size_t t : order) {
            TenantAllocation& alloc = result.tenants[t];
            for (const core::CoreType type : {core::CoreType::big, core::CoreType::little}) {
                const int want = std::min(std::max(demands[t].quota.min.count(type), 0),
                                          demands[t].quota.cap(type));
                const int got = std::min(want, pool.count(type));
                alloc.budget.count(type) += got;
                pool.count(type) -= got;
                if (got < want)
                    alloc.starved = true;
            }
        }
    }

    /// One water-filling grant for tenant `t`: probes its single-core
    /// extensions and takes the best improving one. Returns false (and
    /// marks the tenant saturated) when no extension improves the period
    /// by more than epsilon.
    [[nodiscard]] bool fill_one(std::size_t t)
    {
        TenantAllocation& alloc = result.tenants[t];
        std::vector<PeriodProbe> probes;
        std::vector<core::CoreType> types;
        for (const core::CoreType type : {core::CoreType::big, core::CoreType::little}) {
            if (!headroom(t, type))
                continue;
            core::Resources candidate = alloc.budget;
            ++candidate.count(type);
            probes.push_back(PeriodProbe{t, candidate});
            types.push_back(type);
        }
        if (probes.empty()) {
            alloc.saturated = true; // quota/pool limited, not period limited
            return false;
        }
        const std::vector<double> periods = probe(probes);
        std::size_t best = probes.size();
        for (std::size_t c = 0; c < probes.size(); ++c) {
            if (std::isinf(periods[c]))
                continue;
            if (best == probes.size() || periods[c] < periods[best])
                best = c; // strict <: ties keep the earlier candidate (big)
        }
        const bool improves = best != probes.size()
            && (std::isinf(alloc.period_us)
                || periods[best] + config.improvement_epsilon_us < alloc.period_us);
        if (!improves) {
            alloc.saturated = true;
            return false;
        }
        grant(t, types[best], periods[best]);
        return true;
    }

    void finalize()
    {
        for (std::size_t t = 0; t < result.tenants.size(); ++t) {
            TenantAllocation& alloc = result.tenants[t];
            alloc.weighted_rate = std::isinf(alloc.period_us) || alloc.period_us <= 0.0
                ? 0.0
                : (1.0 / alloc.period_us) / demands[t].weight;
        }
        result.pool_left = pool;
    }
};

/// Weighted max-min: repeatedly extend the tenant with the lowest weighted
/// rate until every tenant is saturated or the pool is spent.
void fill_weighted_max_min(FillState& state)
{
    std::vector<bool> done(state.demands.size(), false);
    for (;;) {
        std::size_t driest = state.demands.size();
        double driest_rate = 0.0;
        for (std::size_t t = 0; t < state.demands.size(); ++t) {
            if (done[t])
                continue;
            if (!state.headroom(t, core::CoreType::big)
                && !state.headroom(t, core::CoreType::little)) {
                done[t] = true; // quota- or pool-capped, not period-saturated
                continue;
            }
            const double period = state.result.tenants[t].period_us;
            const double rate = std::isinf(period) || period <= 0.0
                ? 0.0
                : (1.0 / period) / state.demands[t].weight;
            if (driest == state.demands.size() || rate < driest_rate) {
                driest = t;
                driest_rate = rate;
            }
        }
        if (driest == state.demands.size())
            return; // everyone saturated or capped
        if (!state.fill_one(driest))
            done[driest] = true;
    }
}

/// Static even split: round-robin one core at a time in tenant order,
/// skipping capped tenants, until neither type can be placed.
void fill_even_split(FillState& state)
{
    for (const core::CoreType type : {core::CoreType::big, core::CoreType::little}) {
        bool granted = true;
        while (granted && state.pool.count(type) > 0) {
            granted = false;
            for (std::size_t t = 0; t < state.demands.size(); ++t) {
                if (!state.headroom(t, type))
                    continue;
                ++state.result.tenants[t].budget.count(type);
                --state.pool.count(type);
                granted = true;
                if (state.pool.count(type) == 0)
                    break;
            }
        }
    }
    state.refresh_periods();
}

/// Strict priority: each tenant, in (priority desc, index asc) order, fills
/// until saturated before the next tenant sees a core.
void fill_priority_only(FillState& state)
{
    std::vector<std::size_t> order(state.demands.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return state.demands[a].priority > state.demands[b].priority;
    });
    for (const std::size_t t : order)
        while (state.fill_one(t)) {
        }
}

} // namespace

double AllocationResult::min_weighted_rate() const noexcept
{
    double min_rate = kInfinitePeriod;
    for (const TenantAllocation& tenant : tenants)
        min_rate = std::min(min_rate, tenant.weighted_rate);
    return tenants.empty() || std::isinf(min_rate) ? 0.0 : min_rate;
}

AllocationResult allocate(const std::vector<TenantDemand>& demands,
                          const AllocationConfig& config, const BatchPeriodOracle& oracle)
{
    if (config.pool.big < 0 || config.pool.little < 0)
        throw std::invalid_argument{"arb::allocate: negative pool"};
    for (const TenantDemand& demand : demands)
        if (!(demand.weight > 0.0))
            throw std::invalid_argument{"arb::allocate: tenant weight must be positive"};

    FillState state{demands, config, oracle};
    if (!demands.empty()) {
        state.grant_floors();
        state.refresh_periods();
        switch (config.policy) {
        case AllocPolicy::weighted_max_min: fill_weighted_max_min(state); break;
        case AllocPolicy::even_split: fill_even_split(state); break;
        case AllocPolicy::priority_only: fill_priority_only(state); break;
        }
    }
    state.finalize();
    return state.result;
}

double jain_index(const std::vector<double>& shares)
{
    if (shares.empty())
        return 0.0;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const double x : shares) {
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq <= 0.0)
        return 0.0;
    return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

} // namespace amp::arb
