// Synthetic-workload explorer: generate random partially-replicable task
// chains (the paper's §VI-A generator), schedule them with every strategy,
// and print a CSV of periods and core usages -- handy for plotting your own
// variants of Figs. 1-2 or studying new workload shapes.
//
//   $ ./synthetic_explorer --chains=50 --tasks=20 --sr=0.5 --big=10 --little=10
//   $ ./synthetic_explorer --csv > results.csv

#include "common/argparse.hpp"
#include "core/scheduler.hpp"
#include "sim/generator.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const int chains = static_cast<int>(args.get_int("chains", 20));
    const core::Resources machine{static_cast<int>(args.get_int("big", 10)),
                                  static_cast<int>(args.get_int("little", 10))};
    const bool csv = args.get_bool("csv");

    sim::GeneratorConfig generator;
    generator.num_tasks = static_cast<int>(args.get_int("tasks", 20));
    generator.stateless_ratio = args.get_double("sr", 0.5);
    generator.weight_max = static_cast<int>(args.get_int("wmax", 100));
    generator.slowdown_max = args.get_double("slowdown-max", 5.0);
    Rng rng{static_cast<std::uint64_t>(args.get_int("seed", 7))};

    if (csv)
        std::printf("chain,strategy,period,slowdown_vs_herad,big_used,little_used,stages\n");
    else
        std::printf("== %d chains of %d tasks (SR %.1f) on R = (%d, %d) ==\n\n", chains,
                    generator.num_tasks, generator.stateless_ratio, machine.big,
                    machine.little);

    double worst_fertac = 1.0;
    double worst_2catac = 1.0;
    for (int c = 0; c < chains; ++c) {
        const auto chain = sim::generate_chain(generator, rng);
        const double optimal = core::herad_optimal_period(chain, machine);
        for (const core::Strategy strategy : core::kAllStrategies) {
            const auto solution =
                core::schedule(core::ScheduleRequest{chain, machine, strategy}).solution;
            const double period = solution.period(chain);
            const double slowdown = period / optimal;
            if (strategy == core::Strategy::fertac)
                worst_fertac = std::max(worst_fertac, slowdown);
            if (strategy == core::Strategy::twocatac)
                worst_2catac = std::max(worst_2catac, slowdown);
            if (csv) {
                std::printf("%d,%s,%.4f,%.4f,%d,%d,%zu\n", c, core::to_string(strategy),
                            period, slowdown, solution.used(core::CoreType::big),
                            solution.used(core::CoreType::little), solution.stage_count());
            } else if (c < 3) { // show a few chains in human mode
                std::printf("chain %d  %-9s period %8.2f  x%.3f  cores (%d, %d)  %s\n", c,
                            core::to_string(strategy), period, slowdown,
                            solution.used(core::CoreType::big),
                            solution.used(core::CoreType::little),
                            solution.decomposition().c_str());
            }
        }
        if (!csv && c == 2)
            std::printf("... (%d more chains)\n", chains - 3);
    }
    if (!csv)
        std::printf("\nworst slowdown vs optimal: FERTAC x%.3f, 2CATAC x%.3f\n", worst_fertac,
                    worst_2catac);
    return 0;
}
