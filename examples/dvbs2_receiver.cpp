// Runs the full DVB-S2 receiver (the paper's 23-task chain, Table III)
// end to end through the threaded pipeline runtime:
//   1. profiles the chain on this machine,
//   2. computes a schedule with the chosen strategy for an emulated
//      asymmetric processor,
//   3. executes the schedule with real worker threads and order-restoring
//      adaptors, and reports throughput and decoding correctness.
//
//   $ ./dvbs2_receiver [--strategy=herad|2catac|fertac|otac-b|otac-l]
//                      [--frames=N] [--big=B] [--little=L] [--interframe=N]
//                      [--emulate-little] [--snr-db=X]

#include "common/argparse.hpp"
#include "core/scheduler.hpp"
#include "dvbs2/profiles.hpp"
#include "dvbs2/receiver.hpp"
#include "rt/core_emulator.hpp"
#include "rt/pipeline.hpp"
#include "rt/profiler.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const auto strategy = core::parse_strategy(args.get("strategy", "herad"));
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 20));
    const core::Resources machine{static_cast<int>(args.get_int("big", 4)),
                                  static_cast<int>(args.get_int("little", 4))};

    dvbs2::ReceiverConfig config;
    config.params.interframe = static_cast<int>(args.get_int("interframe", 2));
    config.channel.snr_db = args.get_double("snr-db", config.channel.snr_db);

    // --- 1. profile the chain on this machine -------------------------------
    std::printf("Profiling the 23-task receiver chain (interframe %d)...\n",
                config.params.interframe);
    auto profiling_chain = dvbs2::build_receiver_chain(config);
    const auto profile = rt::profile_sequence(profiling_chain.sequence, 4, 2);
    const auto little_ratios = dvbs2::little_slowdown_factors(dvbs2::mac_studio_profile());
    const auto core_chain =
        rt::to_scheduler_chain(profiling_chain.sequence, profile, little_ratios);
    std::printf("  total frame latency on big cores: %.0f us\n",
                core_chain.interval_sum(1, core_chain.size(), core::CoreType::big));

    // --- 2. schedule ----------------------------------------------------------
    const auto scheduled = core::schedule(core::ScheduleRequest{core_chain, machine, strategy});
    if (!scheduled.ok()) {
        std::fprintf(stderr, "no valid schedule for R = (%d, %d): %s\n", machine.big,
                     machine.little, core::to_string(scheduled.error));
        return 1;
    }
    const auto& solution = scheduled.solution;
    std::printf("\n%s schedule for R = (%dB, %dL):\n  %s\n  expected period %.0f us "
                "(%.0f pipeline frames/s)\n",
                core::to_string(strategy), machine.big, machine.little,
                solution.decomposition().c_str(), solution.period(core_chain),
                1e6 / solution.period(core_chain));

    // --- 3. execute -------------------------------------------------------------
    auto chain = dvbs2::build_receiver_chain(config);
    rt::SlowdownEmulator emulator{little_ratios};
    rt::PipelineConfig pipeline_config;
    if (args.get_bool("emulate-little"))
        pipeline_config.emulator = &emulator; // little workers spin proportionally
    rt::Pipeline<dvbs2::DvbFrame> pipeline{chain.sequence, solution, pipeline_config};

    std::printf("\nRunning %llu pipeline frames (%llu PLFRAMEs)...\n",
                static_cast<unsigned long long>(frames),
                static_cast<unsigned long long>(frames * config.params.interframe));
    const auto result = pipeline.run(frames);

    const auto& counters = *chain.counters;
    std::printf("  wall time      : %.2f s\n", result.elapsed_seconds);
    std::printf("  throughput     : %.1f pipeline frames/s = %.2f Mb/s of payload\n",
                result.fps(),
                result.fps() * config.params.interframe * config.params.k_bch / 1e6);
    std::printf("  frames checked : %llu (skipped during sync warmup: %llu)\n",
                static_cast<unsigned long long>(counters.frames_checked.load()),
                static_cast<unsigned long long>(counters.frames_skipped.load()));
    std::printf("  frame errors   : %llu, bit errors: %llu (BER %.2e)\n",
                static_cast<unsigned long long>(counters.frame_errors.load()),
                static_cast<unsigned long long>(counters.bit_errors.load()),
                counters.bit_error_rate());
    return counters.frame_errors.load() == 0 ? 0 : 2;
}
