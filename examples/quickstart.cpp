// Quickstart: schedule a small partially-replicable task chain on two types
// of cores with every strategy the library implements, and inspect the
// resulting pipeline decompositions.
//
//   $ ./quickstart
//
// The chain below is a toy SDR-like receiver: a sequential front-end, a
// heavy replicable decoding block, and a light sequential sink.

#include "core/scheduler.hpp"

#include <cstdio>

int main()
{
    using namespace amp::core;

    // 1. Describe the chain: per-task latency on big and little cores, and
    //    whether the task is stateless (replicable).
    TaskChain chain{{
        {"front-end", 40.0, 90.0, false},
        {"agc", 10.0, 22.0, false},
        {"equalize", 35.0, 80.0, true},
        {"demodulate", 120.0, 260.0, true},
        {"decode", 200.0, 430.0, true},
        {"deframe", 25.0, 60.0, true},
        {"sink", 8.0, 18.0, false},
    }};

    // 2. Describe the processor: R = (big cores, little cores).
    const Resources machine{4, 4};

    std::printf("Chain of %d tasks (%.0f%% replicable) on R = (%dB, %dL)\n\n", chain.size(),
                chain.stateless_ratio() * 100.0, machine.big, machine.little);

    // 3. Run every strategy through the unified entry point and compare.
    //    schedule() reports failures in ScheduleResult::error instead of an
    //    empty solution, and times each solve in solve_ns.
    for (const Strategy strategy : kAllStrategies) {
        const ScheduleResult result = schedule(ScheduleRequest{chain, machine, strategy});
        if (!result.ok()) {
            std::printf("%-9s -> no valid schedule (%s)\n", to_string(strategy),
                        to_string(result.error));
            continue;
        }
        const Solution& solution = result.solution;
        std::printf("%-9s period %7.2f us, throughput %8.1f frames/s, cores (%dB, %dL), "
                    "solved in %.0f us\n",
                    to_string(strategy), solution.period(chain), 1e6 / solution.period(chain),
                    solution.used(CoreType::big), solution.used(CoreType::little),
                    static_cast<double>(result.solve_ns) / 1000.0);
        std::printf("          stages: %s\n", solution.decomposition().c_str());
    }

    // 4. HeRAD is optimal in period AND uses as many little cores as
    //    necessary -- the others may trade one for the other.
    const Solution best = schedule(ScheduleRequest{chain, machine, Strategy::herad}).solution;
    std::printf("\nOptimal period: %.2f us (HeRAD)\n", best.period(chain));
    return 0;
}
