// Command-line scheduler: the deployment workflow of the paper's §VI —
// profile your task chain once, then compute schedules offline for any
// machine configuration.
//
//   $ ./schedule_tool profile.csv --big=6 --little=8 [--strategy=herad]
//                     [--all] [--power] [--csv]
//
// profile.csv: one task per line, "name,w_big,w_little,replicable".
// With no file argument, the embedded X7 Ti DVB-S2 profile is used.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/power.hpp"
#include "core/scheduler.hpp"
#include "core/serialize.hpp"
#include "dvbs2/profiles.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);

    core::TaskChain chain;
    if (args.positional().empty()) {
        std::printf("(no profile given: using the embedded X7 Ti DVB-S2 profile)\n");
        chain = dvbs2::profile_chain(dvbs2::x7ti_profile());
    } else {
        std::ifstream file{args.positional().front()};
        if (!file) {
            std::fprintf(stderr, "error: cannot open '%s'\n",
                         args.positional().front().c_str());
            return 1;
        }
        try {
            chain = core::parse_chain_csv(file);
        } catch (const std::exception& error) {
            std::fprintf(stderr, "error: %s\n", error.what());
            return 1;
        }
    }

    const core::Resources machine{static_cast<int>(args.get_int("big", 4)),
                                  static_cast<int>(args.get_int("little", 4))};
    std::printf("%d tasks (%.0f%% replicable), R = (%dB, %dL)\n\n", chain.size(),
                chain.stateless_ratio() * 100.0, machine.big, machine.little);

    std::vector<core::Strategy> strategies;
    if (args.get_bool("all"))
        strategies.assign(std::begin(core::kAllStrategies), std::end(core::kAllStrategies));
    else
        strategies.push_back(core::parse_strategy(args.get("strategy", "herad")));

    const core::PowerModel power_model;
    TextTable table({"Strategy", "Period", "Throughput (items/s)", "Cores (B,L)",
                     args.get_bool("power") ? "Power (W)" : "Stages", "Decomposition"});
    for (const core::Strategy strategy : strategies) {
        const auto result = core::schedule(core::ScheduleRequest{chain, machine, strategy});
        if (!result.ok()) {
            table.add_row({core::to_string(strategy), "-", "-", "-", "-",
                           std::string{"("} + core::to_string(result.error) + ")"});
            continue;
        }
        const auto& solution = result.solution;
        table.add_row(
            {core::to_string(strategy), fmt(solution.period(chain), 1),
             fmt(1e6 / solution.period(chain), 0),
             "(" + std::to_string(solution.used(core::CoreType::big)) + ","
                 + std::to_string(solution.used(core::CoreType::little)) + ")",
             args.get_bool("power") ? fmt(core::solution_power(solution, power_model), 1)
                                    : std::to_string(solution.stage_count()),
             solution.decomposition()});
    }
    if (args.get_bool("csv"))
        std::printf("%s", table.csv().c_str());
    else
        std::printf("%s", table.str().c_str());
    return 0;
}
