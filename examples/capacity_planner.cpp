// Capacity planner: given the paper's profiled DVB-S2 receiver, sweep the
// machine configurations (how many big / little cores) and report the
// throughput and core usage each scheduling strategy achieves -- the kind of
// question a deployment engineer asks before picking an SoC.
//
//   $ ./capacity_planner [--platform=mac|x7ti] [--max-big=N] [--max-little=N]
//                        [--target-mbps=X]

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "dvbs2/params.hpp"
#include "dvbs2/profiles.hpp"

#include <cstdio>
#include <string>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const std::string platform = args.get("platform", "x7ti");
    const auto& profile =
        platform == "mac" ? dvbs2::mac_studio_profile() : dvbs2::x7ti_profile();
    const int max_big = static_cast<int>(args.get_int("max-big", 8));
    const int max_little = static_cast<int>(args.get_int("max-little", 8));
    const double target_mbps = args.get_double("target-mbps", 0.0);

    const auto chain = dvbs2::profile_chain(profile);
    dvbs2::FrameParams params;
    params.interframe = profile.interframe;

    std::printf("== Capacity planning for the DVB-S2 receiver on %s-class cores ==\n",
                profile.name.c_str());
    if (target_mbps > 0.0)
        std::printf("Target: %.1f Mb/s\n", target_mbps);
    std::printf("\n");

    TextTable table({"R=(b,l)", "HeRAD Mb/s", "used", "2CATAC Mb/s", "FERTAC Mb/s",
                     "OTAC(B) Mb/s", "meets target"});
    for (int big = 1; big <= max_big; big += (big < 4 ? 1 : 2)) {
        for (int little = 0; little <= max_little; little += 2) {
            const core::Resources machine{big, little};
            auto mbps = [&](core::Strategy strategy) {
                const auto result = core::schedule(core::ScheduleRequest{chain, machine, strategy});
                if (!result.ok())
                    return 0.0;
                return dvbs2::mbps_from_fps(
                    dvbs2::fps_from_period_us(result.solution.period(chain), profile.interframe),
                    params.k_bch);
            };
            const auto optimal =
                core::schedule(core::ScheduleRequest{chain, machine, core::Strategy::herad})
                    .solution;
            const double herad_mbps = dvbs2::mbps_from_fps(
                dvbs2::fps_from_period_us(optimal.period(chain), profile.interframe),
                params.k_bch);
            table.add_row(
                {"(" + std::to_string(big) + "," + std::to_string(little) + ")",
                 fmt(herad_mbps, 1),
                 "(" + std::to_string(optimal.used(core::CoreType::big)) + ","
                     + std::to_string(optimal.used(core::CoreType::little)) + ")",
                 fmt(mbps(core::Strategy::twocatac), 1), fmt(mbps(core::Strategy::fertac), 1),
                 fmt(mbps(core::Strategy::otac_big), 1),
                 target_mbps <= 0.0 ? "-" : (herad_mbps >= target_mbps ? "yes" : "no")});
        }
    }
    std::printf("%s", table.str().c_str());
    std::printf("\n'used' counts the cores HeRAD actually allocates -- the secondary\n"
                "objective keeps it minimal, so idle cores can be powered down.\n");
    return 0;
}
