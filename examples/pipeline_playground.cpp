// Pipeline playground: shows that the runtime is not DVB-S2 specific. We
// build a small "log analytics" streaming chain over a custom payload type,
// profile it, let HeRAD decompose it for an asymmetric machine, and compare
// the static pipeline against the dynamic task-pool executor.
//
//   $ ./pipeline_playground [--frames=N] [--big=B] [--little=L]
//                           [--metrics] [--trace-out=trace.json]
//
// --metrics prints the run's Prometheus exposition; --trace-out writes a
// Chrome trace (open in chrome://tracing or https://ui.perfetto.dev, one
// track per worker). See docs/OBSERVABILITY.md.

#include "common/argparse.hpp"
#include "core/scheduler.hpp"
#include "obs/sink.hpp"
#include "rt/dynamic_executor.hpp"
#include "rt/pipeline.hpp"
#include "rt/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace {

/// The frame payload: a batch of synthetic log lines moving through parse ->
/// filter -> enrich -> aggregate -> serialize stages.
struct LogBatch {
    std::uint64_t seq = 0;
    std::vector<std::string> raw;
    std::vector<std::pair<int, std::string>> parsed; // (severity, message)
    std::map<std::string, int> histogram;
    std::string serialized;
};

amp::rt::TaskSequence<LogBatch> build_chain()
{
    using amp::rt::make_task;
    amp::rt::TaskSequence<LogBatch> seq;

    // 1. ingest (stateful: a real source would track a file offset).
    seq.push_back(make_task<LogBatch>("ingest", true, [](LogBatch& b) {
        static const char* kLevels[] = {"DEBUG", "INFO", "WARN", "ERROR"};
        b.raw.clear();
        for (int i = 0; i < 256; ++i) {
            const auto level = kLevels[(b.seq * 31 + i * 7) % 4];
            b.raw.push_back(std::string{level} + " service-" + std::to_string(i % 13)
                            + " request took " + std::to_string((b.seq + i * i) % 997) + "ms");
        }
    }));

    // 2. parse (stateless).
    seq.push_back(make_task<LogBatch>("parse", false, [](LogBatch& b) {
        b.parsed.clear();
        for (const auto& line : b.raw) {
            const auto space = line.find(' ');
            const std::string level = line.substr(0, space);
            const int severity = level == "ERROR" ? 3 : level == "WARN" ? 2
                : level == "INFO"                 ? 1
                                                  : 0;
            b.parsed.emplace_back(severity, line.substr(space + 1));
        }
    }));

    // 3. filter (stateless): keep WARN and above.
    seq.push_back(make_task<LogBatch>("filter", false, [](LogBatch& b) {
        b.parsed.erase(std::remove_if(b.parsed.begin(), b.parsed.end(),
                                      [](const auto& e) { return e.first < 2; }),
                       b.parsed.end());
    }));

    // 4. aggregate (stateless per batch).
    seq.push_back(make_task<LogBatch>("aggregate", false, [](LogBatch& b) {
        b.histogram.clear();
        for (const auto& [severity, message] : b.parsed)
            ++b.histogram[message.substr(0, message.find(' '))];
    }));

    // 5. serialize (stateless).
    seq.push_back(make_task<LogBatch>("serialize", false, [](LogBatch& b) {
        b.serialized.clear();
        for (const auto& [service, count] : b.histogram)
            b.serialized += service + "=" + std::to_string(count) + ";";
    }));

    // 6. commit (stateful: a real sink writes in order).
    seq.push_back(make_task<LogBatch>("commit", true, [](LogBatch& b) {
        volatile std::size_t sink = b.serialized.size();
        (void)sink;
    }));
    return seq;
}

} // namespace

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 400));
    const core::Resources machine{static_cast<int>(args.get_int("big", 3)),
                                  static_cast<int>(args.get_int("little", 2))};
    const bool want_metrics = args.get_bool("metrics", false);
    const std::string trace_path = args.get("trace-out", "");

    // Profile on this machine; model little cores as 2.5x slower.
    auto chain = build_chain();
    const auto profile = rt::profile_sequence(chain, 20, 5);
    const auto core_chain =
        rt::to_scheduler_chain(chain, profile, std::vector<double>(6, 2.5));

    std::printf("Profiled chain:\n");
    for (int t = 1; t <= core_chain.size(); ++t)
        std::printf("  %-10s %8.1f us  %s\n", core_chain.task(t).name.c_str(),
                    core_chain.weight(t, core::CoreType::big),
                    core_chain.replicable(t) ? "(replicable)" : "(stateful)");

    const auto solution =
        core::schedule(core::ScheduleRequest{core_chain, machine, core::Strategy::herad})
            .solution;
    std::printf("\nHeRAD on R = (%dB, %dL): %s, expected period %.0f us\n", machine.big,
                machine.little, solution.decomposition().c_str(),
                solution.period(core_chain));

    obs::SinkConfig sink_config;
    sink_config.metrics = want_metrics;
    sink_config.trace = !trace_path.empty();
    obs::Sink sink{sink_config};

    rt::PipelineConfig pipeline_config;
    pipeline_config.sink = sink.enabled() ? &sink : nullptr;
    rt::Pipeline<LogBatch> pipeline{chain, solution, pipeline_config};
    const auto static_result = pipeline.run(frames);
    std::printf("\nstatic pipeline : %7.0f batches/s over %llu batches\n", static_result.fps(),
                static_cast<unsigned long long>(static_result.frames));

    auto dynamic_chain = build_chain();
    rt::DynamicExecutor<LogBatch> dynamic{dynamic_chain, machine.total()};
    const auto dynamic_result = dynamic.run(frames);
    std::printf("dynamic executor: %7.0f batches/s (%0.1f scheduling events per batch)\n",
                dynamic_result.fps(),
                static_cast<double>(dynamic_result.scheduling_events)
                    / static_cast<double>(frames));

    if (want_metrics)
        std::printf("\n-- metrics (static pipeline) --\n%s", sink.render_prometheus().c_str());
    if (!trace_path.empty()) {
        if (sink.write_chrome_trace(trace_path))
            std::printf("\ntrace written to %s (open in chrome://tracing or Perfetto)\n",
                        trace_path.c_str());
        else
            std::fprintf(stderr, "failed to write trace to %s\n", trace_path.c_str());
    }
    return 0;
}
